"""Single-node wait and deadlock analysis — paper equations 1-5.

The derivation (section 3): the "other" transactions hold about
``Transactions x Actions / 2`` locks (each transaction is halfway done).
Objects are chosen uniformly from ``DB_Size``, so each of a transaction's
``Actions`` requests collides with probability
``Transactions x Actions / (2 DB_Size)``.
"""

from __future__ import annotations

from repro.analytic.parameters import ModelParameters


def concurrent_transactions(p: ModelParameters) -> float:
    """Equation 1: ``Transactions = TPS x Actions x Action_Time``."""
    return p.tps * p.actions * p.action_time


def wait_probability(p: ModelParameters) -> float:
    """Equation 2: probability a transaction waits during its lifetime.

    ``PW ~= Transactions x Actions^2 / (2 x DB_Size)``

    (the linearisation of ``1 - (1 - Transactions*Actions/(2 DB))^Actions``;
    see :mod:`repro.analytic.refinements` for the exact form).
    """
    return concurrent_transactions(p) * p.actions**2 / (2 * p.db_size)


def deadlock_probability(p: ModelParameters) -> float:
    """Equation 3: probability a transaction deadlocks in its lifetime.

    ``PD ~= PW^2 / Transactions
         = Transactions x Actions^4 / (4 x DB_Size^2)
         = TPS x Action_Time x Actions^5 / (4 x DB_Size^2)``
    """
    return p.tps * p.action_time * p.actions**5 / (4 * p.db_size**2)


def transaction_deadlock_rate(p: ModelParameters) -> float:
    """Equation 4: a transaction's deadlocks per second.

    ``PD / (Actions x Action_Time) = TPS x Actions^4 / (4 x DB_Size^2)``
    """
    return p.tps * p.actions**4 / (4 * p.db_size**2)


def node_deadlock_rate(p: ModelParameters) -> float:
    """Equation 5: the node's total deadlock rate.

    ``Transactions x eq4 = TPS^2 x Action_Time x Actions^5 / (4 DB_Size^2)``
    """
    return p.tps**2 * p.action_time * p.actions**5 / (4 * p.db_size**2)


def node_wait_rate(p: ModelParameters) -> float:
    """Waits per second at one node (PW per transaction x TPS).

    Not numbered in the paper but implied by the same argument used for
    equation 10: each of the ``TPS`` transactions completing per second
    waited with probability ``PW``.
    """
    return wait_probability(p) * p.tps
