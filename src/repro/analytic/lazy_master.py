"""Lazy master replication — paper equation 19.

"Lazy-master systems have no reconciliation failures; rather, conflicts are
resolved by waiting or deadlock. ... because there are Nodes times more
users, there are Nodes times as many concurrent master transactions ... the
main issue is how frequently the master transactions deadlock."
"""

from __future__ import annotations

from repro.analytic.parameters import ModelParameters


def deadlock_rate(p: ModelParameters) -> float:
    """Equation 19: system-wide lazy-master deadlock rate.

    ``Lazy_Master_Deadlock_Rate
        = (TPS x Nodes)^2 x Action_Time x Actions^5 / (4 DB_Size^2)``

    A single-node system (equation 5) running the whole network's load
    ``TPS x Nodes``.  Quadratic in Nodes — better than eager's cubic
    (equation 12) "primarily because the transactions have shorter duration",
    but "still troubling ... as they grow to many nodes."
    """
    return (
        (p.tps * p.nodes) ** 2
        * p.action_time
        * p.actions**5
        / (4 * p.db_size**2)
    )


def wait_rate(p: ModelParameters) -> float:
    """System-wide lazy-master wait rate (implied, not numbered).

    The same single-node-at-aggregate-load argument applied to the wait rate
    (square root of the deadlock construction): a single node running
    ``TPS x Nodes`` gives ``(TPS x Nodes)^2 x Action_Time x Actions^3 / (2 DB)``.
    """
    return (
        (p.tps * p.nodes) ** 2 * p.action_time * p.actions**3 / (2 * p.db_size)
    )


def replica_update_transactions(p: ModelParameters) -> float:
    """Housekeeping replica-update transactions per second.

    "approximately Nodes^2 times as many replica update transactions":
    each of the ``TPS x Nodes`` committed master transactions fans out to
    ``Nodes - 1`` slaves.
    """
    return p.tps * p.nodes * (p.nodes - 1)
