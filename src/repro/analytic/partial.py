"""Partial replication: the danger curves with a replication-factor axis.

The paper's equations 6-14 assume every node replicates every object, which
is what makes transaction duration grow with ``Nodes`` and drives the cubic
deadlock law (equation 12).  A placement layer that keeps only ``k`` replicas
per object (:class:`~repro.placement.HashShardPlacement`) re-derives those
equations with ``k`` in place of ``Nodes`` wherever the count of replicas —
rather than the count of origin nodes — appears:

* an update transaction writes ``k`` replicas, so its size is
  ``Actions x k`` and its duration ``Actions x k x Action_Time``;
* the system still originates ``TPS x Nodes`` transactions per second, so
  the concurrency pool is ``TPS x Actions x Action_Time x Nodes x k``;
* conflict probabilities keep the equation 9/11 forms over the shared
  ``DB_Size`` keyspace.

The headline result: the eager deadlock rate becomes

``TPS^2 x Action_Time x Actions^5 x Nodes^2 x k / (4 DB_Size^2)``

— exactly equation 12 scaled by ``k / Nodes``.  For a fixed replication
factor the growth order drops from cubic to **quadratic** in nodes; at
``k = Nodes`` every formula here reduces to its full-replication ancestor.

Each function caps ``k`` at ``p.nodes``, matching the bound placement
(``HashShardPlacement`` clamps its factor to the node count), so sweeping a
node axis through ``nodes < k`` degrades gracefully to full replication.

The dividend is a property of the *replication factor*, not of how the
map is built: a :class:`~repro.placement.DirectoryPlacement` with the
same ``k`` carries the same ``k / Nodes`` scaling, whether its shards are
grouped by locality or by hash — the campaign layer reads ``k`` off any
placement spec exposing ``replication_factor``, so directory sweeps get
these reference curves with no extra wiring.  (Locality grouping changes
*which* conflicts happen — co-located hot objects contend on fewer nodes
— not the equations' replica-count arithmetic.)
"""

from __future__ import annotations

from repro.analytic import eager
from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError


def _factor(p: ModelParameters, k: int) -> int:
    if k < 1:
        raise ConfigurationError(
            f"replication factor must be >= 1, got {k}"
        )
    return min(k, p.nodes)


# --------------------------------------------------------------------- #
# equation 6 analogues
# --------------------------------------------------------------------- #

def transaction_size(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 6a: ``Actions x k`` replica writes."""
    return p.actions * _factor(p, k)


def transaction_duration(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 6b: ``Actions x k x Action_Time``.

    Sequential replica updates, as in the paper's base model — but only
    ``k`` of them per action.
    """
    return p.actions * _factor(p, k) * p.action_time


def total_transactions(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 7: concurrent transactions system-wide.

    ``TPS x Actions x Action_Time x Nodes x k`` — nodes originate as
    before, but each transaction lives ``k/Nodes`` as long.
    """
    return p.tps * p.actions * p.action_time * p.nodes * _factor(p, k)


def action_rate(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 8: replica updates applied per second.

    ``TPS x Actions x Nodes x k``
    """
    return p.tps * p.actions * p.nodes * _factor(p, k)


def resident_objects(p: ModelParameters, k: int) -> float:
    """Expected objects materialised per node: ``k x DB_Size / Nodes``.

    Rendezvous hashing spreads each object's ``k`` replicas uniformly, so
    node stores shrink linearly in ``k / Nodes`` — the storage dividend
    that pays for partial replication.
    """
    return _factor(p, k) * p.db_size / p.nodes


# --------------------------------------------------------------------- #
# waits, deadlocks, reconciliations
# --------------------------------------------------------------------- #

def wait_rate(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 10: system-wide wait rate.

    ``TPS^2 x Action_Time x Actions^3 x Nodes^2 x k / (2 DB_Size)``

    Equation 10 scaled by ``k / Nodes`` — quadratic in nodes for fixed
    ``k`` instead of cubic.
    """
    return eager.total_wait_rate(p) * _factor(p, k) / p.nodes


def deadlock_rate(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 12 — the softened headline law.

    ``Partial_Eager_Deadlock_Rate
        = TPS^2 x Action_Time x Actions^5 x Nodes^2 x k / (4 DB_Size^2)``

    Equation 12 times ``k / Nodes``: a fixed replication factor buys one
    whole power of ``Nodes``.  Scaling ten-fold raises deadlocks a
    hundred-fold instead of the paper's thousand-fold.
    """
    return eager.total_deadlock_rate(p) * _factor(p, k) / p.nodes


def reconciliation_rate(p: ModelParameters, k: int) -> float:
    """Partial analogue of equation 14: lazy-group reconciliation rate.

    Reconciliations track the wait rate (every would-be wait is a
    reconciliation), so this is equation 14 scaled by ``k / Nodes``:

    ``TPS^2 x Action_Time x Actions^3 x Nodes^2 x k / (2 DB_Size)``
    """
    return wait_rate(p, k)


def scaled_db_deadlock_rate(p: ModelParameters, k: int) -> float:
    """Partial deadlock rate in the scaled-database regime (cf. eq 13).

    When the database grows with the system (``DB_Size`` per replica
    cluster, workload local to the cluster), the system factorises into
    ``Nodes / k`` independent ``k``-node eager subsystems, each
    contributing equation 12 at ``Nodes := k``:

    ``TPS^2 x Action_Time x Actions^5 x Nodes x k^2 / (4 DB_Size^2)``

    Linear in nodes for fixed ``k`` — and at ``k = 1`` it reduces exactly
    to equation 13's scaled-database rate.
    """
    k = _factor(p, k)
    per_cluster = (
        p.tps**2 * p.action_time * p.actions**5 * k**3 / (4 * p.db_size**2)
    )
    return per_cluster * p.nodes / k


def reference_rate(strategy: str, p: ModelParameters, k: int):
    """The partial analogue of a strategy's modelled danger rate.

    Used by the campaign layer's measured-vs-model column when a placement
    is configured.  Returns ``None`` for strategies whose modelled rate
    does not depend on the replica fan-out (lazy-master and two-tier
    deadlock on master copies, whose count a placement does not change).
    """
    if strategy in ("eager-group", "eager-master"):
        return deadlock_rate(p, k)
    if strategy == "lazy-group":
        return reconciliation_rate(p, k)
    return None


def softening(p: ModelParameters, k: int) -> float:
    """The partial-to-full danger ratio ``k / Nodes`` (uniform workload).

    Applies uniformly to waits, deadlocks, and reconciliations — the
    single dimensionless dividend of a placement layer.
    """
    return _factor(p, k) / p.nodes
