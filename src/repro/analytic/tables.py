"""Renderings of the paper's Table 1 and Table 2.

Table 1 ("A taxonomy of replication strategies") contrasts propagation
(eager vs lazy) with ownership (group vs master), plus the proposed two-tier
row.  Table 2 is the model-parameter glossary.  Both are reproduced as data
(for tests) and as formatted text (for the benchmark output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analytic.parameters import ModelParameters
from repro.metrics.report import format_table


@dataclass(frozen=True)
class TaxonomyEntry:
    """One cell of Table 1: how a strategy structures an N-node update."""

    propagation: str  # "eager" | "lazy" | "two-tier"
    ownership: str  # "group" | "master" | "two-tier"
    transactions_per_update: str  # e.g. "N", "1", "N+1"
    object_owners: str  # "N" or "1"
    note: str = ""


TABLE_1: Dict[Tuple[str, str], TaxonomyEntry] = {
    ("lazy", "group"): TaxonomyEntry(
        propagation="lazy",
        ownership="group",
        transactions_per_update="N",
        object_owners="N",
    ),
    ("eager", "group"): TaxonomyEntry(
        propagation="eager",
        ownership="group",
        transactions_per_update="1",
        object_owners="N",
    ),
    ("lazy", "master"): TaxonomyEntry(
        propagation="lazy",
        ownership="master",
        transactions_per_update="N",
        object_owners="1",
    ),
    ("eager", "master"): TaxonomyEntry(
        propagation="eager",
        ownership="master",
        transactions_per_update="1",
        object_owners="1",
    ),
    ("two-tier", "two-tier"): TaxonomyEntry(
        propagation="two-tier",
        ownership="two-tier",
        transactions_per_update="N+1",
        object_owners="1",
        note="tentative local updates, eager base updates",
    ),
}


def taxonomy_entry(propagation: str, ownership: str) -> TaxonomyEntry:
    """Look up a Table 1 cell; raises KeyError for unknown combinations."""
    return TABLE_1[(propagation, ownership)]


def expected_transaction_count(propagation: str, nodes: int) -> int:
    """Transactions needed to propagate one update to ``nodes`` replicas.

    Eager: one (distributed) transaction.  Lazy: the root plus one replica
    transaction per remote node = N.  Two-tier: the tentative transaction,
    the base transaction, and N-1 replica updates = N+1.
    """
    if propagation == "eager":
        return 1
    if propagation == "lazy":
        return nodes
    if propagation == "two-tier":
        return nodes + 1
    raise KeyError(f"unknown propagation strategy {propagation!r}")


def render_table_1() -> str:
    """Format Table 1 as aligned text."""
    rows: List[List[str]] = []
    for key in [("lazy", "group"), ("eager", "group"), ("lazy", "master"),
                ("eager", "master"), ("two-tier", "two-tier")]:
        entry = TABLE_1[key]
        rows.append(
            [
                entry.ownership,
                entry.propagation,
                f"{entry.transactions_per_update} transactions",
                f"{entry.object_owners} object owners"
                + (f" ({entry.note})" if entry.note else ""),
            ]
        )
    return format_table(
        ["ownership", "propagation", "transactions", "owners"],
        rows,
        title="Table 1: taxonomy of replication strategies",
    )


# parameter name -> (paper description, attribute on ModelParameters)
TABLE_2: Dict[str, Tuple[str, str]] = {
    "DB_Size": ("number of distinct objects in the database", "db_size"),
    "Nodes": ("number of nodes; each node replicates all objects", "nodes"),
    "Transactions": (
        "number of concurrent transactions at a node (derived)",
        "transactions",
    ),
    "TPS": ("number of transactions per second originating at this node", "tps"),
    "Actions": ("number of updates in a transaction", "actions"),
    "Action_Time": ("time to perform an action", "action_time"),
    "Time_Between_Disconnects": (
        "mean time between network disconnect of a node",
        "time_between_disconnects",
    ),
    "Disconnected_Time": (
        "mean time node is disconnected from network",
        "disconnect_time",
    ),
    "Message_Delay": (
        "time between update of an object and update of a replica (ignored)",
        "message_delay",
    ),
    "Message_CPU": (
        "processing and transmission time for a replication message (ignored)",
        "message_cpu",
    ),
}


def render_table_2(p: ModelParameters) -> str:
    """Format Table 2 with the values of a concrete parameter set."""
    rows = []
    for name, (description, attr) in TABLE_2.items():
        rows.append([name, getattr(p, attr), description])
    return format_table(
        ["parameter", "value", "description"],
        rows,
        title="Table 2: model parameters",
    )
