"""The paper's closed-form analytic model (equations 1-19).

Every equation in the paper is implemented as a documented function taking a
:class:`~repro.analytic.parameters.ModelParameters` (Table 2).  The module
layout follows the paper's sections:

* :mod:`~repro.analytic.single_node` — section 3's warm-up: waits and
  deadlocks in a one-node system (equations 1-5).
* :mod:`~repro.analytic.eager` — eager replication scaling (equations 6-13),
  including the headline cubic deadlock growth and the scaled-database
  variant.
* :mod:`~repro.analytic.lazy_group` — lazy group replication reconciliation
  (equation 14) and the disconnected/mobile collision analysis
  (equations 15-18).
* :mod:`~repro.analytic.lazy_master` — lazy master deadlocks (equation 19).
* :mod:`~repro.analytic.two_tier` — derived rates for the proposed two-tier
  scheme (base transactions behave per equation 19; reconciliation rate is
  the acceptance-failure rate, zero when all transactions commute).
* :mod:`~repro.analytic.partial` — the danger curves re-derived with a
  replication-factor axis ``k``: partial replication softens equation 12's
  cubic to ``Nodes^2 x k``.
* :mod:`~repro.analytic.refinements` — exact (non-linearised) versions of
  the probability approximations, for checking the approximations' validity
  region.
* :mod:`~repro.analytic.markov` / :mod:`~repro.analytic.markov_strategies`
  — the Markov fast path: stationary-distribution solvers over per-strategy
  transaction-state chains, a third model track between the closed forms
  (instant, no feedback) and the DES (accurate, slow).
* :mod:`~repro.analytic.scaling` — parameter sweeps and growth-exponent
  fitting used by the benchmarks.
* :mod:`~repro.analytic.tables` — renderings of the paper's Table 1
  (strategy taxonomy) and Table 2 (parameter glossary).
"""

from repro.analytic.parameters import ModelParameters
from repro.analytic import (
    dilation,
    eager,
    lazy_group,
    lazy_master,
    markov,
    markov_strategies,
    partial,
    refinements,
    single_node,
    two_tier,
)
from repro.analytic.presets import PRESETS, preset
from repro.analytic.scaling import fit_exponent, safe_fit_exponent, sweep

__all__ = [
    "ModelParameters",
    "single_node",
    "eager",
    "lazy_group",
    "lazy_master",
    "two_tier",
    "partial",
    "dilation",
    "markov",
    "markov_strategies",
    "refinements",
    "fit_exponent",
    "safe_fit_exponent",
    "sweep",
    "PRESETS",
    "preset",
]
