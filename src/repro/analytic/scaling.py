"""Parameter sweeps and growth-exponent fitting.

The paper's claims are about *shapes*: deadlock rate cubic in Nodes, quintic
in Actions, reconciliation quadratic in the mobile case, linear with a scaled
database.  ``sweep`` evaluates any model function along one parameter axis
and ``fit_exponent`` recovers the polynomial order by least squares on
log-log data, which is exactly how the benchmarks check each equation.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SweepResult:
    """One sweep: the axis values and the function values along them."""

    parameter: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self.xs, self.ys))


def sweep(
    fn: Callable[[ModelParameters], float],
    base: ModelParameters,
    parameter: str,
    values: Sequence,
) -> SweepResult:
    """Evaluate ``fn`` at ``base`` with ``parameter`` set to each value.

    Example::

        result = sweep(eager.total_deadlock_rate, params, "nodes", [1, 2, 5, 10])
    """
    if not values:
        raise ConfigurationError("sweep requires at least one value")
    if not hasattr(base, parameter):
        raise ConfigurationError(f"unknown model parameter {parameter!r}")
    ys = []
    for value in values:
        ys.append(fn(base.with_(**{parameter: value})))
    return SweepResult(
        parameter=parameter, xs=tuple(float(v) for v in values), ys=tuple(ys)
    )


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    For ``y = c * x^k`` the returned value is exactly ``k``.  Cells with a
    zero, negative, or non-finite coordinate cannot enter a log-space fit;
    they are dropped with a :class:`RuntimeWarning` (short measured runs
    routinely produce zero-event cells).  Requires at least two surviving
    points, else raises :class:`~repro.exceptions.ConfigurationError`.
    """
    pairs = list(zip(xs, ys))
    points = [
        (math.log(x), math.log(y))
        for x, y in pairs
        if x > 0 and y > 0 and math.isfinite(x) and math.isfinite(y)
    ]
    dropped = len(pairs) - len(points)
    if dropped:
        warnings.warn(
            f"fit_exponent dropped {dropped} of {len(pairs)} cells with "
            "zero, negative, or non-finite coordinates",
            RuntimeWarning,
            stacklevel=2,
        )
    if len(points) < 2:
        raise ConfigurationError(
            "fit_exponent needs >= 2 points with positive x and y"
        )
    n = len(points)
    mean_x = sum(lx for lx, _ in points) / n
    mean_y = sum(ly for _, ly in points) / n
    sxx = sum((lx - mean_x) ** 2 for lx, _ in points)
    if sxx == 0:
        raise ConfigurationError("fit_exponent needs at least two distinct x values")
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in points)
    return sxy / sxx


def safe_fit_exponent(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """:func:`fit_exponent`, but ``None`` when a fit is impossible.

    The tolerant variant the harness tables use: sparse campaigns (a short
    run measuring zero deadlocks everywhere, a single-cell sweep) should
    render an empty column, not crash the report.  Degenerate inputs still
    emit the drop warning from :func:`fit_exponent`.
    """
    try:
        return fit_exponent(xs, ys)
    except ConfigurationError:
        return None


def amplification(fn: Callable[[ModelParameters], float],
                  base: ModelParameters,
                  parameter: str,
                  factor: float) -> float:
    """Ratio ``fn(param x factor) / fn(param)`` — the paper's "ten-fold
    increase in nodes gives a thousand-fold increase in deadlocks" phrasing.
    """
    before = fn(base)
    if before == 0:
        raise ConfigurationError("amplification undefined: base value is zero")
    current = getattr(base, parameter)
    scaled_value = current * factor
    if isinstance(current, int):
        scaled_value = int(round(scaled_value))
    after = fn(base.with_(**{parameter: scaled_value}))
    return after / before


def crossover(
    fn_a: Callable[[ModelParameters], float],
    fn_b: Callable[[ModelParameters], float],
    base: ModelParameters,
    parameter: str,
    values: Sequence,
) -> float | None:
    """First axis value where ``fn_a`` overtakes ``fn_b`` (or None).

    Used to locate, e.g., the node count at which eager deadlocks exceed a
    tolerable threshold set by a lazy-master baseline.
    """
    for value in values:
        p = base.with_(**{parameter: value})
        if fn_a(p) > fn_b(p):
            return float(value)
    return None
