"""Named parameter presets for the scenarios the paper reasons about.

Each preset is a :class:`~repro.analytic.parameters.ModelParameters` tuned to
one of the situations the paper describes, so examples, the CLI, and users
can say what they mean::

    from repro.analytic.presets import PRESETS
    p = PRESETS["mobile-nightly"]

Presets:

* ``paper-baseline`` — the dilute regime used throughout the analytic
  discussion: a modest OLTP node replicating a 10k-object database.
* ``checkbook`` — the introduction's joint account: tiny database (your
  accounts), few replicas (you, spouse, bank), low traffic.
* ``mobile-nightly`` — section 4's mobile fleet: "The node accepts and
  applies transactions for a day. Then, at night it connects" — a 24-hour
  disconnect window.
* ``mobile-hourly`` — the same fleet syncing hourly, for contrast.
* ``oltp-cluster`` — a heavier connected cluster (TPC-style rates) where
  the instability becomes visible at small node counts.
"""

from __future__ import annotations

from typing import Dict

from repro.analytic.parameters import ModelParameters

DAY = 24.0 * 3600.0
HOUR = 3600.0

PRESETS: Dict[str, ModelParameters] = {
    "paper-baseline": ModelParameters(
        db_size=10_000, nodes=10, tps=10.0, actions=5, action_time=0.01,
    ),
    "checkbook": ModelParameters(
        db_size=10, nodes=3, tps=0.001, actions=1, action_time=0.01,
        disconnect_time=DAY, time_between_disconnects=HOUR,
    ),
    "mobile-nightly": ModelParameters(
        db_size=100_000, nodes=100, tps=0.1, actions=4, action_time=0.01,
        disconnect_time=DAY, time_between_disconnects=HOUR,
    ),
    "mobile-hourly": ModelParameters(
        db_size=100_000, nodes=100, tps=0.1, actions=4, action_time=0.01,
        disconnect_time=HOUR, time_between_disconnects=60.0,
    ),
    "oltp-cluster": ModelParameters(
        db_size=100_000, nodes=4, tps=100.0, actions=10, action_time=0.005,
    ),
}


def preset(name: str) -> ModelParameters:
    """Look up a preset by name; raises KeyError with the available names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
