"""Per-strategy transaction-state chains for the Markov fast path.

Each replication strategy gets a small continuous-time chain over a tagged
transaction's lifecycle, parameterised by the same Table-2 quantities the
closed forms use (nodes, actions, update rate, DB size, placement ``k``,
message delay):

* **eager-group / eager-master / lazy-master / two-tier** —
  ``running -> waiting -> restarting``: a lock request collides and waits;
  a second wait escalates to a deadlock victim ("it takes two waits to make
  a deadlock"), which aborts after a restart residence.
* **lazy-group** — ``running -> propagating -> reconciling``: the origin
  transaction commits locally, its updates propagate asynchronously, and a
  collision during the propagation window becomes a reconciliation.
* **deferred-update / scar** — ``running -> certifying -> restarting``:
  execution is coordination-free, so nothing ever waits on a user lock;
  a conflicting commit landing inside the transaction's exposure window
  surfaces at the decision point as a clean certification abort.  One
  conflicting pair suffices (no "two waits" escalation), so the danger
  rate follows the *quadratic* birthday law — the cube-law escape the
  certification strategies exist to demonstrate.

The per-transition hazards come from the paper's own conflict probabilities
(equations 2/9/11 and their partial-replication analogues), so in the
low-contention limit every chain's predicted system rate converges to the
matching closed form — eq 12 for eager-group deadlocks, eq 14 for
lazy-group reconciliations, eq 19 for lazy-master — including the
``k / Nodes`` softening of :mod:`repro.analytic.partial` when a placement
is configured.  Eager-master is the one deliberate departure: its chain
models the master-first lock ordering the DES actually implements (cycles
only close across distinct masters), landing on an equation-19-style
quadratic law rather than equation 12's pessimistic cubic — see
:func:`_eager_chain`.

What the chain adds beyond the closed forms is *feedback*: waiting and
restarting transactions inflate the in-flight population (Little's law),
which inflates the conflict hazards, which inflates waiting.
:func:`predict` resolves that loop with a damped fixed point on a single
congestion multiplier — the same time-dilation effect that makes the DES
measure slightly steeper exponents than the model (see EXPERIMENTS.md),
now predicted instead of simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analytic.markov import MarkovChain, stationary_distribution
from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError

#: strategies with a Markov chain model (the paper's five plus the two
#: certification-based strategies)
MARKOV_STRATEGIES: Tuple[str, ...] = (
    "deferred-update",
    "eager-group",
    "eager-master",
    "lazy-group",
    "lazy-master",
    "scar",
    "two-tier",
)

#: the danger rate each strategy's chain predicts, mirroring the campaign
#: layer's ANALYTIC_REFERENCE so the two model tracks stay comparable
MARKOV_REFERENCE: Dict[str, Tuple[str, str]] = {
    "deferred-update": ("abort_rate", "cert aborts/s (markov)"),
    "eager-group": ("deadlock_rate", "deadlocks/s (markov)"),
    "eager-master": ("deadlock_rate", "deadlocks/s (markov)"),
    "lazy-group": ("reconciliation_rate", "reconciliations/s (markov)"),
    "lazy-master": ("deadlock_rate", "deadlocks/s (markov)"),
    "scar": ("abort_rate", "validation aborts/s (markov)"),
    "two-tier": ("deadlock_rate", "base deadlocks/s (markov)"),
}

#: guard against zero durations (action_time=0 means "infinitely fast")
_EPS = 1e-12

#: congestion multiplier ceiling — far beyond any regime the hazard
#: linearisation is meaningful in; rates saturate at the arrival rate anyway
_CONGESTION_CAP = 1e4


@dataclass(frozen=True)
class StrategyChain:
    """One strategy's chain plus the bookkeeping the predictor needs.

    ``exits`` are labelled renewal flows ``(label, state, rate)``: the
    tagged transaction leaves the system (commit, deadlock abort,
    reconciliation) and its slot renews.  ``events`` are labelled non-exit
    flows counted per second (e.g. entries into waiting).
    ``exposure_states`` are the states in which the transaction contributes
    to the conflict pool (holds locks / has unpropagated updates), and
    ``base_exposure`` is the zero-contention residence in those states —
    the normaliser that makes the congestion multiplier 1.0 when the chain
    reduces to the closed form.
    """

    strategy: str
    chain: MarkovChain
    exits: Tuple[Tuple[str, str, float], ...]
    events: Tuple[Tuple[str, str, float], ...]
    exposure_states: Tuple[str, ...]
    base_exposure: float
    congestion: float


@dataclass(frozen=True)
class MarkovPrediction:
    """Steady-state prediction for one strategy at one parameter cell."""

    strategy: str
    params: ModelParameters
    replication_factor: int
    states: Tuple[str, ...]
    pi: Tuple[float, ...]
    congestion: float
    iterations: int
    sojourn: float  # mean seconds a transaction spends in the system
    commit_rate: float  # commits/s system-wide (throughput)
    deadlock_rate: float  # deadlock aborts/s system-wide
    wait_rate: float  # lock waits/s system-wide
    reconciliation_rate: float  # reconciliations/s system-wide
    abort_rate: float  # user-transaction aborts/s (deadlock + certification)

    def occupancy(self) -> Dict[str, float]:
        """``{state: stationary probability}``."""
        return dict(zip(self.states, self.pi))

    def rate(self, name: str) -> float:
        """Look up a predicted rate by its campaign-layer name."""
        try:
            return {
                "commit_rate": self.commit_rate,
                "deadlock_rate": self.deadlock_rate,
                "wait_rate": self.wait_rate,
                "reconciliation_rate": self.reconciliation_rate,
                "abort_rate": self.abort_rate,
            }[name]
        except KeyError:
            raise ConfigurationError(
                f"markov model predicts no rate named {name!r}"
            )


# --------------------------------------------------------------------- #
# shared hazard arithmetic
# --------------------------------------------------------------------- #


def _effective_k(p: ModelParameters, k: Optional[int]) -> int:
    """Replica fan-out: ``k`` clamped to the node count, default full."""
    if k is None:
        return p.nodes
    if k < 1:
        raise ConfigurationError(f"replication factor must be >= 1, got {k}")
    return min(k, p.nodes)


def _conflict_probabilities(
    pool: float, actions: int, db_size: int
) -> Tuple[float, float]:
    """Per-transaction wait and deadlock hazards from a conflict pool.

    The equation 2/9/11 construction: each of the transaction's ``Actions``
    lock requests collides with the pool's ``pool x Actions / 2`` held
    locks over ``DB_Size`` objects, and a deadlock needs two waits
    (``PD = PW^2 / pool``).  Returned as *expected counts per lifetime*
    (hazard numerators), deliberately unclamped so the fitted exponents
    stay clean across the whole sweep range.
    """
    if pool <= 0.0:
        return 0.0, 0.0
    pw = pool * actions**2 / (2.0 * db_size)
    pd = pw * actions**2 / (2.0 * db_size)  # = pw^2 / pool, simplified
    return pw, pd


def _lock_chain(
    strategy: str,
    p: ModelParameters,
    run_duration: float,
    pool0: float,
    congestion: float,
    serialization: float = 1.0,
) -> StrategyChain:
    """The blocking-strategy chain: running -> waiting -> restarting.

    ``run_duration`` is the pure execution time (the closed-form
    Transaction_Duration analogue); ``pool0`` the zero-contention conflict
    pool (the Total_Transactions analogue).  Deadlocks happen only from the
    waiting state, at the conditional hazard ``PD / PW`` — the paper's "it
    takes two waits to make a deadlock".  ``serialization > 1`` divides the
    escalation hazard: master-ordered schemes serialize same-object
    conflicts at one node, so only cross-master wait pairs can close a
    deadlock cycle (see :func:`_eager_chain`).
    """
    duration = max(run_duration, _EPS)
    pool = congestion * pool0
    pw, pd = _conflict_probabilities(pool, p.actions, p.db_size)
    wait_hazard = pw / duration
    escalation = (
        min(pd / (pw * serialization), 1.0) if pw > 0.0 else 0.0
    )
    wait_time = duration / 2.0  # victim waits about half a lifetime
    restart_time = duration / 2.0  # abort + undo residence
    chain = MarkovChain.from_transitions(
        ("running", "waiting", "restarting"),
        {
            ("running", "waiting"): wait_hazard,
            ("waiting", "running"): (1.0 - escalation) / wait_time,
            ("waiting", "restarting"): escalation / wait_time,
            ("restarting", "running"): 1.0 / restart_time,
        },
    )
    return StrategyChain(
        strategy=strategy,
        chain=chain,
        exits=(
            ("commit", "running", 1.0 / duration),
            ("deadlock", "restarting", 1.0 / restart_time),
        ),
        events=(("wait", "running", wait_hazard),),
        exposure_states=("running", "waiting"),  # both hold locks
        base_exposure=duration,
        congestion=congestion,
    )


# --------------------------------------------------------------------- #
# per-strategy builders
# --------------------------------------------------------------------- #


def _eager_chain(
    strategy: str, p: ModelParameters, k: Optional[int], congestion: float
) -> StrategyChain:
    """Eager replication: locks held at all ``k`` replicas, sequentially.

    Execution takes ``Actions x k x Action_Time`` (equation 6b, or its
    partial analogue), plus a commit round of ``2 x Message_Delay`` when
    there are remote replicas — the cost the closed form explicitly drops.
    The conflict pool is Little's law over that duration, i.e. equation 7
    (``k = Nodes``) or the partial pool ``TPS x Actions x Action_Time x
    Nodes x k``.

    The group and master variants share the pool (both write every
    replica inside the transaction, so waits follow equation 10 either
    way) but differ in deadlock formation.  Group ownership races each
    update to all ``k`` replica copies, so a conflicting pair can close a
    cycle at any copy — the paper's equation 11/12 escalation.  Master
    ownership locks each object at its owner *first*; same-object
    conflicts serialize there and only wait pairs spanning two distinct
    masters in opposite order can deadlock, which divides the escalation
    hazard by the fan-out ``k`` and lands the deadlock law on the
    equation-19 quadratic — "having a master for each object helps eager
    replication avoid deadlocks" (section 3), and exactly what the DES
    measures (see EXPERIMENTS.md's section-8 scorecard).
    """
    k_eff = _effective_k(p, k)
    duration = p.actions * k_eff * p.action_time
    if k_eff > 1:
        duration += 2.0 * p.message_delay
    pool0 = p.tps * p.nodes * max(duration, _EPS)
    serialization = float(k_eff) if strategy == "eager-master" else 1.0
    return _lock_chain(
        strategy, p, duration, pool0, congestion, serialization=serialization
    )


def _master_chain(
    strategy: str, p: ModelParameters, congestion: float
) -> StrategyChain:
    """Lazy-master / two-tier base: one node running the aggregate load.

    Locks are held only at the master for ``Actions x Action_Time``, so the
    pool is ``TPS x Nodes x Actions x Action_Time`` — the equation 19
    construction ("a single node serving the whole network's load").
    Replica propagation happens after commit and holds no locks, so it does
    not enter the chain; the replication factor cancels entirely.
    """
    duration = p.actions * p.action_time
    pool0 = p.tps * p.nodes * max(duration, _EPS)
    return _lock_chain(strategy, p, duration, pool0, congestion)


def _lazy_group_chain(
    p: ModelParameters, k: Optional[int], congestion: float
) -> StrategyChain:
    """Lazy group: local execution, asynchronous propagation, reconcile.

    The origin transaction runs locally in ``Actions x Action_Time`` and
    always commits (no distributed locks).  Its updates are then exposed
    for a propagation window (message delay + the replica apply time); a
    collision during that window is a reconciliation — the paper's
    "transactions that would wait in an eager system face reconciliation",
    so the collision hazard uses the *eager* pool (equation 7, or its
    partial ``Nodes x k`` analogue), and the per-transaction reconciliation
    probability converges to equation 9, making the system rate
    equation 14 (x ``k/Nodes`` under a placement).
    """
    k_eff = _effective_k(p, k)
    duration = max(p.actions * p.action_time, _EPS)
    apply_time = p.actions * p.action_time if k_eff > 1 else 0.0
    window = max(p.message_delay + apply_time, _EPS)
    pool0 = p.tps * p.nodes * p.actions * k_eff * p.action_time
    pool = congestion * pool0
    pw, _ = _conflict_probabilities(pool, p.actions, p.db_size)
    collision_hazard = pw / window
    reconcile_time = duration  # rerunning the loser is another transaction
    chain = MarkovChain.from_transitions(
        ("running", "propagating", "reconciling"),
        {
            ("running", "propagating"): 1.0 / duration,
            ("propagating", "running"): 1.0 / window,
            ("propagating", "reconciling"): collision_hazard,
            ("reconciling", "running"): 1.0 / reconcile_time,
        },
    )
    return StrategyChain(
        strategy="lazy-group",
        chain=chain,
        exits=(
            ("commit", "propagating", 1.0 / window),
            ("reconcile", "reconciling", 1.0 / reconcile_time),
        ),
        events=(("collision", "propagating", collision_hazard),),
        exposure_states=("running", "propagating"),
        base_exposure=duration + window,
        congestion=congestion,
    )


def _certification_chain(
    strategy: str,
    p: ModelParameters,
    run_duration: float,
    decision_window: float,
    congestion: float,
) -> StrategyChain:
    """The certification-strategy chain: running -> certifying -> restarting.

    Execution is coordination-free (no user locks), so there is no waiting
    state at all.  The transaction's footprint is *exposed* from its first
    read until the decision point — ``run_duration + decision_window`` —
    and a conflicting commit landing anywhere in that span surfaces at
    certification as a clean abort.  The conflict arithmetic is the same
    birthday construction as equation 2's PW (pool x Actions^2 / 2 x
    DB_Size), but it stops there: one conflicting pair is enough, no
    second wait, no ``PD = PW^2`` escalation.  Hence aborts/s grow as
    ``pool x arrivals ~ N^2`` — the quadratic law the cube-law-escape
    experiment measures (EXPERIMENTS.md).

    The aborted transaction resubmits after a restart residence of half a
    lifetime, mirroring the lock chain's victim bookkeeping.
    """
    duration = max(run_duration, _EPS)
    window = max(decision_window, _EPS)
    exposure = duration + window
    pool = congestion * p.tps * p.nodes * exposure
    pw, _ = _conflict_probabilities(pool, p.actions, p.db_size)
    abort_probability = min(pw, 1.0)
    restart_time = duration / 2.0
    chain = MarkovChain.from_transitions(
        ("running", "certifying", "restarting"),
        {
            ("running", "certifying"): 1.0 / duration,
            ("certifying", "running"): (1.0 - abort_probability) / window,
            ("certifying", "restarting"): abort_probability / window,
            ("restarting", "running"): 1.0 / restart_time,
        },
    )
    return StrategyChain(
        strategy=strategy,
        chain=chain,
        exits=(
            ("commit", "certifying", (1.0 - abort_probability) / window),
            ("abort", "restarting", 1.0 / restart_time),
        ),
        events=(),
        exposure_states=("running", "certifying"),
        base_exposure=exposure,
        congestion=congestion,
    )


def _deferred_update_chain(
    p: ModelParameters, k: Optional[int], congestion: float
) -> StrategyChain:
    """Deferred update: local execution, one certifier round trip.

    The decision window covers the request/decision round plus the
    replication lag of the apply stream — a replica can serve a read that
    is stale by one in-flight apply, which widens the footprint's
    vulnerability exactly like an extra message delay.
    """
    duration = p.actions * p.action_time
    window = 2.0 * p.message_delay + p.actions * p.action_time
    return _certification_chain(
        "deferred-update", p, duration, window, congestion
    )


def _scar_chain(
    p: ModelParameters, k: Optional[int], congestion: float
) -> StrategyChain:
    """SCAR: local execution, master lock round + validation + install.

    The decision window is the master RPC round plus the install residence
    at the masters (``Actions x Action_Time`` again — ``execute_install``
    pays the action time per write).
    """
    duration = p.actions * p.action_time
    window = 2.0 * p.message_delay + p.actions * p.action_time
    return _certification_chain("scar", p, duration, window, congestion)


def build_chain(
    strategy: str,
    p: ModelParameters,
    k: Optional[int] = None,
    congestion: float = 1.0,
) -> StrategyChain:
    """The transaction-state chain for one strategy at one parameter cell."""
    if congestion < 1.0:
        raise ConfigurationError(
            f"congestion multiplier must be >= 1, got {congestion}"
        )
    if strategy in ("eager-group", "eager-master"):
        return _eager_chain(strategy, p, k, congestion)
    if strategy == "lazy-group":
        return _lazy_group_chain(p, k, congestion)
    if strategy in ("lazy-master", "two-tier"):
        return _master_chain(strategy, p, congestion)
    if strategy == "deferred-update":
        return _deferred_update_chain(p, k, congestion)
    if strategy == "scar":
        return _scar_chain(p, k, congestion)
    raise ConfigurationError(
        f"no markov chain for strategy {strategy!r}; "
        f"expected one of {MARKOV_STRATEGIES}"
    )


# --------------------------------------------------------------------- #
# the predictor
# --------------------------------------------------------------------- #


def predict(
    strategy: str,
    p: ModelParameters,
    k: Optional[int] = None,
    feedback: bool = True,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> MarkovPrediction:
    """Solve one strategy's chain to a steady-state rate prediction.

    With ``feedback=True`` (the default) the conflict pool is resolved
    self-consistently: solve the chain, measure the tagged transaction's
    residence in lock-holding states, scale the pool by
    ``residence / base_exposure`` (Little's law), and iterate with damping
    until the congestion multiplier converges.  ``feedback=False`` is the
    pure closed-form-hazard chain — useful for isolating what the fixed
    point adds.
    """
    arrival_rate = p.tps * p.nodes
    congestion = 1.0
    iterations = 0
    sc = build_chain(strategy, p, k, congestion)
    pi = stationary_distribution(sc.chain)
    if feedback and arrival_rate > 0.0:
        for iterations in range(1, max_iter + 1):
            sojourn = _sojourn(sc, pi)
            exposure = sojourn * sum(
                pi[sc.chain.index(state)] for state in sc.exposure_states
            )
            target = min(
                max(exposure / max(sc.base_exposure, _EPS), 1.0),
                _CONGESTION_CAP,
            )
            updated = 0.5 * congestion + 0.5 * target
            if abs(updated - congestion) <= tol * max(1.0, congestion):
                congestion = updated
                break
            congestion = updated
            sc = build_chain(strategy, p, k, congestion)
            pi = stationary_distribution(sc.chain)
    sojourn = _sojourn(sc, pi)

    exit_rates = {"commit": 0.0, "deadlock": 0.0, "reconcile": 0.0,
                  "abort": 0.0}
    total_flux = sum(
        pi[sc.chain.index(state)] * rate for _, state, rate in sc.exits
    )
    if arrival_rate > 0.0 and total_flux > 0.0:
        for label, state, rate in sc.exits:
            flux = pi[sc.chain.index(state)] * rate
            exit_rates[label] = exit_rates.get(label, 0.0) + (
                arrival_rate * flux / total_flux
            )
    in_flight = arrival_rate * sojourn  # Little's law
    event_rates = {
        label: in_flight * pi[sc.chain.index(state)] * rate
        for label, state, rate in sc.events
    }

    return MarkovPrediction(
        strategy=strategy,
        params=p,
        replication_factor=_effective_k(p, k),
        states=sc.chain.states,
        pi=pi,
        congestion=congestion,
        iterations=iterations,
        sojourn=sojourn,
        commit_rate=exit_rates["commit"],
        deadlock_rate=exit_rates["deadlock"],
        wait_rate=event_rates.get("wait", 0.0),
        reconciliation_rate=exit_rates["reconcile"],
        # every deadlock victim is also an abort; certification chains add
        # their clean decision-point aborts on top
        abort_rate=exit_rates["deadlock"] + exit_rates["abort"],
    )


def _sojourn(sc: StrategyChain, pi: Tuple[float, ...]) -> float:
    """Mean time in system: 1 / (renewal flux per in-flight transaction)."""
    flux = sum(pi[sc.chain.index(state)] * rate for _, state, rate in sc.exits)
    if flux <= 0.0:
        return 0.0
    return 1.0 / flux


def reference_rate(
    strategy: str, p: ModelParameters, k: Optional[int] = None
) -> float:
    """The strategy's modelled danger rate under the Markov track.

    The Markov counterpart of the campaign layer's ``ANALYTIC_REFERENCE``
    column: eager and master schemes are judged on deadlocks/s, lazy-group
    on reconciliations/s.  Raises for strategies without a chain.
    """
    try:
        name, _ = MARKOV_REFERENCE[strategy]
    except KeyError:
        raise ConfigurationError(
            f"no markov reference rate for strategy {strategy!r}; "
            f"expected one of {MARKOV_STRATEGIES}"
        )
    return predict(strategy, p, k).rate(name)
