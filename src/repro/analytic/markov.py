"""Finite-state Markov chains: the analytic fast path's numerical core.

The closed forms (equations 2-19) are instant but coarse — pure power laws
with no feedback; the DES is accurate but grinds through every lock request.
This module is the third track: small continuous-time Markov chains over a
*tagged transaction's* states (running / waiting / restarting, or running /
propagating / reconciling for lazy schemes) whose stationary distribution
yields throughput, abort, and deadlock rates in microseconds per parameter
cell.  :mod:`repro.analytic.markov_strategies` builds the per-strategy
chains; this module owns the chain representation and the solvers.

Two solvers are provided, both dependency-free:

* ``direct`` — dense Gaussian elimination on the balance equations
  ``pi Q = 0, sum(pi) = 1`` (exact up to float round-off; the chains here
  have 3-4 states, so a dense solve is the fast path, not a compromise);
* ``power`` — power iteration on the uniformised discrete-time kernel
  ``P = I + Q / Lambda``, the classic iterative fallback, also used by the
  property tests to certify the direct answer (``pi P == pi``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: safety margin on the uniformisation rate so P keeps a strictly positive
#: diagonal (aperiodicity, hence power-iteration convergence)
_UNIFORMIZATION_SLACK = 1.05


@dataclass(frozen=True)
class MarkovChain:
    """A continuous-time Markov chain given by its off-diagonal rates.

    ``rates[i][j]`` is the transition rate from ``states[i]`` to
    ``states[j]`` (entries on the diagonal must be zero; the generator's
    diagonal is derived).  Rates are per second of model time, matching the
    Table-2 units.
    """

    states: Tuple[str, ...]
    rates: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.states)
        if n == 0:
            raise ConfigurationError("chain needs at least one state")
        if len(set(self.states)) != n:
            raise ConfigurationError(f"duplicate state names in {self.states}")
        if len(self.rates) != n or any(len(row) != n for row in self.rates):
            raise ConfigurationError(
                f"rate matrix must be {n}x{n} to match {self.states}"
            )
        for i, row in enumerate(self.rates):
            for j, rate in enumerate(row):
                if i == j and rate != 0.0:
                    raise ConfigurationError(
                        f"diagonal rate [{i}][{i}] must be 0, got {rate}"
                    )
                if rate < 0.0 or rate != rate:  # negative or NaN
                    raise ConfigurationError(
                        f"rate {self.states[i]}->{self.states[j]} must be "
                        f"a finite non-negative number, got {rate}"
                    )

    @classmethod
    def from_transitions(
        cls,
        states: Sequence[str],
        transitions: Mapping[Tuple[str, str], float],
    ) -> "MarkovChain":
        """Build a chain from a ``{(src, dst): rate}`` mapping.

        Unmentioned pairs default to rate zero; zero-rate entries may be
        listed explicitly for readability.
        """
        states = tuple(states)
        index = {name: i for i, name in enumerate(states)}
        n = len(states)
        rows = [[0.0] * n for _ in range(n)]
        for (src, dst), rate in transitions.items():
            if src not in index or dst not in index:
                raise ConfigurationError(
                    f"transition ({src!r}, {dst!r}) references unknown state"
                )
            rows[index[src]][index[dst]] = float(rate)
        return cls(states=states, rates=tuple(tuple(row) for row in rows))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def index(self, state: str) -> int:
        try:
            return self.states.index(state)
        except ValueError:
            raise ConfigurationError(
                f"unknown state {state!r}; chain has {self.states}"
            )

    def generator(self) -> List[List[float]]:
        """The generator matrix Q (diagonal = minus the row's exit rate)."""
        q = [list(row) for row in self.rates]
        for i, row in enumerate(q):
            row[i] = -sum(row)
        return q

    def uniformization_rate(self) -> float:
        """A rate dominating every state's total exit rate."""
        heaviest = max(sum(row) for row in self.rates)
        return heaviest * _UNIFORMIZATION_SLACK if heaviest > 0.0 else 1.0

    def transition_matrix(self) -> List[List[float]]:
        """The uniformised DTMC kernel ``P = I + Q / Lambda`` (stochastic)."""
        lam = self.uniformization_rate()
        p = [[rate / lam for rate in row] for row in self.rates]
        for i, row in enumerate(p):
            row[i] = 1.0 - sum(row)
        return p


# --------------------------------------------------------------------- #
# solvers
# --------------------------------------------------------------------- #


def stationary_distribution(
    chain: MarkovChain,
    method: str = "direct",
    tol: float = 1e-12,
    max_iter: int = 100_000,
) -> Tuple[float, ...]:
    """The stationary distribution ``pi`` with ``pi Q = 0, sum(pi) = 1``.

    ``method="direct"`` solves the balance equations densely;
    ``method="power"`` iterates the uniformised kernel until the L1 step
    falls below ``tol``.  Both return a non-negative vector summing to 1.
    """
    if method == "direct":
        pi = _solve_direct(chain)
    elif method == "power":
        pi = _solve_power(chain, tol=tol, max_iter=max_iter)
    else:
        raise ConfigurationError(
            f"unknown method {method!r}; expected 'direct' or 'power'"
        )
    # squash float-noise negatives and renormalise exactly once
    cleaned = [max(value, 0.0) for value in pi]
    total = sum(cleaned)
    if total <= 0.0:
        raise ConfigurationError("stationary solve produced a zero vector")
    return tuple(value / total for value in cleaned)


def residual(chain: MarkovChain, pi: Sequence[float]) -> float:
    """L1 residual ``||pi P - pi||_1`` of a candidate stationary vector."""
    p = chain.transition_matrix()
    n = len(chain.states)
    if len(pi) != n:
        raise ConfigurationError(
            f"pi has {len(pi)} entries for a {n}-state chain"
        )
    out = [0.0] * n
    for i, weight in enumerate(pi):
        row = p[i]
        for j in range(n):
            out[j] += weight * row[j]
    return sum(abs(out[j] - pi[j]) for j in range(n))


def _solve_direct(chain: MarkovChain) -> List[float]:
    """Gaussian elimination on ``Q^T pi = 0`` with the normalisation row.

    The last balance equation is redundant (rows of Q sum to zero), so it
    is replaced by ``sum(pi) = 1``, making the system square and (for an
    irreducible chain) uniquely solvable.
    """
    n = len(chain.states)
    q = chain.generator()
    # A = Q^T with the final row swapped for the normalisation constraint
    a = [[q[j][i] for j in range(n)] for i in range(n)]
    a[n - 1] = [1.0] * n
    b = [0.0] * (n - 1) + [1.0]

    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-300:
            raise ConfigurationError(
                "singular balance system: the chain is reducible "
                f"(states {chain.states})"
            )
        if pivot != col:
            a[col], a[pivot] = a[pivot], a[col]
            b[col], b[pivot] = b[pivot], b[col]
        inv = 1.0 / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor == 0.0:
                continue
            row, prow = a[r], a[col]
            for c in range(col, n):
                row[c] -= factor * prow[c]
            b[r] -= factor * b[col]

    pi = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = b[r]
        row = a[r]
        for c in range(r + 1, n):
            acc -= row[c] * pi[c]
        pi[r] = acc / row[r]
    return pi


def _solve_power(chain: MarkovChain, tol: float, max_iter: int) -> List[float]:
    """Power iteration on the uniformised kernel from the uniform vector."""
    p = chain.transition_matrix()
    n = len(chain.states)
    pi = [1.0 / n] * n
    for _ in range(max_iter):
        nxt = [0.0] * n
        for i, weight in enumerate(pi):
            if weight == 0.0:
                continue
            row = p[i]
            for j in range(n):
                nxt[j] += weight * row[j]
        step = sum(abs(nxt[j] - pi[j]) for j in range(n))
        pi = nxt
        if step <= tol:
            return pi
    raise ConfigurationError(
        f"power iteration did not converge within {max_iter} steps "
        f"(tol={tol:g}); use method='direct'"
    )


def state_map(chain: MarkovChain, pi: Sequence[float]) -> Dict[str, float]:
    """``{state name: stationary probability}`` for readable reporting."""
    return dict(zip(chain.states, pi))
