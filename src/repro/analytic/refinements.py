"""Exact (non-linearised) forms of the paper's probability approximations.

The paper linearises ``1 - (1 - x)^n ~= n x`` when deriving equation 2 and
ignores second-order effects throughout ("If DB_Size >> Nodes, such conflicts
will be rare").  These exact forms let the tests quantify the approximation
error and delimit the model's validity region (PW << 1), and give the
simulator-comparison benchmarks a fairer analytic target at high contention.
"""

from __future__ import annotations

import math

from repro.analytic.parameters import ModelParameters
from repro.analytic import eager as eager_eqs


def exact_wait_probability(p: ModelParameters) -> float:
    """Equation 2 before linearisation.

    ``PW = 1 - (1 - Transactions x Actions / (2 DB_Size))^Actions``

    The per-request collision probability is clamped to [0, 1] so the formula
    stays meaningful outside the dilute regime.
    """
    per_request = min(1.0, p.transactions * p.actions / (2 * p.db_size))
    return 1.0 - (1.0 - per_request) ** p.actions


def exact_eager_wait_probability(p: ModelParameters) -> float:
    """Equation 9 before linearisation (eager, N nodes).

    Total_Transactions other transactions each hold ~``Actions/2`` of the
    ``DB_Size`` objects; a transaction makes ``Actions`` independent
    requests.
    """
    total = eager_eqs.total_transactions(p)
    per_request = min(1.0, total * p.actions / (2 * p.db_size))
    return 1.0 - (1.0 - per_request) ** p.actions


def linearisation_error(p: ModelParameters) -> float:
    """Relative error of the linearised equation 2 versus the exact form.

    Near zero when ``PW << 1``; grows as contention rises, marking where the
    paper's closed forms stop being trustworthy.
    """
    from repro.analytic import single_node

    exact = exact_wait_probability(p)
    if exact == 0:
        return 0.0
    approx = single_node.wait_probability(p)
    return abs(approx - exact) / exact


def exact_collision_probability(p: ModelParameters) -> float:
    """Equation 17 computed without the independence shortcut.

    Treats the outbound set as ``k`` distinct uniform objects and the inbound
    set as ``m`` distinct uniform objects in a database of size ``D``; the
    probability the sets intersect is

    ``1 - C(D - k, m) / C(D, m)  =  1 - prod_{i=0}^{m-1} (D - k - i)/(D - i)``

    computed in log space for numerical stability.
    """
    from repro.analytic import lazy_group

    d = p.db_size
    k = min(int(round(lazy_group.outbound_updates(p))), d)
    m = min(int(round(lazy_group.inbound_updates(p))), d)
    if k <= 0 or m <= 0:
        return 0.0
    if k + m > d:
        return 1.0
    log_miss = 0.0
    for i in range(m):
        log_miss += math.log(d - k - i) - math.log(d - i)
    return 1.0 - math.exp(log_miss)


def poisson_collision_probability(p: ModelParameters) -> float:
    """Equation 17 with Poisson-thinned update sets.

    Models the outbound/inbound counts as Poisson rather than deterministic
    and computes the intersection probability
    ``1 - exp(-k m / D)`` — the standard birthday-style refinement.  Close to
    the exact hypergeometric form above and to the paper's ``k m / D`` when
    small.
    """
    from repro.analytic import lazy_group

    k = lazy_group.outbound_updates(p)
    m = lazy_group.inbound_updates(p)
    if k <= 0 or m <= 0:
        return 0.0
    return 1.0 - math.exp(-k * m / p.db_size)


def validity_region(p: ModelParameters, threshold: float = 0.1) -> bool:
    """True when the linearised model is trustworthy at these parameters.

    The criterion is the paper's implicit one: the wait probability must be
    small (``PW < threshold``) so that ``rare^2`` reasoning about deadlocks
    holds.
    """
    return exact_eager_wait_probability(p) < threshold
