"""Eager replication scaling — paper equations 6-13.

"In a system of N nodes, N times as many transactions will be originating
per second. Since each update transaction must replicate its updates to the
other (N-1) nodes ... the transaction size for eager systems grows by a
factor of N and the node update rate grows by N^2."
"""

from __future__ import annotations

from repro.analytic.parameters import ModelParameters


# --------------------------------------------------------------------- #
# equation 6: size, duration, aggregate rate
# --------------------------------------------------------------------- #

def transaction_size(p: ModelParameters) -> float:
    """Equation 6a: ``Transaction_Size = Actions x Nodes``."""
    return p.actions * p.nodes


def transaction_duration(p: ModelParameters) -> float:
    """Equation 6b: ``Transaction_Duration = Actions x Nodes x Action_Time``.

    Eager updates are applied to replicas sequentially in this model, so the
    transaction takes ``Nodes`` times longer than a single-node one.
    """
    return p.actions * p.nodes * p.action_time


def total_tps(p: ModelParameters) -> float:
    """Equation 6c: ``Total_TPS = TPS x Nodes``."""
    return p.tps * p.nodes


# --------------------------------------------------------------------- #
# equations 7-8: the quadratic explosion
# --------------------------------------------------------------------- #

def total_transactions(p: ModelParameters) -> float:
    """Equation 7: concurrent transactions system-wide.

    ``Total_Transactions = TPS x Actions x Action_Time x Nodes^2``

    Quadratic: N nodes originate N times the transactions and each lives N
    times longer (eager) or spawns N replica transactions (lazy) — the paper
    notes equations 7 and 8 "apply to both eager and lazy systems".
    """
    return p.tps * p.actions * p.action_time * p.nodes**2


def action_rate(p: ModelParameters) -> float:
    """Equation 8: updates applied per second system-wide.

    ``Action_Rate = Total_TPS x Transaction_Size = TPS x Actions x Nodes^2``
    """
    return p.tps * p.actions * p.nodes**2


# --------------------------------------------------------------------- #
# equations 9-12: waits and deadlocks
# --------------------------------------------------------------------- #

def wait_probability(p: ModelParameters) -> float:
    """Equation 9: probability an eager transaction waits.

    ``PW_eager ~= Total_Transactions x Actions x Actions / (2 DB_Size)
               = TPS x Action_Time x Actions^3 x Nodes^2 / (2 DB_Size)``
    """
    return p.tps * p.action_time * p.actions**3 * p.nodes**2 / (2 * p.db_size)


def total_wait_rate(p: ModelParameters) -> float:
    """Equation 10: system-wide wait rate.

    ``Total_Eager_Wait_Rate
        = Total_Transactions x PW_eager / Transaction_Duration
        = TPS^2 x Action_Time x (Actions x Nodes)^3 / (2 DB_Size)``

    **Cubic in both Actions and Nodes.**
    """
    return (
        p.tps**2 * p.action_time * (p.actions * p.nodes) ** 3 / (2 * p.db_size)
    )


def deadlock_probability(p: ModelParameters) -> float:
    """Equation 11: probability an eager transaction deadlocks.

    ``PD_eager ~= Total_Transactions x Actions^4 / (4 DB_Size^2)
               = TPS x Action_Time x Actions^5 x Nodes^2 / (4 DB_Size^2)``
    """
    return (
        p.tps * p.action_time * p.actions**5 * p.nodes**2 / (4 * p.db_size**2)
    )


def total_deadlock_rate(p: ModelParameters) -> float:
    """Equation 12 — the headline result.

    ``Total_Eager_Deadlock_Rate
        = Total_Transactions x PD_eager / Transaction_Duration
        = TPS^2 x Action_Time x Actions^5 x Nodes^3 / (4 DB_Size^2)``

    "Deadlocks rise as the third power of the number of nodes ... and the
    fifth power of the transaction size. Going from one-node to ten nodes
    increases the deadlock rate a thousand fold."
    """
    return (
        p.tps**2 * p.action_time * p.actions**5 * p.nodes**3
        / (4 * p.db_size**2)
    )


def parallel_update_deadlock_rate(p: ModelParameters) -> float:
    """Footnote 2's alternate model: replicas updated in parallel.

    "An alternate model has eager actions broadcast the update to all
    replicas in one instant. The replicas are updated in parallel and the
    elapsed time for each action is constant (independent of N). ... the
    number of concurrent transactions stays constant with scaleup. This
    model avoids the polynomial explosion of waits and deadlocks if the
    total TPS rate is held constant."

    With per-action elapsed time back to ``Action_Time``, the system behaves
    like one node running the aggregate load ``TPS x Nodes`` (the equation-5
    construction), i.e. the deadlock rate drops from cubic to quadratic —
    the same law as lazy master (equation 19):

    ``(TPS x Nodes)^2 x Action_Time x Actions^5 / (4 DB_Size^2)``
    """
    return (
        (p.tps * p.nodes) ** 2
        * p.action_time
        * p.actions**5
        / (4 * p.db_size**2)
    )


def total_deadlock_rate_scaled_db(p: ModelParameters) -> float:
    """Equation 13: deadlock rate when DB_Size grows with Nodes.

    With ``DB_Size := DB_Size x Nodes`` substituted into equation 12 the
    denominator gains ``Nodes^2``:

    ``Eager_Deadlock_Rate_Scaled_DB
        = TPS^2 x Action_Time x Actions^5 x Nodes / (4 DB_Size^2)``

    "Now a ten-fold growth in the number of nodes creates only a ten-fold
    growth in the deadlock rate. This is still an unstable situation, but it
    is a big improvement."  Here ``p.db_size`` is the *per-node-unit* size.
    """
    return (
        p.tps**2 * p.action_time * p.actions**5 * p.nodes / (4 * p.db_size**2)
    )
