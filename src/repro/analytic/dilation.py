"""Time-dilation correction — the second-order effect the paper sets aside.

"A more careful analysis would consider th[e] fact that, as system load and
contention rises, the time to complete an action increases.  In a scaleable
server system, this time-dilation is a second-order effect and is ignored
here." (section 2)

The simulator is a *closed* system, so it dilates: each node must apply the
whole network's update stream (equation 8 / Nodes per node), and as that
utilization approaches saturation, queueing stretches every action.  This
module models the effect with the standard M/M/1 response-time factor and
produces dilation-corrected danger curves:

* per-node update utilization   ``rho = TPS x Actions x Nodes x Action_Time``
* dilated action time           ``Action_Time / (1 - rho)``
* dilated deadlock rate         equation 12 x ``1 / (1 - rho)``

The corrected curves grow *faster* than the paper's pure polynomials and
match the simulator's measured exponents (see
``benchmarks/test_bench_dilation.py``): the closed forms are a lower bound
on the instability, which only sharpens the paper's conclusion.
"""

from __future__ import annotations

from typing import Optional

from repro.analytic import eager, lazy_master
from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError


def node_utilization(p: ModelParameters) -> float:
    """Fraction of a node's capacity consumed by update application.

    Each node performs the system's per-node action rate
    (equation 8 / Nodes = ``TPS x Actions x Nodes``) at ``Action_Time``
    seconds per action.
    """
    return p.tps * p.actions * p.nodes * p.action_time


def saturation_nodes(p: ModelParameters) -> float:
    """The node count at which a node's update work saturates it (rho = 1).

    "Growing power at an N^2 rate is problematic" — beyond this point the
    fixed-capacity system cannot keep up at all.
    """
    per_node = p.tps * p.actions * p.action_time
    if per_node <= 0:
        raise ConfigurationError("needs a positive workload")
    return 1.0 / per_node


def dilated_action_time(p: ModelParameters) -> float:
    """Effective action time under queueing: ``Action_Time / (1 - rho)``.

    Returns ``inf`` at or beyond saturation.
    """
    rho = node_utilization(p)
    if rho >= 1.0:
        return float("inf")
    return p.action_time / (1.0 - rho)


def dilated_parameters(p: ModelParameters) -> Optional[ModelParameters]:
    """The model parameters with the dilated action time substituted.

    Returns None at or beyond saturation (the model has no steady state).
    """
    stretched = dilated_action_time(p)
    if stretched == float("inf"):
        return None
    return p.with_(action_time=stretched)


def dilated_eager_deadlock_rate(p: ModelParameters) -> float:
    """Equation 12 with queueing dilation: the closed-system prediction.

    ``Total_Eager_Deadlock_Rate x 1 / (1 - rho)`` — because the deadlock
    rate (equation 12) is linear in ``Action_Time``, substituting the
    dilated action time multiplies it by the response-time factor.
    Diverges at saturation.
    """
    rho = node_utilization(p)
    if rho >= 1.0:
        return float("inf")
    return eager.total_deadlock_rate(p) / (1.0 - rho)


def dilated_eager_wait_rate(p: ModelParameters) -> float:
    """Equation 10 with queueing dilation (same linear substitution)."""
    rho = node_utilization(p)
    if rho >= 1.0:
        return float("inf")
    return eager.total_wait_rate(p) / (1.0 - rho)


def dilated_lazy_master_deadlock_rate(p: ModelParameters) -> float:
    """Equation 19 with queueing dilation."""
    rho = node_utilization(p)
    if rho >= 1.0:
        return float("inf")
    return lazy_master.deadlock_rate(p) / (1.0 - rho)


def effective_exponent(
    fn, p: ModelParameters, low_nodes: int, high_nodes: int
) -> float:
    """Local growth exponent of ``fn`` between two node counts.

    ``d ln(rate) / d ln(N)`` estimated by the two-point secant — the number
    a log-log fit over that range would report.  For the dilated eager rate
    this exceeds 3 and grows toward saturation, quantifying how far above
    cubic a closed-system measurement should sit.
    """
    import math

    lo = fn(p.with_(nodes=low_nodes))
    hi = fn(p.with_(nodes=high_nodes))
    if not (0 < lo < float("inf")) or not (0 < hi < float("inf")):
        raise ConfigurationError("exponent undefined at or past saturation")
    return math.log(hi / lo) / math.log(high_nodes / low_nodes)
