"""Lazy group replication — paper equations 14-18.

"Transactions that would wait in an eager replication system face
reconciliation in a lazy-group replication system. Waits are much more
frequent than deadlocks because it takes two waits to make a deadlock."

So the connected lazy-group reconciliation rate follows the *wait* rate
(equation 10), and the disconnected/mobile analysis (equations 15-18) counts
overlapping update sets accumulated while a node is dark.
"""

from __future__ import annotations

from repro.analytic.parameters import ModelParameters
from repro.analytic import eager
from repro.exceptions import ConfigurationError


def reconciliation_rate(p: ModelParameters) -> float:
    """Equation 14: system-wide reconciliation rate, connected operation.

    ``Lazy_Group_Reconciliation_Rate
        = TPS^2 x Action_Time x (Actions x Nodes)^3 / (2 DB_Size)``

    Identical in form to the eager wait rate (equation 10): every would-be
    wait becomes a reconciliation.  "Having the reconciliation rate rise by a
    factor of a thousand when the system scales up by a factor of ten is
    frightening."
    """
    return eager.total_wait_rate(p)


# --------------------------------------------------------------------- #
# the disconnected / mobile case
# --------------------------------------------------------------------- #

def outbound_updates(p: ModelParameters) -> float:
    """Equation 15: distinct pending outbound object updates at reconnect.

    ``Outbound_Updates ~= Disconnect_Time x TPS x Actions``
    """
    return p.disconnect_time * p.tps * p.actions


def inbound_updates(p: ModelParameters) -> float:
    """Equation 16: pending inbound updates from the rest of the network.

    ``Inbound_Updates ~= (Nodes - 1) x Disconnect_Time x TPS x Actions``
    """
    return (p.nodes - 1) * p.disconnect_time * p.tps * p.actions


def collision_probability(p: ModelParameters, exact_nodes: bool = False) -> float:
    """Equation 17: chance one node needs reconciliation per disconnect cycle.

    ``P(collision) ~= Inbound x Outbound / DB_Size
                   ~= Nodes x (Disconnect_Time x TPS x Actions)^2 / DB_Size``

    The paper approximates ``Nodes - 1 ~= Nodes``; pass ``exact_nodes=True``
    to keep the exact factor.
    """
    factor = (p.nodes - 1) if exact_nodes else p.nodes
    return factor * (p.disconnect_time * p.tps * p.actions) ** 2 / p.db_size


def mobile_reconciliation_rate(p: ModelParameters, exact_nodes: bool = False) -> float:
    """Equation 18: system-wide reconciliation rate for disconnected nodes.

    ``Lazy_Group_Reconciliation_Rate(mobile)
        = P(collision) x Nodes / Disconnect_Time
        = Disconnect_Time x (TPS x Actions x Nodes)^2 / DB_Size``

    "The quadratic nature of this equation suggests that a system that
    performs well on a few nodes with simple transactions may become unstable
    as the system scales up."
    """
    if p.disconnect_time <= 0:
        raise ConfigurationError(
            "mobile reconciliation rate requires disconnect_time > 0"
        )
    return collision_probability(p, exact_nodes=exact_nodes) * p.nodes / p.disconnect_time
