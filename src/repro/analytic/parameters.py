"""Model parameters — the paper's Table 2.

    DB_Size                   number of distinct objects in the database
    Nodes                     number of nodes; each node replicates all objects
    Transactions              concurrent transactions at a node (derived)
    TPS                       transactions per second originating at a node
    Actions                   number of updates in a transaction
    Action_Time               time to perform an action
    Time_Between_Disconnects  mean time between network disconnects of a node
    Disconnected_Time         mean time a node is disconnected
    Message_Delay             time between object update and replica update
                              (ignored by the analytic model)
    Message_CPU               send/apply processing time (ignored)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ModelParameters:
    """Parameters of the replication model (Table 2).

    The analytic model ignores ``message_delay`` and ``message_cpu`` ("These
    delays and extra processing are ignored"); they are carried here because
    the simulator *can* honour them, letting experiments show how message
    costs worsen the analytic predictions.
    """

    db_size: int = 1000
    nodes: int = 1
    tps: float = 10.0
    actions: int = 4
    action_time: float = 0.01
    time_between_disconnects: float = 0.0
    disconnect_time: float = 0.0
    message_delay: float = 0.0
    message_cpu: float = 0.0

    def __post_init__(self) -> None:
        if self.db_size <= 0:
            raise ConfigurationError(f"db_size must be positive, got {self.db_size}")
        if self.nodes <= 0:
            raise ConfigurationError(f"nodes must be positive, got {self.nodes}")
        if self.tps < 0:
            raise ConfigurationError(f"tps must be >= 0, got {self.tps}")
        if self.actions <= 0:
            raise ConfigurationError(f"actions must be positive, got {self.actions}")
        if self.action_time < 0:
            raise ConfigurationError(
                f"action_time must be >= 0, got {self.action_time}"
            )
        if self.disconnect_time < 0 or self.time_between_disconnects < 0:
            raise ConfigurationError("disconnect times must be >= 0")
        if self.message_delay < 0 or self.message_cpu < 0:
            raise ConfigurationError("message costs must be >= 0")

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #

    @property
    def transactions(self) -> float:
        """Equation 1: concurrent transactions originating at one node.

        ``Transactions = TPS x Actions x Action_Time``
        """
        return self.tps * self.actions * self.action_time

    @property
    def transaction_duration(self) -> float:
        """Single-node transaction lifetime: ``Actions x Action_Time``."""
        return self.actions * self.action_time

    def with_(self, **changes: Any) -> "ModelParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def scaled_db(self) -> "ModelParameters":
        """Database grown in proportion to nodes (the equation-13 regime).

        "one might imagine that the database size grows with the number of
        nodes (as in the checkbook example ...). More nodes, and more
        transactions mean more data."
        """
        return self.with_(db_size=self.db_size * self.nodes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"DB_Size={self.db_size} Nodes={self.nodes} TPS={self.tps} "
            f"Actions={self.actions} Action_Time={self.action_time}"
            + (
                f" Disconnect_Time={self.disconnect_time}"
                if self.disconnect_time
                else ""
            )
        )
