"""Derived rates for the two-tier scheme (paper section 7).

The paper gives no new closed forms for two-tier — it states the scheme's
behaviour in terms of the earlier equations:

* "When executing a base transaction, the two-tier scheme is a lazy-master
  scheme. So, the deadlock rate for base transactions is given by
  equation (19)."  Deadlocked base transactions are "resubmitted and
  reprocessed until [they succeed]", so deadlocks cost retries, not
  reconciliations.
* "The reconciliation rate for base transactions will be zero if all the
  transactions commute."  Otherwise it is "driven by the rate at which the
  base transactions fail their acceptance criteria."

This module turns those statements into functions, parameterising the
acceptance-failure path by (a) the fraction of transactions that do *not*
commute and (b) the collision probability from the mobile analysis — a
non-commuting tentative transaction fails its (strict, equal-output)
acceptance test exactly when somebody else touched its data meanwhile, which
is the equation-17 collision event.
"""

from __future__ import annotations

from repro.analytic.parameters import ModelParameters
from repro.analytic import lazy_group, lazy_master


def base_deadlock_rate(p: ModelParameters) -> float:
    """Deadlock rate for base transactions = equation 19 (lazy master).

    "This is still an N^2 deadlock rate."
    """
    return lazy_master.deadlock_rate(p)


def expected_retries_per_base_txn(p: ModelParameters) -> float:
    """Mean resubmissions per base transaction due to deadlock victims.

    With per-transaction deadlock probability ``PD`` (small), the expected
    number of retries of a resubmit-until-success loop is ``PD/(1-PD)``.
    """
    total_rate = lazy_master.deadlock_rate(p)
    txn_rate = p.tps * p.nodes
    if txn_rate <= 0:
        return 0.0
    pd = min(total_rate / txn_rate, 0.999999)
    return pd / (1.0 - pd)


def reconciliation_rate(
    p: ModelParameters, non_commuting_fraction: float = 0.0
) -> float:
    """Tentative-transaction rejection rate under two-tier replication.

    * All transactions commute (``non_commuting_fraction == 0``) → **zero**,
      the paper's key claim.
    * A fraction ``f`` of transactions overwrite rather than commute → they
      are rejected when their inputs changed during the disconnect window,
      i.e. at ``f`` times the equation-18 collision rate.
    """
    if not 0.0 <= non_commuting_fraction <= 1.0:
        raise ValueError("non_commuting_fraction must be in [0, 1]")
    if non_commuting_fraction == 0.0:
        return 0.0
    return non_commuting_fraction * lazy_group.mobile_reconciliation_rate(p)


def system_delusion(p: ModelParameters) -> float:
    """Divergence of the *master* database under two-tier replication.

    Identically zero: base transactions execute with single-copy
    serializability, so "the master database is always converged — there is
    no system delusion."  Provided as a function for symmetry in the
    strategy-comparison table.
    """
    return 0.0
