"""Network messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_ids = itertools.count(1)


def reset_message_ids() -> None:
    """Restart the global message id counter (test isolation only)."""
    global _message_ids
    _message_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """One network message.

    Attributes:
        src: sending node id.
        dst: receiving node id.
        kind: short routing tag, e.g. ``"replica-update"`` or ``"rpc"``.
        payload: arbitrary protocol data.
        send_time: virtual time the send was issued.
        deliver_time: virtual time of delivery (set by the network).
        msg_id: unique id preserving global send order.
    """

    src: int
    dst: int
    kind: str
    payload: Any
    send_time: float = 0.0
    deliver_time: float = 0.0
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def latency(self) -> float:
        """Delivery latency including any time parked while disconnected."""
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst} "
            f"@{self.send_time:.4g}>"
        )
