"""The network fabric connecting simulated nodes."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.exceptions import ConfigurationError, SimulationError
from repro.network.message import Message
from repro.sim.protocol import EngineProtocol

Handler = Callable[[Message], Any]


class Network:
    """Message fabric with delay, node disconnects, and store-and-forward.

    Each node registers one handler.  ``send`` stamps and routes a message:

    * both endpoints connected and reachable → deliver after
      ``message_delay`` (plus optional per-message ``extra_delay``),
    * sender disconnected → park in the sender's *outbound* queue,
    * receiver disconnected → park in the receiver's *inbound* queue,

    queues flush in FIFO order on reconnect, preserving the commit order that
    lazy-master propagation relies on.

    Handlers may be plain callables or generator functions; generator results
    are run as engine processes so protocol handlers can block on locks.
    """

    def __init__(
        self,
        engine: EngineProtocol,
        num_nodes: int,
        message_delay: float = 0.0,
    ):
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        if message_delay < 0:
            raise ConfigurationError("message_delay must be >= 0")
        self.engine = engine
        self.num_nodes = num_nodes
        self.message_delay = message_delay
        self._handlers: Dict[int, Handler] = {}
        self._connected: Set[int] = set(range(num_nodes))
        self._unreachable_pairs: Set[Tuple[int, int]] = set()
        self._outbound: Dict[int, Deque[Message]] = {}
        self._inbound: Dict[int, Deque[Message]] = {}
        self.fault_injector = None  # optional repro.faults.FaultInjector
        self.telemetry = None  # optional repro.obs.samplers.Telemetry
        self._handler_proc_names: Dict[str, str] = {}  # kind -> process name
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_parked = 0
        self.in_flight = 0  # scheduled for delivery, not yet handled
        self._latency_total = 0.0
        self._latency_max = 0.0

    # ------------------------------------------------------------------ #
    # registration & topology
    # ------------------------------------------------------------------ #

    def register(self, node_id: int, handler: Handler) -> None:
        """Install ``handler`` as the message sink for ``node_id``."""
        self._check_node(node_id)
        self._handlers[node_id] = handler

    def install_fault_injector(self, injector) -> None:
        """Route every inter-node message through ``injector.route``.

        The injector sees messages about to go on the wire (both endpoints
        connected and reachable) and decides drops, duplicates, and extra
        latency.  Self-sends (retry timers) are exempt — they never touch a
        link.  One injector per network.
        """
        if self.fault_injector is not None:
            raise ConfigurationError("a fault injector is already installed")
        self.fault_injector = injector

    def bind_telemetry(self, telemetry) -> None:
        """Register this fabric's gauges on a telemetry handle.

        ``net_inflight`` is the congestion signal the paper's lazy schemes
        make interesting: replica updates queued on the wire.  ``net_parked``
        counts store-and-forward backlog (dark mobiles, open partitions).
        """
        self.telemetry = telemetry
        telemetry.gauge("net_inflight", lambda: self.in_flight)
        telemetry.gauge("net_parked", self.parked_total)
        telemetry.counter_rate("message_rate",
                               lambda: self.messages_delivered)

    def is_connected(self, node_id: int) -> bool:
        return node_id in self._connected

    def disconnect(self, node_id: int) -> None:
        """Take ``node_id`` off the network (mobile node going dark)."""
        self._check_node(node_id)
        self._connected.discard(node_id)

    def reconnect(self, node_id: int) -> None:
        """Bring ``node_id`` back and flush parked traffic in FIFO order.

        Outbound messages the node queued while dark are sent first (the
        paper's step: the mobile node *sends* its deferred updates), then the
        inbound backlog is delivered to it.
        """
        self._check_node(node_id)
        if node_id in self._connected:
            return
        self._connected.add(node_id)
        self.flush_parked(node_id)

    def flush_parked(self, node_id: int) -> None:
        """Redeliver a connected node's parked traffic (outbound first).

        Inbound messages whose pair is still partitioned stay parked — they
        flush when that partition heals.  No-op for a disconnected node.
        """
        self._check_node(node_id)
        if node_id not in self._connected:
            return
        outbound = self._outbound.pop(node_id, None)
        if outbound:
            for msg in outbound:
                self._route(msg)
        inbound = self._inbound.pop(node_id, None)
        if inbound:
            for msg in inbound:
                if self.reachable(msg.src, msg.dst):
                    self._deliver_after_delay(msg)
                else:
                    self._inbound.setdefault(node_id, deque()).append(msg)

    def set_reachable(self, a: int, b: int, reachable: bool) -> None:
        """Partition override for the pair (a, b), symmetric and idempotent.

        ``set_reachable(a, b, x)`` and ``set_reachable(b, a, x)`` are the
        same call: the pair is stored unordered.  Healing (``True``) flushes
        messages that parked while the pair was cut, mirroring
        :meth:`reconnect` — convergence after heal depends on it.
        """
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise ConfigurationError(
                f"cannot change reachability of node {a} to itself"
            )
        pair = (min(a, b), max(a, b))
        if not reachable:
            self._unreachable_pairs.add(pair)
            return
        if pair not in self._unreachable_pairs:
            return
        self._unreachable_pairs.discard(pair)
        self._flush_healed(a)
        self._flush_healed(b)

    def _flush_healed(self, node_id: int) -> None:
        """Redeliver inbound messages whose pair just became reachable."""
        if node_id not in self._connected:
            return
        queue = self._inbound.get(node_id)
        if not queue:
            return
        flushing = [m for m in queue if self.reachable(m.src, m.dst)]
        if not flushing:
            return
        kept = deque(m for m in queue if not self.reachable(m.src, m.dst))
        if kept:
            self._inbound[node_id] = kept
        else:
            del self._inbound[node_id]
        for msg in flushing:
            self._deliver_after_delay(msg)

    def reachable(self, a: int, b: int) -> bool:
        pair = (min(a, b), max(a, b))
        return pair not in self._unreachable_pairs

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        payload: Any,
        extra_delay: float = 0.0,
    ) -> Message:
        """Send ``payload`` from ``src`` to ``dst``.

        Never raises on disconnection — disconnected traffic is parked, which
        is the store-and-forward behaviour mobile replication requires.  Use
        :meth:`is_connected` first if the caller needs fail-fast semantics.
        """
        self._check_node(src)
        self._check_node(dst)
        msg = Message(
            src=src, dst=dst, kind=kind, payload=payload, send_time=self.engine.now
        )
        msg.deliver_time = self.engine.now + self.message_delay + extra_delay
        self.messages_sent += 1
        if src not in self._connected:
            self._outbound.setdefault(src, deque()).append(msg)
            self.messages_parked += 1
            return msg
        self._route(msg)
        return msg

    def _route(self, msg: Message) -> None:
        if msg.dst not in self._connected or not self.reachable(msg.src, msg.dst):
            self._inbound.setdefault(msg.dst, deque()).append(msg)
            self.messages_parked += 1
            return
        if self.fault_injector is not None and msg.src != msg.dst:
            for fault_msg, extra in self.fault_injector.route(msg):
                if extra > 0.0:
                    if fault_msg.deliver_time < self.engine.now:
                        fault_msg.deliver_time = self.engine.now
                    fault_msg.deliver_time += extra
                self._deliver_after_delay(fault_msg)
            return
        self._deliver_after_delay(msg)

    def park_inbound(self, msg: Message) -> None:
        """Re-park a delivered message for later redelivery.

        Used when the receiver cannot process traffic yet (a crashed node
        that a disconnect schedule reconnected); :meth:`flush_parked`
        redelivers after recovery.
        """
        self._inbound.setdefault(msg.dst, deque()).append(msg)
        self.messages_parked += 1

    def _deliver_after_delay(self, msg: Message) -> None:
        delay = max(0.0, msg.deliver_time - self.engine.now)
        # a message parked past its nominal delivery time goes out promptly
        if msg.deliver_time < self.engine.now:
            msg.deliver_time = self.engine.now
        self.in_flight += 1
        self.engine.schedule(delay, self._deliver, msg)

    def _deliver(self, msg: Message) -> None:
        self.in_flight -= 1
        if msg.dst not in self._connected or not self.reachable(msg.src, msg.dst):
            # the destination went dark while the message was in flight:
            # park it for redelivery at the next reconnect
            self._inbound.setdefault(msg.dst, deque()).append(msg)
            self.messages_parked += 1
            return
        handler = self._handlers.get(msg.dst)
        if handler is None:
            raise SimulationError(f"no handler registered for node {msg.dst}")
        msg.deliver_time = self.engine.now
        self.messages_delivered += 1
        self._latency_total += msg.latency
        if msg.latency > self._latency_max:
            self._latency_max = msg.latency
        result = handler(msg)
        if result is not None and hasattr(result, "send"):
            # one interned name per message kind: the per-message id suffix
            # only ever got stripped again by the profiler's bucketing
            names = self._handler_proc_names
            name = names.get(msg.kind)
            if name is None:
                name = names[msg.kind] = f"handler-{msg.kind}"
            self.engine._spawn(result, name)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def mean_latency(self) -> float:
        """Mean delivery latency, including time parked while disconnected.

        The store-and-forward contribution is the measurable face of the
        paper's 'It is as though the message propagation time was 24 hours'
        observation about nightly-sync mobiles.
        """
        if self.messages_delivered == 0:
            return 0.0
        return self._latency_total / self.messages_delivered

    @property
    def max_latency(self) -> float:
        return self._latency_max

    def parked_outbound(self, node_id: int) -> int:
        return len(self._outbound.get(node_id, ()))

    def parked_inbound(self, node_id: int) -> int:
        return len(self._inbound.get(node_id, ()))

    def parked_total(self) -> int:
        """Messages currently waiting in store-and-forward queues."""
        return (sum(len(q) for q in self._outbound.values())
                + sum(len(q) for q in self._inbound.values()))

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ConfigurationError(
                f"node id {node_id} out of range [0, {self.num_nodes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Network nodes={self.num_nodes} sent={self.messages_sent} "
            f"delivered={self.messages_delivered}>"
        )
