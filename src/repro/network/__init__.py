"""Simulated network: delayed delivery, disconnects, store-and-forward.

The paper's mobile scenario is "a node is disconnected most of the time ...
when first connected, a mobile node sends and receives deferred replica
updates".  The :class:`~repro.network.network.Network` models exactly that:

* every message between connected nodes is delivered after
  ``message_delay`` (Table 2's ``Message_Delay``, which the analytic model
  sets to zero but the simulator can vary),
* messages to or from a disconnected node are parked in store-and-forward
  queues and flushed in order when the node reconnects,
* an optional per-pair reachability override supports partition experiments.
"""

from repro.network.message import Message
from repro.network.network import Network

__all__ = ["Message", "Network"]
