"""Shared compact-spec parsing for CLI flags.

Both ``--faults`` and ``--placement`` accept compact, comma-separated
``key=value`` strings (``drop=0.05,partition=2``; ``hash:k=3,seed=7``).
This module is the single implementation of that grammar so the two flags
parse — and fail — identically:

* :func:`split_spec_items` tokenises a comma-separated ``key=value`` list,
* :func:`parse_prefixed_spec` peels an optional ``kind:`` prefix
  (``hash:k=3`` → ``("hash", [("k", "3")])``),
* the ``coerce_*`` helpers convert raw values with uniform error wording.

All errors are :class:`~repro.exceptions.ConfigurationError` with messages
of the shape ``bad <what> spec item '...'`` / ``bad value for 'key'``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.exceptions import ConfigurationError

#: spec value meaning "unbounded" (never heals / never recovers)
FOREVER = math.inf


def split_spec_items(spec: str, what: str = "fault") -> List[Tuple[str, str]]:
    """Tokenise ``"a=1, b=2"`` into ``[("a", "1"), ("b", "2")]``.

    Keys are lowercased and stripped; empty items (stray commas) are
    skipped.  ``what`` names the spec family in error messages.
    """
    items: List[Tuple[str, str]] = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"bad {what} spec item {part!r}: expected key=value"
            )
        key, _, raw = part.partition("=")
        items.append((key.strip().lower(), raw.strip()))
    return items


def parse_prefixed_spec(
    spec: str, what: str = "placement"
) -> Tuple[str, List[Tuple[str, str]]]:
    """Split ``"kind:key=value,..."`` into ``(kind, items)``.

    A bare ``"kind"`` with no parameters is allowed (``"full"``).  The
    ``kind`` is lowercased; parameters go through :func:`split_spec_items`.
    """
    text = str(spec).strip()
    if not text:
        raise ConfigurationError(f"empty {what} spec")
    kind, sep, rest = text.partition(":")
    kind = kind.strip().lower()
    if not kind or "=" in kind:
        raise ConfigurationError(
            f"bad {what} spec {spec!r}: expected 'kind' or 'kind:key=value,...'"
        )
    if not sep:
        return kind, []
    return kind, split_spec_items(rest, what=what)


def coerce_float(key: str, raw: str) -> float:
    """A float, or a uniform ConfigurationError."""
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"bad value for {key!r}: {raw!r} is not a number"
        )


def coerce_int(key: str, raw: str) -> int:
    """An integer, or a uniform ConfigurationError."""
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"bad value for {key!r}: {raw!r} is not an integer"
        )


def coerce_window(key: str, raw: str) -> float:
    """A positive duration, or the literal ``forever`` (-> ``math.inf``)."""
    if raw.lower() == "forever":
        return FOREVER
    try:
        window = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"bad value for {key!r}: {raw!r} is not a number or 'forever'"
        )
    if window <= 0:
        raise ConfigurationError(f"{key} window must be > 0")
    return window
