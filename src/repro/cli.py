"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print the paper's Table 1 and Table 2.
* ``danger`` — print the analytic danger curves (equations 12, 14, 18, 19)
  for given model parameters.
* ``simulate`` — run one simulated experiment and print its measured rates.
* ``compare`` — run every strategy at the given parameters and print the
  section-8 scorecard.

Examples::

    python -m repro danger --nodes 20 --db-size 10000
    python -m repro simulate --strategy lazy-group --nodes 4 --duration 60
    python -m repro compare --nodes 4 --tps 3 --db-size 60
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analytic import (
    ModelParameters,
    eager,
    lazy_group,
    lazy_master,
    two_tier,
)
from repro.analytic.presets import PRESETS, preset
from repro.analytic.scaling import fit_exponent, sweep
from repro.analytic.tables import render_table_1, render_table_2
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.comparison import strategy_comparison, strategy_table
from repro.harness.experiment import STRATEGIES
from repro.metrics.report import format_series, format_table


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=sorted(PRESETS), default=None,
                        help="start from a named scenario preset; explicit "
                        "flags override its fields")
    parser.add_argument("--db-size", type=int, default=10_000,
                        help="objects in the database (Table 2 DB_Size)")
    parser.add_argument("--nodes", type=int, default=10,
                        help="replica nodes (Table 2 Nodes)")
    parser.add_argument("--tps", type=float, default=10.0,
                        help="transactions/second per node (Table 2 TPS)")
    parser.add_argument("--actions", type=int, default=5,
                        help="updates per transaction (Table 2 Actions)")
    parser.add_argument("--action-time", type=float, default=0.01,
                        help="seconds per action (Table 2 Action_Time)")
    parser.add_argument("--disconnect-time", type=float, default=0.0,
                        help="mean dark period for mobile scenarios")
    parser.add_argument("--message-delay", type=float, default=0.0,
                        help="replica propagation delay (model ignores it)")


_MODEL_FLAGS = {
    "db_size": 10_000,
    "nodes": 10,
    "tps": 10.0,
    "actions": 5,
    "action_time": 0.01,
    "disconnect_time": 0.0,
    "message_delay": 0.0,
}


def _params(args: argparse.Namespace) -> ModelParameters:
    if args.preset:
        base = preset(args.preset)
        overrides = {
            name: getattr(args, name)
            for name, default in _MODEL_FLAGS.items()
            if getattr(args, name) != default  # flag explicitly set
        }
        return base.with_(**overrides)
    return ModelParameters(
        db_size=args.db_size,
        nodes=args.nodes,
        tps=args.tps,
        actions=args.actions,
        action_time=args.action_time,
        disconnect_time=args.disconnect_time,
        message_delay=args.message_delay,
    )


def cmd_tables(args: argparse.Namespace) -> int:
    print(render_table_1())
    print()
    print(render_table_2(_params(args)))
    return 0


def cmd_danger(args: argparse.Namespace) -> int:
    params = _params(args)
    node_axis = sorted({1, 2, 5, 10, max(2, args.nodes)})
    curves = [
        ("eager deadlocks/s (eq 12)", eager.total_deadlock_rate),
        ("lazy-group reconciliations/s (eq 14)",
         lazy_group.reconciliation_rate),
        ("lazy-master deadlocks/s (eq 19)", lazy_master.deadlock_rate),
        ("two-tier base deadlocks/s", two_tier.base_deadlock_rate),
    ]
    for label, fn in curves:
        result = sweep(fn, params, "nodes", node_axis)
        print(format_series(result.xs, result.ys, x_label="nodes",
                            y_label=label))
        print(f"  growth order: N^{fit_exponent(result.xs, result.ys):.1f}\n")
    if params.disconnect_time > 0:
        result = sweep(lazy_group.mobile_reconciliation_rate, params,
                       "nodes", node_axis)
        print(format_series(result.xs, result.ys, x_label="nodes",
                            y_label="mobile reconciliations/s (eq 18)"))
        print(f"  growth order: N^{fit_exponent(result.xs, result.ys):.1f}\n")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    params = _params(args)
    result = run_experiment(
        ExperimentConfig(
            strategy=args.strategy,
            params=params,
            duration=args.duration,
            seed=args.seed,
            commutative=args.commutative,
        )
    )
    print(format_table(
        ["quantity", "value"],
        sorted(result.rates.as_dict().items()),
        title=f"{args.strategy} at {params.describe()}",
    ))
    print()
    print(format_table(
        ["counter", "count"],
        sorted((k, v) for k, v in result.metrics.as_dict().items() if v),
        title="raw counters",
    ))
    print(f"\ndivergence after drain: {result.divergence}")
    if args.json:
        from repro.harness.export import write_json

        path = write_json(result, args.json)
        print(f"result written to {path}")
    if args.trace:
        _print_trace_sample(args, params)
    return 0


def _print_trace_sample(args: argparse.Namespace, params) -> int:
    """Re-run the experiment's system with an echoing tracer attached.

    The harness path does not thread a tracer, so the trace sample rebuilds
    the same seeded system directly — identical behaviour by determinism.
    """
    from repro.harness.experiment import build_system
    from repro.sim.tracing import Tracer
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.profiles import uniform_update_profile

    config = ExperimentConfig(strategy=args.strategy, params=params,
                              duration=min(args.duration, 5.0),
                              seed=args.seed, commutative=args.commutative)
    system = build_system(config)
    system.tracer = Tracer(categories=set(args.trace.split(","))
                           if args.trace != "all" else None)
    workload = WorkloadGenerator(
        system,
        uniform_update_profile(actions=params.actions,
                               db_size=params.db_size,
                               commutative=args.commutative),
        tps=params.tps,
    )
    workload.start(config.duration)
    system.run()
    print(f"\ntrace sample (first 5 virtual seconds, "
          f"{len(system.tracer)} events):")
    for event in system.tracer.events()[:40]:
        print("  " + event.format())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    params = _params(args)
    results = strategy_comparison(
        params, duration=args.duration, seed=args.seed,
        commutative=args.commutative,
    )
    print(strategy_table(results))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run a strategy with history recording and certify its schedule."""
    from repro.verify.invariants import check_all
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.profiles import uniform_update_profile

    params = _params(args)
    kwargs = dict(
        db_size=params.db_size,
        action_time=params.action_time,
        message_delay=params.message_delay,
        seed=args.seed,
        record_history=True,
        retry_deadlocks=True,
    )
    from repro.core.protocol import TwoTierSystem
    from repro.replication.eager_group import EagerGroupSystem
    from repro.replication.eager_master import EagerMasterSystem
    from repro.replication.lazy_group import LazyGroupSystem
    from repro.replication.lazy_master import LazyMasterSystem

    classes = {
        "eager-group": EagerGroupSystem,
        "eager-master": EagerMasterSystem,
        "lazy-group": LazyGroupSystem,
        "lazy-master": LazyMasterSystem,
    }
    if args.strategy == "two-tier":
        system = TwoTierSystem(num_base=1, num_mobile=params.nodes, **kwargs)
        workload_nodes = list(system.mobiles)
    else:
        system = classes[args.strategy](num_nodes=params.nodes, **kwargs)
        workload_nodes = None
    workload = WorkloadGenerator(
        system,
        uniform_update_profile(actions=params.actions, db_size=params.db_size,
                               commutative=True),
        tps=params.tps,
        node_ids=workload_nodes,
    )
    workload.start(args.duration)
    system.run()

    expect_serializable = args.strategy != "lazy-group"
    report = check_all(system, expect_serializable=expect_serializable)
    graph = system.history.conflict_graph()
    print(f"strategy: {args.strategy}")
    print(f"committed transactions: {len(system.history.committed_ids)}")
    print(f"conflict edges: {graph.edge_count()}")
    print(f"one-copy serializable: {graph.is_serializable()}")
    print(report.describe())
    if args.strategy == "lazy-group" and not graph.is_serializable():
        cycle = graph.find_cycle()
        print("anomaly witness (expected for update-anywhere lazy): "
              + " -> ".join(map(str, cycle)))
        return 0
    return 0 if report.ok and graph.is_serializable() else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "The Dangers of Replication and a Solution (Gray et al. 1996), "
            "reproduced: analytic curves, simulated experiments, and the "
            "two-tier protocol."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="print Tables 1 and 2")
    _add_model_arguments(p_tables)
    p_tables.set_defaults(fn=cmd_tables)

    p_danger = sub.add_parser("danger", help="print the analytic danger curves")
    _add_model_arguments(p_danger)
    p_danger.set_defaults(fn=cmd_danger)

    p_sim = sub.add_parser("simulate", help="run one simulated experiment")
    _add_model_arguments(p_sim)
    p_sim.add_argument("--strategy", choices=STRATEGIES, default="lazy-master")
    p_sim.add_argument("--duration", type=float, default=60.0)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--commutative", action="store_true",
                       help="use commuting increment transactions")
    p_sim.add_argument("--trace", default=None,
                       help="print a trace sample; comma-separated "
                       "categories or 'all' (e.g. --trace deadlock,commit)")
    p_sim.add_argument("--json", default=None, metavar="PATH",
                       help="also write the result as JSON to PATH")
    p_sim.set_defaults(fn=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="run every strategy, one table")
    _add_model_arguments(p_cmp)
    p_cmp.add_argument("--duration", type=float, default=60.0)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--commutative", action="store_true")
    p_cmp.set_defaults(fn=cmd_compare)

    p_verify = sub.add_parser(
        "verify",
        help="record a run's history and certify schedule serializability",
    )
    _add_model_arguments(p_verify)
    p_verify.add_argument("--strategy", choices=STRATEGIES,
                          default="eager-group")
    p_verify.add_argument("--duration", type=float, default=30.0)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.set_defaults(fn=cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
