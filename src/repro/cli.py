"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tables`` — print the paper's Table 1 and Table 2.
* ``danger`` — print the analytic danger curves (equations 12, 14, 18, 19)
  for given model parameters; ``--measure`` adds simulated points.
* ``simulate`` — run one simulated experiment and print its measured rates.
* ``compare`` — run every strategy at the given parameters and print the
  section-8 scorecard.
* ``verify`` — record a run's history and certify schedule serializability.
* ``sweep`` — run a (strategy × nodes × seed) campaign over a worker pool
  and print mean ± 95% CI per cell with measured-vs-model fit exponents.
* ``trace`` — run one experiment with full tracing and export a
  Chrome/Perfetto ``trace.json`` (open it at https://ui.perfetto.dev).
* ``report`` — run one experiment with telemetry sampling and render a
  markdown run report (counters, oracle verdict, fault timeline,
  sparkline series); ``report --loadtest result.json`` instead renders a
  service load-test result.
* ``serve`` — serve the two-tier engine on *real* time: an asyncio
  gateway speaking newline-delimited JSON over TCP or a unix socket.
* ``loadtest`` — drive a running gateway with N concurrent open-loop
  clients and report throughput, latency percentiles, and the
  drained-state oracle verdict.

Examples::

    python -m repro danger --nodes 20 --db-size 10000
    python -m repro simulate --strategy lazy-group --nodes 4 --duration 60
    python -m repro compare --nodes 4 --tps 3 --db-size 60
    python -m repro sweep --strategy lazy-group --nodes 1,2,4,8 --seeds 5 --jobs 4
    python -m repro trace --strategy lazy-group --nodes 8 --faults partition=5 --out trace.json
    python -m repro report --strategy two-tier --nodes 4 --out report.md
    python -m repro serve --socket /tmp/repro.sock --mobiles 8
    python -m repro loadtest --socket /tmp/repro.sock --clients 100 \\
        --rate 2000 --duration 10 --out loadtest.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analytic import (
    ModelParameters,
    eager,
    lazy_group,
    lazy_master,
    partial,
    two_tier,
)
from repro.analytic import markov_strategies
from repro.analytic.presets import PRESETS, preset
from repro.analytic.scaling import safe_fit_exponent, sweep
from repro.analytic.tables import render_table_1, render_table_2
from repro.exceptions import ConfigurationError
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.campaign import Campaign, campaign_table, run_campaign
from repro.harness.comparison import strategy_comparison, strategy_table
from repro.harness.experiment import STRATEGIES
from repro.metrics.report import format_series, format_table

# Which flags reach which path: the analytic commands (``tables``,
# ``danger`` without --measure) evaluate the closed-form model, which uses
# every Table-2 flag *except* --message-delay (the paper drops message
# costs: "These delays and extra processing are ignored").  The simulated
# commands (``simulate``, ``compare``, ``verify``, ``sweep``, ``danger
# --measure``) honour --message-delay as real propagation latency.
_FLAG_PATHS_EPILOG = (
    "flag paths: --db-size/--nodes/--tps/--actions/--action-time/"
    "--disconnect-time feed both the analytic model and the simulator; "
    "--message-delay only affects simulated runs (the analytic model "
    "ignores message costs by construction)."
)


def _add_model_arguments(parser: argparse.ArgumentParser,
                         nodes_list: bool = False) -> None:
    parser.add_argument("--preset", choices=sorted(PRESETS), default=None,
                        help="start from a named scenario preset; explicit "
                        "flags override its fields")
    parser.add_argument("--db-size", type=int, default=10_000,
                        help="objects in the database (Table 2 DB_Size)")
    if nodes_list:
        parser.add_argument("--nodes", default="10",
                            help="comma-separated replica node counts to "
                            "sweep (e.g. 1,2,4,8)")
    else:
        parser.add_argument("--nodes", type=int, default=10,
                            help="replica nodes (Table 2 Nodes)")
    parser.add_argument("--tps", type=float, default=10.0,
                        help="transactions/second per node (Table 2 TPS)")
    parser.add_argument("--actions", type=int, default=5,
                        help="updates per transaction (Table 2 Actions)")
    parser.add_argument("--action-time", type=float, default=0.01,
                        help="seconds per action (Table 2 Action_Time)")
    parser.add_argument("--disconnect-time", type=float, default=0.0,
                        help="mean dark period for mobile scenarios")
    parser.add_argument("--message-delay", type=float, default=0.0,
                        help="replica propagation delay in seconds; the "
                        "simulator honours it, the analytic model ignores "
                        "it (the paper drops message costs)")


_MODEL_FLAGS = {
    "db_size": 10_000,
    "nodes": 10,
    "tps": 10.0,
    "actions": 5,
    "action_time": 0.01,
    "disconnect_time": 0.0,
    "message_delay": 0.0,
}


def _params(args: argparse.Namespace) -> ModelParameters:
    if args.preset:
        base = preset(args.preset)
        overrides = {
            name: getattr(args, name)
            for name, default in _MODEL_FLAGS.items()
            if getattr(args, name) != default  # flag explicitly set
        }
        return base.with_(**overrides)
    return ModelParameters(
        db_size=args.db_size,
        nodes=args.nodes,
        tps=args.tps,
        actions=args.actions,
        action_time=args.action_time,
        disconnect_time=args.disconnect_time,
        message_delay=args.message_delay,
    )


def cmd_tables(args: argparse.Namespace) -> int:
    print(render_table_1())
    print()
    print(render_table_2(_params(args)))
    return 0


def cmd_danger(args: argparse.Namespace) -> int:
    params = _params(args)
    node_axis = sorted({1, 2, 5, 10, max(2, args.nodes)})
    placement = _placement_spec(args)
    k = getattr(placement, "replication_factor", None)
    if args.model == "markov":
        # the Markov track: every strategy's chain-predicted danger rate
        curves = [
            (f"{strategy} {markov_strategies.MARKOV_REFERENCE[strategy][1]}"
             + (f" (k={k})" if k is not None else ""),
             lambda p, s=strategy: markov_strategies.reference_rate(s, p, k))
            for strategy in markov_strategies.MARKOV_STRATEGIES
        ]
    else:
        curves = [
            ("eager deadlocks/s (eq 12)", eager.total_deadlock_rate),
            ("lazy-group reconciliations/s (eq 14)",
             lazy_group.reconciliation_rate),
            ("lazy-master deadlocks/s (eq 19)", lazy_master.deadlock_rate),
            ("two-tier base deadlocks/s", two_tier.base_deadlock_rate),
        ]
        if k is not None:
            # partial-replication analogues alongside the full laws
            curves += [
                (f"partial eager deadlocks/s (k={k})",
                 lambda p, k=k: partial.deadlock_rate(p, k)),
                (f"partial lazy-group reconciliations/s (k={k})",
                 lambda p, k=k: partial.reconciliation_rate(p, k)),
            ]
    for label, fn in curves:
        result = sweep(fn, params, "nodes", node_axis)
        print(format_series(result.xs, result.ys, x_label="nodes",
                            y_label=label))
        exponent = safe_fit_exponent(result.xs, result.ys)
        order = "n/a" if exponent is None else f"N^{exponent:.1f}"
        print(f"  growth order: {order}\n")
    if params.disconnect_time > 0:
        result = sweep(lazy_group.mobile_reconciliation_rate, params,
                       "nodes", node_axis)
        print(format_series(result.xs, result.ys, x_label="nodes",
                            y_label="mobile reconciliations/s (eq 18)"))
        exponent = safe_fit_exponent(result.xs, result.ys)
        order = "n/a" if exponent is None else f"N^{exponent:.1f}"
        print(f"  growth order: {order}\n")
    if args.measure:
        _print_measured_danger(args, params, node_axis)
    return 0


def _print_measured_danger(args: argparse.Namespace, params: ModelParameters,
                           node_axis: List[int]) -> None:
    """The danger curves' measured side: a campaign over the node axis."""
    campaign = Campaign(
        strategies=STRATEGIES,
        base_params=params,
        axis="nodes",
        values=tuple(node_axis),
        seeds=tuple(range(args.seeds)),
        duration=args.duration,
        placement=getattr(args, "placement", None),
        model=getattr(args, "model", "closed-form"),
    )
    outcome = run_campaign(campaign, jobs=args.jobs,
                           cache_dir=args.cache_dir,
                           progress=_progress_line(campaign.total_runs))
    print(campaign_table(
        outcome.aggregate(),
        title="measured danger rates (simulated, mean over "
        f"{args.seeds} seed(s))",
    ))
    print()
    for fit in outcome.fits():
        print("  " + fit.describe())
    print(f"\n{outcome.describe()}")


def _fault_plan(args: argparse.Namespace, params: ModelParameters):
    """Materialise the --faults spec for the configured topology."""
    if not getattr(args, "faults", None):
        return None
    from repro.faults.plan import FaultPlan

    num_nodes = params.nodes
    if getattr(args, "strategy", None) == "two-tier":
        num_nodes += 1  # the default single base node
    return FaultPlan.from_spec(
        args.faults,
        num_nodes=num_nodes,
        duration=args.duration,
        fault_seed=args.fault_seed,
    )


def _add_model_track_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=("closed-form", "markov"),
                        default="closed-form",
                        help="analytic track for predicted rates and fit "
                        "exponents: the paper's closed-form equations "
                        "(default) or the Markov transaction-state chains")


def _add_placement_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--placement", default=None, metavar="SPEC",
                        help="replica placement spec: 'full' (default: "
                        "every node holds every object), "
                        "'hash:k=<replicas>[,seed=<n>]' for rendezvous-"
                        "hashed partial replication (e.g. hash:k=3), or "
                        "'dir:k=<replicas>[,shards=<S>][,group=locality|"
                        "hash][,seed=<n>]' for an explicit shard-map "
                        "directory with locality grouping and live "
                        "migration (e.g. dir:k=3,group=locality)")


def _placement_spec(args: argparse.Namespace):
    """Parse the --placement flag into a Placement spec (None = full)."""
    if not getattr(args, "placement", None):
        return None
    from repro.placement import Placement

    return Placement.from_spec(args.placement)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault spec, comma-separated key=value pairs: "
                        "drop/dup/reorder (probabilities), jitter (max "
                        "extra seconds), partition=<sec|forever>, "
                        "crash=<sec|forever> (e.g. drop=0.05,partition=2)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault randomness stream selector; workload "
                        "streams are unaffected")


def cmd_simulate(args: argparse.Namespace) -> int:
    params = _params(args)
    tracer = None
    if args.trace:
        from repro.sim.tracing import Tracer

        tracer = Tracer(categories=set(args.trace.split(","))
                        if args.trace != "all" else None)
    profiler = None
    if args.profile:
        from repro.obs.profiler import Profiler

        profiler = Profiler()
    result = run_experiment(
        ExperimentConfig(
            strategy=args.strategy,
            params=params,
            duration=args.duration,
            seed=args.seed,
            commutative=args.commutative,
            faults=_fault_plan(args, params),
            tracer=tracer,
            profiler=profiler,
            placement=_placement_spec(args),
        )
    )
    print(format_table(
        ["quantity", "value"],
        sorted(result.rates.as_dict().items()),
        title=f"{args.strategy} at {params.describe()}",
    ))
    print()
    print(format_table(
        ["counter", "count"],
        sorted((k, v) for k, v in result.metrics.as_dict().items() if v),
        title="raw counters",
    ))
    print(f"\ndivergence after drain: {result.divergence}")
    resident = result.extra.get("resident_objects")
    if args.placement and resident:
        print(f"resident objects/node: max {resident['max']} "
              f"mean {resident['mean']:.1f} of db_size {resident['db_size']} "
              f"(replication factor {resident['replication_factor']})")
        if "materialized_total" in resident:
            print(f"materialized records: {resident['materialized_total']} "
                  f"of {resident['total']} nominal "
                  f"(max/node {resident['materialized_max']})")
    if result.extra.get("fault_stats"):
        print(format_table(
            ["fault", "count"],
            sorted((k, v) for k, v in result.extra["fault_stats"].items()),
            title="injected faults",
        ))
    oracle_ok = result.extra.get("oracle_ok")
    if oracle_ok is not None:
        verdict = "ok" if oracle_ok else "FAIL"
        print(f"invariant oracle: {verdict}")
        for failure in result.extra.get("oracle_failures") or ():
            print(f"  - {failure}")
    if args.json:
        from repro.harness.export import write_json

        path = write_json(result, args.json)
        print(f"result written to {path}")
    if tracer is not None:
        sample = [e for e in tracer.events() if e.time <= 5.0][:40]
        print(f"\ntrace sample (first 5 virtual seconds, "
              f"{len(sample)} events):")
        for event in sample:
            print("  " + event.format())
    if args.trace_out:
        from repro.obs.chrome_trace import write_chrome_trace

        if tracer is None:
            raise SystemExit("--trace-out needs --trace (e.g. --trace all)")
        path = write_chrome_trace(tracer, args.trace_out,
                                  num_nodes=result.system.num_nodes)
        print(f"chrome trace written to {path} "
              f"(open at https://ui.perfetto.dev)")
    if profiler is not None:
        print()
        print(profiler.table())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment fully traced and export Chrome/Perfetto JSON."""
    from repro.obs.chrome_trace import write_chrome_trace
    from repro.sim.tracing import Tracer

    params = _params(args)
    categories = (set(args.categories.split(","))
                  if args.categories != "all" else None)
    tracer = Tracer(categories=categories, limit=args.limit)
    result = run_experiment(
        ExperimentConfig(
            strategy=args.strategy,
            params=params,
            duration=args.duration,
            seed=args.seed,
            commutative=args.commutative,
            faults=_fault_plan(args, params),
            tracer=tracer,
        )
    )
    path = write_chrome_trace(tracer, args.out,
                              num_nodes=result.system.num_nodes)
    print(f"{len(tracer)} trace events ({result.end_time:.1f} virtual "
          f"seconds) written to {path}")
    if tracer.dropped:
        print(f"warning: {tracer.dropped} events dropped by the ring "
              f"buffer; re-run with a larger --limit", file=sys.stderr)
    print("open it at https://ui.perfetto.dev (or chrome://tracing): "
          "one track per node, transactions as slices, "
          "faults/partitions as instants")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run one experiment with sampling and render a markdown run report."""
    from repro.obs.report import build_report, write_report

    if args.loadtest:
        return _report_loadtest(args)
    params = _params(args)
    interval = args.sample_interval
    if interval is None:
        interval = max(args.duration / 50.0, 1e-9)
    result = run_experiment(
        ExperimentConfig(
            strategy=args.strategy,
            params=params,
            duration=args.duration,
            seed=args.seed,
            commutative=args.commutative,
            faults=_fault_plan(args, params),
            sample_interval=interval,
        )
    )
    report = build_report(result)
    if args.out:
        path = write_report(report, args.out)
        print(f"run report written to {path}")
    else:
        print(report.to_markdown())
    if args.json:
        import json as _json
        from pathlib import Path

        target = Path(args.json)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report JSON written to {target}")
    return 0


def _report_loadtest(args: argparse.Namespace) -> int:
    """Render a saved ``repro loadtest`` result JSON as markdown."""
    import json as _json
    from pathlib import Path

    from repro.obs.report import service_report_markdown

    source = Path(args.loadtest)
    try:
        payload = _json.loads(source.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read loadtest result {source}: {exc}")
    try:
        markdown = service_report_markdown(payload)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.out:
        target = Path(args.out)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(markdown, encoding="utf-8")
        print(f"service report written to {target}")
    else:
        print(markdown)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the two-tier engine on real time over NDJSON sockets."""
    import asyncio
    import signal

    from repro.service import GatewayConfig, ServiceGateway

    config = GatewayConfig(
        num_base=args.num_base,
        mobiles=args.mobiles,
        db_size=args.db_size,
        action_time=args.action_time,
        message_delay=args.message_delay,
        seed=args.seed,
        initial_value=args.initial_value,
        max_inflight=args.max_inflight,
        sample_interval=args.sample_interval,
    )

    async def _serve() -> None:
        gateway = ServiceGateway(config)
        await gateway.start(host=args.host, port=args.port,
                            unix_path=args.socket)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, gateway.request_stop)
            except NotImplementedError:  # pragma: no cover - non-unix loop
                pass
        endpoint = (args.socket if args.socket
                    else f"{args.host}:{gateway.tcp_port}")
        print(f"serving on {endpoint}: {config.mobiles} mobile(s) over "
              f"{config.num_base} base node(s), db_size {config.db_size}, "
              f"max in-flight {config.max_inflight}", flush=True)
        await gateway.run()
        print(f"stopped after {gateway.served} transaction(s): "
              f"{gateway.accepted} accepted, {gateway.rejected} rejected, "
              f"{gateway.errors} error(s)")

    asyncio.run(_serve())
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a running gateway with concurrent open-loop clients."""
    import asyncio
    import json as _json
    from pathlib import Path

    from repro.service import LoadtestConfig, run_loadtest

    if args.socket is None and args.port is None:
        raise SystemExit("loadtest needs an endpoint: --socket PATH "
                         "or --port N (matching a running 'repro serve')")
    config = LoadtestConfig(
        clients=args.clients,
        rate=args.rate,
        duration=args.duration,
        workload=args.workload,
        zipf_theta=args.zipf,
        actions=args.actions,
        db_size=args.db_size,
        branches=args.branches,
        seed=args.seed,
        drain=not args.no_drain,
        stop_server=args.stop_server,
    )
    result = asyncio.run(run_loadtest(
        config, host=args.host, port=args.port, unix_path=args.socket
    ))
    latency = result["latency_ms"]
    print(f"{result['completed']}/{result['sent']} completed in "
          f"{result['elapsed_seconds']:.2f}s: "
          f"{result['throughput_committed_per_sec']:.1f} committed/s "
          f"({result['accepted']} accepted, {result['rejected']} rejected, "
          f"{result['errors']} error(s), {result['lost']} lost)")
    if latency.get("count"):
        print(f"latency ms: p50 {latency['p50']:.2f}  "
              f"p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}  "
              f"max {latency['max']:.2f}")
    oracle = result.get("oracle")
    if oracle is not None:
        verdict = "ok" if oracle["ok"] else "FAIL"
        print(f"oracle: {verdict} (store_sum {oracle['store_sum']}, "
              f"expected {oracle['expected_store_sum']}, "
              f"base divergence {oracle['base_divergence']})")
    if args.out:
        target = Path(args.out)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            _json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"result written to {target}")
    return 0 if oracle is None or oracle["ok"] else 1


def cmd_compare(args: argparse.Namespace) -> int:
    params = _params(args)
    results = strategy_comparison(
        params, duration=args.duration, seed=args.seed,
        commutative=args.commutative, jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(strategy_table(results))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run a strategy with history recording and certify its schedule."""
    from repro.verify.invariants import check_all

    params = _params(args)
    # the one harness path: history recording and deadlock retries are
    # plain ExperimentConfig fields, and the result keeps the live system
    # for certification (propagate_ops stays off — the workload commutes,
    # but propagation ships values, matching the baseline measurements)
    result = run_experiment(
        ExperimentConfig(
            strategy=args.strategy,
            params=params,
            duration=args.duration,
            seed=args.seed,
            commutative=True,
            record_history=True,
            retry_deadlocks=True,
            propagate_ops=False,
        )
    )
    system = result.system

    expect_serializable = args.strategy != "lazy-group"
    report = check_all(system, expect_serializable=expect_serializable)
    graph = system.history.conflict_graph()
    print(f"strategy: {args.strategy}")
    print(f"committed transactions: {len(system.history.committed_ids)}")
    print(f"conflict edges: {graph.edge_count()}")
    print(f"one-copy serializable: {graph.is_serializable()}")
    print(report.describe())
    if args.strategy == "lazy-group" and not graph.is_serializable():
        cycle = graph.find_cycle()
        print("anomaly witness (expected for update-anywhere lazy): "
              + " -> ".join(map(str, cycle)))
        return 0
    return 0 if report.ok and graph.is_serializable() else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the kernel hot-path benchmark and write BENCH_kernel.json."""
    from pathlib import Path

    from repro.harness import bench

    baseline = None
    if args.baseline is not None:
        baseline = bench.load(Path(args.baseline))
        if baseline is None:
            print(f"warning: baseline {args.baseline} missing or unreadable; "
                  "skipping regression check", file=sys.stderr)

    payload = bench.collect(
        events=args.events,
        repeats=args.repeats,
        workloads=not args.micro_only,
    )

    micro = payload["engine_micro"]
    print(f"engine microbench ({micro['events']} events, "
          f"best of {micro['repeats']}):")
    print(f"  current kernel: {micro['current_events_per_sec']:>12,.0f} events/sec")
    print(f"  legacy kernel:  {micro['legacy_events_per_sec']:>12,.0f} events/sec")
    print(f"  speedup:        {micro['speedup']:>12.2f}x")
    for name, wl in payload["workloads"].items():
        print(f"workload {name}: {wl['events_per_sec']:,.0f} events/sec, "
              f"{wl['txns_per_sec']:,.1f} txns/sec "
              f"({wl['events']} events in {wl['wall_seconds']:.2f}s wall)")

    if args.out is not None:
        bench.write(Path(args.out), payload)
        print(f"wrote {args.out}")

    if baseline is not None:
        failures = bench.check_regression(
            payload, baseline, max_regression=args.max_regression
        )
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"perf gate ok: speedup {micro['speedup']:.2f}x vs baseline "
              f"{baseline['engine_micro']['speedup']:.2f}x "
              f"(tolerance {args.max_regression:.0%})")
    return 0


def _progress_line(total: int):
    """Progress callback printing a single overwriting status line."""
    def report(outcome, done: int, _total: int) -> None:
        origin = "cache" if outcome.cached else outcome.status
        line = f"[{done}/{total}] {outcome.spec.label()} ({origin})"
        end = "\n" if done == total else "\r"
        print(f"{line:<72}", end=end, file=sys.stderr, flush=True)

    return report


def _parse_node_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in str(text).split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"invalid --nodes list {text!r}: expected "
                         "comma-separated integers like 1,2,4,8")
    if not values:
        raise SystemExit("--nodes list is empty")
    return values


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (strategy × nodes × seed) campaign over a worker pool."""
    if args.strategy == "all":
        strategies = STRATEGIES
    else:
        strategies = tuple(args.strategy.split(","))
        for strategy in strategies:
            if strategy not in STRATEGIES:
                raise SystemExit(f"unknown strategy {strategy!r}; expected "
                                 f"one of {', '.join(STRATEGIES)} or 'all'")
    if args.seeds < 1:
        raise SystemExit("--seeds must be at least 1")
    node_values = _parse_node_list(args.nodes)
    args.nodes = node_values[0]  # _params wants a scalar for the base point
    params = _params(args)
    sample_interval = args.sample_interval
    if sample_interval is None:
        # --series-out implies sampling; default to 50 windows per run
        sample_interval = args.duration / 50.0 if args.series_out else 0.0
    campaign = Campaign(
        strategies=strategies,
        base_params=params,
        axis="nodes",
        values=tuple(node_values),
        seeds=tuple(range(args.seeds)),
        duration=args.duration,
        commutative=args.commutative,
        warmup=args.warmup,
        faults=args.faults,
        fault_seed=args.fault_seed,
        sample_interval=sample_interval,
        placement=args.placement,
        model=args.model,
    )
    cache_dir = None if args.no_cache else args.cache_dir
    outcome = run_campaign(
        campaign,
        jobs=args.jobs,
        cache_dir=cache_dir,
        timeout=args.timeout,
        progress=_progress_line(campaign.total_runs),
    )
    cells = outcome.aggregate()
    print(campaign_table(
        cells,
        title=f"campaign: {', '.join(strategies)} × nodes "
        f"{','.join(map(str, node_values))} × {args.seeds} seed(s), "
        f"duration {args.duration:g}s, model {args.model}",
    ))
    fits = outcome.fits()
    if fits:
        print("\nfit exponents (rate vs nodes):")
        for fit in fits:
            print("  " + fit.describe())
    print(f"\n{outcome.describe()}")
    for failure in outcome.failures:
        print(f"  FAILED {failure.spec.label()}: {failure.error}",
              file=sys.stderr)
    if args.json:
        from repro.harness.export import campaign_to_dict, write_json

        path = write_json(campaign_to_dict(outcome), args.json)
        print(f"campaign written to {path}")
    if args.csv:
        from repro.harness.export import write_campaign_csv

        path = write_campaign_csv(outcome, args.csv)
        print(f"cell aggregates written to {path}")
    if args.series_out:
        from repro.harness.export import write_campaign_series

        written = write_campaign_series(outcome, args.series_out)
        if written:
            print(f"{len(written)} per-cell time-series file(s) written "
                  f"to {args.series_out}")
        else:
            print("no time-series to write (cached pre-telemetry payloads? "
                  "clear the cache or use --no-cache)", file=sys.stderr)
    return 0 if not outcome.failures else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "The Dangers of Replication and a Solution (Gray et al. 1996), "
            "reproduced: analytic curves, simulated experiments, and the "
            "two-tier protocol."
        ),
        epilog=_FLAG_PATHS_EPILOG,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="print Tables 1 and 2",
                              epilog=_FLAG_PATHS_EPILOG)
    _add_model_arguments(p_tables)
    p_tables.set_defaults(fn=cmd_tables)

    p_danger = sub.add_parser("danger",
                              help="print the analytic danger curves",
                              epilog=_FLAG_PATHS_EPILOG)
    _add_model_arguments(p_danger)
    p_danger.add_argument("--measure", action="store_true",
                          help="also run a simulated campaign along the "
                          "node axis and print measured rates with CIs")
    p_danger.add_argument("--seeds", type=int, default=3,
                          help="seed replicas per measured point")
    p_danger.add_argument("--duration", type=float, default=30.0,
                          help="virtual seconds per measured run")
    p_danger.add_argument("--jobs", type=int, default=1,
                          help="worker processes for --measure (0 = inline)")
    _add_placement_argument(p_danger)
    _add_model_track_argument(p_danger)
    p_danger.add_argument("--cache-dir", default=None, metavar="PATH",
                          help="content-hash result cache for --measure")
    p_danger.set_defaults(fn=cmd_danger)

    p_sim = sub.add_parser("simulate", help="run one simulated experiment")
    _add_model_arguments(p_sim)
    p_sim.add_argument("--strategy", choices=STRATEGIES, default="lazy-master")
    p_sim.add_argument("--duration", type=float, default=60.0)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--commutative", action="store_true",
                       help="use commuting increment transactions")
    p_sim.add_argument("--trace", default=None,
                       help="print a trace sample; comma-separated "
                       "categories or 'all' (e.g. --trace deadlock,commit)")
    p_sim.add_argument("--json", default=None, metavar="PATH",
                       help="also write the result as JSON to PATH")
    p_sim.add_argument("--trace-out", default=None, metavar="PATH",
                       help="export the trace (requires --trace) as "
                       "Chrome/Perfetto JSON to PATH")
    _add_placement_argument(p_sim)
    p_sim.add_argument("--profile", action="store_true",
                       help="print the engine dispatch hot-spot table "
                       "after the run")
    _add_fault_arguments(p_sim)
    p_sim.set_defaults(fn=cmd_simulate)

    p_trace = sub.add_parser(
        "trace",
        help="run one fully-traced experiment and export Perfetto JSON",
    )
    _add_model_arguments(p_trace)
    p_trace.add_argument("--strategy", choices=STRATEGIES,
                         default="lazy-group")
    p_trace.add_argument("--duration", type=float, default=30.0)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--commutative", action="store_true",
                         help="use commuting increment transactions")
    p_trace.add_argument("--categories", default="all",
                         help="comma-separated trace categories to record "
                         "(default: all)")
    p_trace.add_argument("--limit", type=int, default=100_000,
                         help="trace ring-buffer size (events)")
    p_trace.add_argument("--out", default="trace.json", metavar="PATH",
                         help="output path (default: trace.json)")
    _add_fault_arguments(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="run one sampled experiment and render a markdown run report",
    )
    _add_model_arguments(p_report)
    p_report.add_argument("--strategy", choices=STRATEGIES,
                          default="lazy-group")
    p_report.add_argument("--duration", type=float, default=30.0)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--commutative", action="store_true",
                          help="use commuting increment transactions")
    p_report.add_argument("--sample-interval", type=float, default=None,
                          metavar="SEC",
                          help="telemetry window in virtual seconds "
                          "(default: duration/50)")
    p_report.add_argument("--out", default=None, metavar="PATH",
                          help="write markdown to PATH instead of stdout")
    p_report.add_argument("--json", default=None, metavar="PATH",
                          help="also write the report as JSON to PATH")
    p_report.add_argument("--loadtest", default=None, metavar="PATH",
                          help="render a saved 'repro loadtest' result "
                          "JSON instead of running an experiment")
    _add_fault_arguments(p_report)
    p_report.set_defaults(fn=cmd_report)

    p_cmp = sub.add_parser("compare", help="run every strategy, one table",
                           epilog=_FLAG_PATHS_EPILOG)
    _add_model_arguments(p_cmp)
    p_cmp.add_argument("--duration", type=float, default=60.0)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--commutative", action="store_true")
    p_cmp.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = run inline)")
    p_cmp.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="content-hash result cache directory")
    p_cmp.set_defaults(fn=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a (strategy × nodes × seed) campaign over a worker pool",
        epilog=_FLAG_PATHS_EPILOG,
    )
    _add_model_arguments(p_sweep, nodes_list=True)
    p_sweep.add_argument("--strategy", default="lazy-group",
                         help="strategy name, comma-separated list, or "
                         "'all' (default: lazy-group)")
    p_sweep.add_argument("--seeds", type=int, default=3,
                         help="seed replicas per grid cell (seeds 0..N-1)")
    p_sweep.add_argument("--duration", type=float, default=30.0,
                         help="virtual seconds per run")
    p_sweep.add_argument("--warmup", type=float, default=0.0,
                         help="virtual warmup seconds excluded from rates")
    p_sweep.add_argument("--commutative", action="store_true",
                         help="use commuting increment transactions")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes (0 = run inline, no "
                         "crash isolation)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-run wall-clock limit in seconds")
    p_sweep.add_argument("--cache-dir", default=".repro_cache",
                         metavar="PATH",
                         help="content-hash result cache directory "
                         "(default: .repro_cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    p_sweep.add_argument("--json", default=None, metavar="PATH",
                         help="write the full campaign (runs + cells + "
                         "fits) as JSON")
    p_sweep.add_argument("--csv", default=None, metavar="PATH",
                         help="write per-cell rate aggregates as CSV")
    p_sweep.add_argument("--series-out", default=None, metavar="DIR",
                         help="write per-cell telemetry time-series JSON "
                         "files into DIR (implies sampling)")
    _add_placement_argument(p_sweep)
    _add_model_track_argument(p_sweep)
    p_sweep.add_argument("--sample-interval", type=float, default=None,
                         metavar="SEC",
                         help="telemetry window in virtual seconds "
                         "(default: duration/50 when --series-out is set, "
                         "else off)")
    _add_fault_arguments(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_verify = sub.add_parser(
        "verify",
        help="record a run's history and certify schedule serializability",
    )
    _add_model_arguments(p_verify)
    p_verify.add_argument("--strategy", choices=STRATEGIES,
                          default="eager-group")
    p_verify.add_argument("--duration", type=float, default=30.0)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.set_defaults(fn=cmd_verify)

    p_bench = sub.add_parser(
        "bench",
        help="measure kernel events/sec vs the frozen pre-refactor baseline",
    )
    p_bench.add_argument("--events", type=int, default=200_000,
                         help="microbench event count (default 200000)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="microbench rounds, best-of (default 3)")
    p_bench.add_argument("--micro-only", action="store_true",
                         help="skip the eager-group/two-tier workload benches")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="write the payload as JSON (BENCH_kernel.json)")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="committed BENCH_kernel.json to gate against "
                              "(compares the machine-independent speedup "
                              "ratio; exit 1 on regression)")
    p_bench.add_argument("--max-regression", type=float, default=0.20,
                         help="allowed fractional speedup drop vs baseline "
                              "(default 0.20)")
    p_bench.set_defaults(fn=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="serve the two-tier engine on real time (NDJSON TCP/unix)",
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a unix socket at PATH "
                         "(overrides --host/--port)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port (default: an ephemeral port, "
                         "printed at startup)")
    p_serve.add_argument("--mobiles", type=int, default=4,
                         help="mobile nodes in the connection pool "
                         "(default: 4)")
    p_serve.add_argument("--num-base", type=int, default=1,
                         help="base-tier nodes (default: 1)")
    p_serve.add_argument("--db-size", type=int, default=1000,
                         help="objects in the served database")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--initial-value", type=int, default=0,
                         help="starting value of every object")
    p_serve.add_argument("--action-time", type=float, default=0.0,
                         help="artificial seconds per action (default 0: "
                         "real work already costs real time)")
    p_serve.add_argument("--message-delay", type=float, default=0.0,
                         help="artificial replica propagation delay")
    p_serve.add_argument("--max-inflight", type=int, default=256,
                         help="global in-flight transaction cap; beyond "
                         "it the readers stop and TCP pushes back")
    p_serve.add_argument("--sample-interval", type=float, default=0.0,
                         metavar="SEC",
                         help="telemetry sampling window in seconds "
                         "(0 = off)")
    p_serve.set_defaults(fn=cmd_serve)

    p_load = sub.add_parser(
        "loadtest",
        help="drive a running gateway with concurrent open-loop clients",
    )
    p_load.add_argument("--socket", default=None, metavar="PATH",
                        help="connect to a unix socket at PATH")
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=None)
    p_load.add_argument("--clients", type=int, default=100,
                        help="concurrent connections (default: 100)")
    p_load.add_argument("--rate", type=float, default=2000.0,
                        help="total offered load, txns/sec across all "
                        "clients, open-loop Poisson (default: 2000)")
    p_load.add_argument("--duration", type=float, default=5.0,
                        help="send window in seconds (default: 5)")
    p_load.add_argument("--workload",
                        choices=("uniform", "checkbook", "tpcb"),
                        default="uniform")
    p_load.add_argument("--zipf", type=float, default=0.0, metavar="THETA",
                        help="Zipf skew theta in (0,1) for the uniform "
                        "workload (0 = no skew; 0.99 = YCSB hot)")
    p_load.add_argument("--actions", type=int, default=2,
                        help="updates per transaction (uniform workload)")
    p_load.add_argument("--db-size", type=int, default=1000,
                        help="object-id space to draw from (must match "
                        "the server's)")
    p_load.add_argument("--branches", type=int, default=1,
                        help="tpcb branch count (sets the tpcb db size)")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--no-drain", action="store_true",
                        help="skip the drain frame and oracle check")
    p_load.add_argument("--stop-server", action="store_true",
                        help="ask the server to exit after draining")
    p_load.add_argument("--out", default=None, metavar="PATH",
                        help="write the full result JSON to PATH")
    p_load.set_defaults(fn=cmd_loadtest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ConfigurationError as exc:
        raise SystemExit(f"invalid configuration: {exc}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
