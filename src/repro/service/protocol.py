"""The gateway wire protocol: newline-delimited JSON over TCP/unix sockets.

One JSON object per line, UTF-8, ``\\n``-terminated, both directions.  The
full specification lives in ``docs/service.md``; this module is the single
encode/decode point so the gateway, the load-test client, and the tests
all share one vocabulary.

Client → server messages (``type`` field):

* ``txn`` — ``{"type": "txn", "id": <client token>, "ops": [...],
  "acceptance": "always", "label": "..."}``.  Ops are
  ``["inc", oid, delta]`` / ``["write", oid, value]`` / ``["read", oid]`` /
  ``["mul", oid, factor]`` / ``["append", oid, item]``.
* ``ping`` — liveness probe, echoed as ``pong``.
* ``stats`` — server counters snapshot.
* ``drain`` — stop admitting, wait for in-flight work and the engine queue
  to empty, reply with the drained-state report (the oracle's input).

Server → client replies carry a matching ``type``: ``welcome`` (on
connect), ``result`` (per txn), ``pong``, ``stats``, ``drained``, and
``error`` for malformed or rejected-at-the-door input.  A ``result`` has
``status`` ``"accepted"`` / ``"rejected"`` / ``"error"``, the base
``diagnostic`` on rejection (the paper's "informed it failed and why it
failed"), and the server-measured ``latency_ms``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.core.acceptance import (
    AcceptanceCriterion,
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    PriceNotAbove,
    WithinTolerance,
)
from repro.txn.ops import (
    AppendOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    WriteOp,
)

#: bump when the wire format changes incompatibly
PROTOCOL_VERSION = 1

#: refuse absurd lines early: no sane txn needs more than 1 MiB of JSON
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """Malformed or unsupported wire input (reported, never fatal)."""


# ---------------------------------------------------------------------- #
# operations
# ---------------------------------------------------------------------- #

def _json_safe_item(item: Any) -> Any:
    # JSON turns tuples into lists; AppendOp items must be hashable and
    # mutually comparable, so lists come back as tuples
    return tuple(item) if isinstance(item, list) else item


_OP_DECODERS = {
    "read": lambda args: ReadOp(int(args[0])),
    "write": lambda args: WriteOp(int(args[0]), args[1]),
    "inc": lambda args: IncrementOp(int(args[0]), args[1]),
    "mul": lambda args: MultiplyOp(int(args[0]), args[1]),
    "append": lambda args: AppendOp(int(args[0]), _json_safe_item(args[1])),
}

_OP_ARITY = {"read": 1, "write": 2, "inc": 2, "mul": 2, "append": 2}


def decode_ops(raw: Any) -> List[Operation]:
    """Decode the wire ``ops`` array into operation objects."""
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("ops must be a non-empty array")
    ops: List[Operation] = []
    for entry in raw:
        if not isinstance(entry, list) or not entry:
            raise ProtocolError(f"op must be a [kind, ...] array, got {entry!r}")
        kind = entry[0]
        decoder = _OP_DECODERS.get(kind)
        if decoder is None:
            raise ProtocolError(
                f"unknown op kind {kind!r}; expected one of "
                f"{sorted(_OP_DECODERS)}"
            )
        args = entry[1:]
        if len(args) != _OP_ARITY[kind]:
            raise ProtocolError(
                f"op {kind!r} takes {_OP_ARITY[kind]} argument(s), "
                f"got {len(args)}"
            )
        try:
            ops.append(decoder(args))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad op {entry!r}: {exc}") from exc
    return ops


def encode_op(op: Operation) -> list:
    """Inverse of :func:`decode_ops` for one operation (loadtest side)."""
    if isinstance(op, IncrementOp):
        return ["inc", op.oid, op.delta]
    if isinstance(op, WriteOp):
        return ["write", op.oid, op.new_value]
    if isinstance(op, ReadOp):
        return ["read", op.oid]
    if isinstance(op, MultiplyOp):
        return ["mul", op.oid, op.factor]
    if isinstance(op, AppendOp):
        return ["append", op.oid, op.item]
    raise ProtocolError(f"operation {op!r} has no wire encoding")


# ---------------------------------------------------------------------- #
# acceptance criteria
# ---------------------------------------------------------------------- #

_ACCEPTANCE_FACTORIES = {
    "always": AlwaysAccept,
    "always-accept": AlwaysAccept,
    "identical": IdenticalOutputs,
    "identical-outputs": IdenticalOutputs,
    "non-negative": NonNegativeOutputs,
    "price-not-above": PriceNotAbove,
    "within-tolerance": WithinTolerance,
}


def decode_acceptance(name: Optional[str]) -> AcceptanceCriterion:
    """Resolve a wire acceptance name (missing/None means always-accept)."""
    if name is None:
        return AlwaysAccept()
    factory = _ACCEPTANCE_FACTORIES.get(name)
    if factory is None:
        raise ProtocolError(
            f"unknown acceptance criterion {name!r}; expected one of "
            f"{sorted(_ACCEPTANCE_FACTORIES)}"
        )
    return factory()


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #

def encode_line(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; every failure mode maps to :class:`ProtocolError`."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    if "type" not in message:
        raise ProtocolError("frame missing 'type' field")
    return message


def error_reply(why: str, request_id: Any = None) -> Dict[str, Any]:
    reply: Dict[str, Any] = {"type": "error", "why": why}
    if request_id is not None:
        reply["id"] = request_id
    return reply
