"""Real-time service mode: the two-tier engine served under live load.

The simulator replays the paper's two-tier scheme in virtual time; this
package serves it on *real* time:

* :mod:`~repro.service.wallclock` — :class:`WallClockEngine`, the sim
  kernel's Process/engine API driven by ``time.monotonic`` inside asyncio,
  so strategies, fault injectors, and observability hooks run unmodified.
* :mod:`~repro.service.gateway` — :class:`ServiceGateway`, the NDJSON
  TCP/unix-socket front door (``repro serve``): tentative execution, base
  re-execution with acceptance criteria, per-client diagnostics,
  backpressure, graceful drain.
* :mod:`~repro.service.loadtest` — the open-loop concurrent load-test
  client (``repro loadtest``) with the end-to-end lost-update oracle.
* :mod:`~repro.service.histogram` — O(1)-memory log-bucketed latency
  histograms behind the reported percentiles.
* :mod:`~repro.service.bench` — the ``BENCH_service.json`` producer and
  its CI gate.

Wall-clock mode is additive: nothing in the simulator defaults to it, and
the determinism goldens pin the sim kernel byte-for-byte.
"""

from repro.service.gateway import GatewayConfig, ServiceGateway
from repro.service.histogram import LatencyHistogram
from repro.service.loadtest import LoadtestConfig, run_loadtest
from repro.service.wallclock import WallClockEngine

__all__ = [
    "GatewayConfig",
    "LatencyHistogram",
    "LoadtestConfig",
    "ServiceGateway",
    "WallClockEngine",
    "run_loadtest",
]
