"""The wall-clock engine: the sim kernel's Process API on real time.

:class:`WallClockEngine` subclasses the slotted hot-path
:class:`~repro.sim.engine.Engine` and keeps its entire machinery — the heap,
timer generations, dead-entry accounting, the profiler tap — but reads the
clock from ``time.monotonic`` instead of jumping it to the next heap entry.
Every strategy, the fault injector, and the telemetry/profiler hooks run
unmodified: they only ever call the
:class:`~repro.sim.protocol.EngineProtocol` surface, and this class conforms
to all of it except synchronous :meth:`run` (which raises — wall-clock time
cannot be driven by a blocking loop inside asyncio).

Integration with asyncio is cooperative, not threaded:

* :meth:`run_async` is a coroutine that alternates between *dispatching*
  every due heap entry and *sleeping* until the next deadline on an
  :class:`asyncio.Event`, so socket IO interleaves with engine work on one
  loop and there is no cross-thread state to lock.
* External code (the gateway's socket handlers) may call ``schedule`` /
  ``schedule_now`` / ``process`` at any await point; the override refreshes
  the clock and :meth:`kick`\\ s the sleeper so new work is picked up
  immediately instead of at the old deadline.
* ``now`` is *seconds since the engine first observed the clock*, monotone
  non-decreasing, so virtual-time consumers (commit timestamps, telemetry
  windows, Lamport tie-breaks) see the same shape of clock they see in the
  simulator.

Determinism note: this engine is additive.  Nothing in the simulator
defaults to it — ``SystemSpec(engine=None)`` still constructs the
deterministic :class:`~repro.sim.engine.Engine`, and the byte-identical
determinism goldens pin that (see ``tests/test_wallclock_engine.py``).
"""

from __future__ import annotations

import asyncio
import time
from heapq import heappop
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Process

#: heap entries dispatched before yielding control back to the asyncio loop,
#: bounding how long a burst of engine work can starve socket IO
_MAX_DISPATCH_BATCH = 2000


class WallClockEngine(Engine):
    """An :class:`Engine` whose clock is real (monotonic) time.

    Args:
        time_source: monotonic float-seconds clock, injectable for tests.
    """

    def __init__(self, time_source: Callable[[], float] = time.monotonic):
        super().__init__()
        self._time_source = time_source
        self._origin: Optional[float] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._sleeping = False
        self._dispatching = False

    # ------------------------------------------------------------------ #
    # the clock
    # ------------------------------------------------------------------ #

    def _refresh_now(self) -> float:
        """Advance ``now`` to the wall clock (never backwards)."""
        wall = self._time_source()
        if self._origin is None:
            self._origin = wall
        elapsed = wall - self._origin
        if elapsed > self.now:
            self.now = elapsed
        return self.now

    # ------------------------------------------------------------------ #
    # scheduling: refresh the clock for external callers, wake the sleeper
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        # inside the dispatch loop ``now`` is already fresh; outside it
        # (a socket handler between awaits) the clock may have drifted
        if not self._dispatching:
            self._refresh_now()
        super().schedule(delay, callback, *args)
        if self._sleeping:
            self._wakeup.set()

    def schedule_now(self, callback: Callable, *args: Any) -> None:
        if not self._dispatching:
            self._refresh_now()
        super().schedule_now(callback, *args)
        if self._sleeping:
            self._wakeup.set()

    def kick(self) -> None:
        """Wake :meth:`run_async` out of its deadline sleep early.

        Needed after out-of-band state changes that do not go through
        ``schedule`` — setting the stop event, or settling a SimEvent whose
        waiters were already queued.
        """
        if self._sleeping:
            self._wakeup.set()

    # ------------------------------------------------------------------ #
    # driving
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        raise SimulationError(
            "WallClockEngine cannot be driven synchronously; "
            "await run_async() inside an asyncio event loop "
            "(use the default Engine for simulation runs)"
        )

    async def run_async(
        self,
        stop: Optional[asyncio.Event] = None,
        max_batch: int = _MAX_DISPATCH_BATCH,
    ) -> float:
        """Drive the queue on wall-clock time until done.

        Without ``stop`` this behaves like :meth:`Engine.run`: it returns
        when the queue drains.  With ``stop`` it idles through empty-queue
        periods (a server waiting for traffic) and returns once ``stop`` is
        set — the setter must also :meth:`kick` if the engine might be
        parked in an indefinite sleep.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._wakeup = asyncio.Event()
        queue = self._queue
        resume_timer = self._resume_timer
        try:
            while True:
                if stop is not None and stop.is_set():
                    return self.now
                now = self._refresh_now()
                dispatched = 0
                self._dispatching = True
                try:
                    while queue:
                        head = queue[0]
                        if head[2] is resume_timer:
                            entry_args = head[3]
                            if entry_args[1] != entry_args[0]._timer_gen:
                                # dead timer from an interrupted wait
                                heappop(queue)
                                self._dead_timers -= 1
                                continue
                        if head[0] > now:
                            break
                        heappop(queue)
                        profiler = self.profiler
                        if profiler is None:
                            head[2](*head[3])
                        else:
                            profiler.dispatch(head[2], head[3])
                        dispatched += 1
                        if dispatched >= max_batch:
                            break
                finally:
                    self._dispatching = False
                if dispatched >= max_batch:
                    # big burst: let socket handlers breathe, then continue
                    await asyncio.sleep(0)
                    continue
                next_at = self.peek()
                if next_at is None:
                    if stop is None:
                        return self.now  # drained, nothing can wake us
                    delay = None  # idle until kicked
                else:
                    delay = next_at - self._refresh_now()
                    if delay <= 0:
                        continue
                await self._sleep(delay)
        finally:
            self._running = False
            self._sleeping = False

    async def _sleep(self, delay: Optional[float]) -> None:
        """Park until ``delay`` elapses or something kicks the engine.

        No wakeup is ever lost: asyncio is single-threaded, and between
        reading the queue state and awaiting here there is no await point,
        so any ``schedule``/``kick`` ordered before this sleep already ran
        and any ordered after will find ``_sleeping`` set.
        """
        self._wakeup.clear()
        self._sleeping = True
        try:
            if delay is None:
                await self._wakeup.wait()
            else:
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
        finally:
            self._sleeping = False

    # ------------------------------------------------------------------ #
    # asyncio bridge
    # ------------------------------------------------------------------ #

    def wait_process(self, proc: Process) -> "asyncio.Future":
        """An :class:`asyncio.Future` settling with ``proc``'s outcome.

        Bridges the engine's event world into coroutine land: the gateway
        spawns a serving generator as an engine process and ``await``\\ s
        this future for its return value.  Works for already-settled
        processes too (``add_callback`` fires immediately).
        """
        future = asyncio.get_running_loop().create_future()

        def _settle(event):
            if future.cancelled():
                return
            if event.exception is not None:
                future.set_exception(event.exception)
            else:
                future.set_result(event.value)

        proc.add_callback(_settle)
        return future

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WallClockEngine now={self.now:.6g} "
            f"queued={self.queued_events} "
            f"{'running' if self._running else 'stopped'}>"
        )
