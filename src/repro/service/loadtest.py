"""The load-test client: N concurrent connections, open-loop arrivals.

``repro loadtest`` drives a running gateway with the existing
:mod:`repro.workload` generators — the model's uniform-update transactions
(optionally Zipf-skewed per the YCSB generator), the checkbook scenario
(debits guarded by the non-negative acceptance criterion, so rejections
actually happen), or TPC-B deposits — as ``clients`` concurrent
connections, each submitting on an independent Poisson schedule at
``rate / clients`` transactions per second.  Arrivals are **open-loop**:
a client never waits for a reply before sending the next transaction, so
server slowdowns surface as latency, not as reduced offered load.

Every client tracks its in-flight ids, records reply latency into an
O(1)-memory :class:`~repro.service.histogram.LatencyHistogram`, and sums
the increment deltas of *accepted* transactions.  After the send window
and a grace period for stragglers, the run (optionally) drains the server
and checks the oracle invariant end-to-end::

    store_sum == db_size * initial_value + sum(accepted increment deltas)

plus base-tier divergence 0 and WAL quiescence — a lost or phantom update
anywhere on the live path (socket, gateway, engine, locks, replay,
propagation) breaks the equation.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.service.histogram import LatencyHistogram
from repro.service.protocol import encode_line, encode_op
from repro.txn.ops import IncrementOp, Operation
from repro.workload.profiles import ZipfProfile, uniform_update_profile
from repro.workload.tpcb import TpcbLayout, TpcbProfile

#: wait at most this long after the send window for straggler replies
_GRACE_SECONDS = 15.0

WORKLOADS = ("uniform", "checkbook", "tpcb")


@dataclass(frozen=True)
class LoadtestConfig:
    """One load-test run.

    ``db_size`` must match the server's for ``uniform``/``checkbook``;
    for ``tpcb`` the layout of ``branches`` defines it (see
    :meth:`effective_db_size`) and the server must be started with that
    size.
    """

    clients: int = 100
    rate: float = 2000.0  # total offered txns/sec across all clients
    duration: float = 5.0
    workload: str = "uniform"
    zipf_theta: float = 0.0  # > 0 skews the uniform workload
    actions: int = 2
    db_size: int = 1000
    branches: int = 1  # tpcb only
    seed: int = 0
    drain: bool = True  # drain the server and run the oracle at the end
    stop_server: bool = False  # ask the server to exit after draining

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ConfigurationError("clients must be positive")
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; pick from {WORKLOADS}"
            )
        if self.zipf_theta and not 0.0 < self.zipf_theta < 1.0:
            raise ConfigurationError(
                f"zipf_theta must be in (0, 1) or 0 to disable, "
                f"got {self.zipf_theta}"
            )

    def effective_db_size(self) -> int:
        if self.workload == "tpcb":
            return TpcbLayout(self.branches).db_size
        return self.db_size


# ---------------------------------------------------------------------- #
# transaction builders: ops on the wire + the accepted-delta contribution
# ---------------------------------------------------------------------- #


def _increment_delta(ops: List[Operation]) -> float:
    return sum(op.delta for op in ops if isinstance(op, IncrementOp))


class _TxnFactory:
    """Builds (wire ops, acceptance name, delta) triples for one client."""

    def __init__(self, config: LoadtestConfig, client_index: int):
        self.config = config
        # independent deterministic stream per client
        self.rng = random.Random(
            (config.seed * 1_000_003 + client_index) & 0xFFFFFFFF
        )
        workload = config.workload
        if workload == "tpcb":
            self._profile = TpcbProfile(TpcbLayout(config.branches))
            self.acceptance = "always"
        elif config.zipf_theta > 0:
            self._profile = ZipfProfile(
                config.actions, config.db_size, theta=config.zipf_theta
            )
            self.acceptance = "always"
        elif workload == "checkbook":
            self._profile = None  # hand-rolled below
            self.acceptance = "non-negative"
        else:
            self._profile = uniform_update_profile(
                config.actions, config.db_size, commutative=True
            )
            self.acceptance = "always"

    def build(self) -> Tuple[List[list], float]:
        if self.config.workload == "checkbook":
            # debit-heavy checks against shared accounts: some bounce, which
            # is the point — the rejection path gets real live coverage
            account = self.rng.randrange(self.config.db_size)
            amount = self.rng.choice([-50, -20, -10, 10, 20])
            ops: List[Operation] = [IncrementOp(account, amount)]
        else:
            ops = self._profile.build(self.rng)
        return [encode_op(op) for op in ops], _increment_delta(ops)


# ---------------------------------------------------------------------- #
# per-client stats
# ---------------------------------------------------------------------- #


class _ClientStats:
    __slots__ = (
        "sent", "accepted", "rejected", "errors", "lost",
        "accepted_delta", "histogram", "first_send", "last_reply",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.accepted = 0
        self.rejected = 0
        self.errors = 0
        self.lost = 0  # sent but never answered within the grace window
        self.accepted_delta = 0.0
        self.histogram = LatencyHistogram()
        self.first_send: Optional[float] = None
        self.last_reply: Optional[float] = None


async def _open_connection(host, port, unix_path):
    if unix_path is not None:
        return await asyncio.open_unix_connection(unix_path)
    return await asyncio.open_connection(host or "127.0.0.1", port)


async def _client_run(
    config: LoadtestConfig,
    index: int,
    host: Optional[str],
    port: Optional[int],
    unix_path: Optional[str],
    start_barrier: asyncio.Event,
) -> Tuple[_ClientStats, Dict[str, Any]]:
    stats = _ClientStats()
    factory = _TxnFactory(config, index)
    reader, writer = await _open_connection(host, port, unix_path)
    welcome = json.loads(await reader.readline())
    await start_barrier.wait()

    loop = asyncio.get_running_loop()
    pending: Dict[str, Tuple[float, float]] = {}  # id -> (sent_at, delta)
    client_rate = config.rate / config.clients
    deadline = loop.time() + config.duration
    sender_done = asyncio.Event()

    async def sender() -> None:
        seq = 0
        next_at = loop.time()
        try:
            while True:
                next_at += factory.rng.expovariate(client_rate)
                if next_at >= deadline:
                    break
                delay = next_at - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                ops, delta = factory.build()
                seq += 1
                txn_id = f"{index}-{seq}"
                now = loop.time()
                pending[txn_id] = (now, delta)
                if stats.first_send is None:
                    stats.first_send = now
                stats.sent += 1
                writer.write(encode_line({
                    "type": "txn",
                    "id": txn_id,
                    "ops": ops,
                    "acceptance": factory.acceptance,
                }))
                await writer.drain()  # backpressure point: may block
        finally:
            sender_done.set()

    async def receiver() -> None:
        while True:
            if sender_done.is_set() and not pending:
                return
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_GRACE_SECONDS
                )
            except asyncio.TimeoutError:
                stats.lost += len(pending)
                pending.clear()
                return
            if not line:
                stats.lost += len(pending)
                pending.clear()
                return
            reply = json.loads(line)
            kind = reply.get("type")
            if kind not in ("result", "error"):
                continue
            entry = pending.pop(reply.get("id"), None)
            now = loop.time()
            stats.last_reply = now
            if kind == "error":
                stats.errors += 1
                continue
            if entry is not None:
                stats.histogram.record(now - entry[0])
            if reply["status"] == "accepted":
                stats.accepted += 1
                if entry is not None:
                    stats.accepted_delta += entry[1]
            elif reply["status"] == "rejected":
                stats.rejected += 1
            else:
                stats.errors += 1

    try:
        await asyncio.gather(sender(), receiver())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    return stats, welcome


async def _drain_server(host, port, unix_path, stop_server: bool) -> dict:
    reader, writer = await _open_connection(host, port, unix_path)
    try:
        await reader.readline()  # welcome
        writer.write(encode_line({"type": "drain", "stop": stop_server}))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed before drained reply")
            reply = json.loads(line)
            if reply.get("type") == "drained":
                return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


# ---------------------------------------------------------------------- #
# the run
# ---------------------------------------------------------------------- #


async def run_loadtest(
    config: LoadtestConfig,
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Drive the gateway and return the result document (see docs/service.md)."""
    start_barrier = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _client_run(config, i, host, port, unix_path, start_barrier)
        )
        for i in range(config.clients)
    ]
    # all connections established before anyone sends: the measured window
    # reflects steady concurrency, not a connection ramp
    await asyncio.sleep(0)
    start_barrier.set()
    outcomes = await asyncio.gather(*tasks)

    histogram = LatencyHistogram()
    sent = accepted = rejected = errors = lost = 0
    accepted_delta = 0.0
    first_send: Optional[float] = None
    last_reply: Optional[float] = None
    welcome = outcomes[0][1]
    for stats, _ in outcomes:
        histogram.merge(stats.histogram)
        sent += stats.sent
        accepted += stats.accepted
        rejected += stats.rejected
        errors += stats.errors
        lost += stats.lost
        accepted_delta += stats.accepted_delta
        if stats.first_send is not None:
            first_send = (
                stats.first_send if first_send is None
                else min(first_send, stats.first_send)
            )
        if stats.last_reply is not None:
            last_reply = (
                stats.last_reply if last_reply is None
                else max(last_reply, stats.last_reply)
            )

    elapsed = (
        (last_reply - first_send)
        if first_send is not None and last_reply is not None
        else config.duration
    )
    elapsed = max(elapsed, 1e-9)
    completed = accepted + rejected

    result: Dict[str, Any] = {
        "schema": 1,
        "kind": "service-loadtest",
        "config": {
            "clients": config.clients,
            "rate": config.rate,
            "duration": config.duration,
            "workload": config.workload,
            "zipf_theta": config.zipf_theta,
            "actions": config.actions,
            "db_size": config.effective_db_size(),
            "branches": config.branches,
            "seed": config.seed,
        },
        "sent": sent,
        "completed": completed,
        "accepted": accepted,
        "rejected": rejected,
        "errors": errors,
        "lost": lost,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_committed_per_sec": round(accepted / elapsed, 2),
        "completed_per_sec": round(completed / elapsed, 2),
        "rejection_rate": round(rejected / completed, 6) if completed else 0.0,
        "latency_ms": histogram.summary_ms((50.0, 90.0, 95.0, 99.0)),
        "histogram": histogram.to_dict(),
    }

    if config.drain:
        drained = await _drain_server(host, port, unix_path, config.stop_server)
        initial_value = welcome.get("initial_value", 0)
        db_size = welcome.get("db_size", config.effective_db_size())
        expected = db_size * initial_value + accepted_delta
        store_sum = drained.get("store_sum", 0)
        sum_ok = (
            abs(store_sum - expected) < 1e-6
            if isinstance(expected, float) or isinstance(store_sum, float)
            else store_sum == expected
        )
        oracle = {
            "ok": bool(
                sum_ok
                and drained.get("base_divergence") == 0
                and drained.get("wal_quiescent")
                and lost == 0
            ),
            "store_sum": store_sum,
            "expected_store_sum": expected,
            "accepted_delta_sum": accepted_delta,
            "base_divergence": drained.get("base_divergence"),
            "wal_quiescent": drained.get("wal_quiescent"),
            "lost_replies": lost,
        }
        result["oracle"] = oracle
        result["server"] = {
            key: drained.get(key)
            for key in (
                "served", "accepted", "rejected", "errors",
                "connections_total", "uptime_seconds", "latency_ms",
                "engine", "metrics",
            )
        }
    return result
