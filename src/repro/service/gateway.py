"""The asyncio gateway: the two-tier core served over live sockets.

:class:`ServiceGateway` owns a :class:`~repro.core.protocol.TwoTierSystem`
built on a :class:`~repro.service.wallclock.WallClockEngine` and exposes it
over the NDJSON protocol (:mod:`repro.service.protocol`).  Each connection
is bound to a mobile node (round-robin over a small pool, so base-tier
fan-out stays constant as connections grow); each ``txn`` frame runs the
paper's full two-tier cycle as one engine process:

1. tentative execution at the mobile, against a **per-request** overlay so
   concurrent transactions on one mobile never see each other's tentative
   values (``mobile.run_tentative(..., overlay=..., log=False)``),
2. base re-execution at the host base via the unmodified
   ``TwoTierSystem._replay_tentative`` — locks, deadlock retries,
   acceptance criteria and all,
3. the tentative-notice message delivered back to the mobile, consumed via
   ``pop_notice`` — the reply's diagnostic comes from the same notice path
   the simulator's reconnect exchange uses, not from a shortcut.

Backpressure: a global in-flight semaphore; when full, the per-connection
reader stops reading and the kernel's TCP window pushes back on the
client.  Drain: stop admitting, wait for in-flight work, stop the
telemetry ticker, spin the engine dry, then report the drained state
(store checksum, base divergence, WAL quiescence, latency summary) — the
oracle input for the service smoke test.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.protocol import TwoTierSystem
from repro.core.tentative import TentativeStatus, TentativeStore
from repro.obs.samplers import Telemetry
from repro.replication.base import SystemSpec
from repro.service.histogram import LatencyHistogram
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_acceptance,
    decode_line,
    decode_ops,
    encode_line,
    error_reply,
)
from repro.service.wallclock import WallClockEngine


@dataclass(frozen=True)
class GatewayConfig:
    """Shape of the served system (transport endpoints live on ``serve``).

    Service defaults differ from the simulator's: ``action_time`` and
    ``message_delay`` are 0 because real work already costs real time here —
    nonzero values add *artificial* latency, useful only for experiments.
    """

    num_base: int = 1
    mobiles: int = 4
    db_size: int = 1000
    action_time: float = 0.0
    message_delay: float = 0.0
    seed: int = 0
    initial_value: Any = 0
    max_inflight: int = 256
    sample_interval: float = 0.0  # 0 disables the telemetry ticker
    #: how long a reply waits for the base -> mobile tentative-notice
    #: before reporting ``noticed: false`` (engine seconds; the notice
    #: normally lands within one message delay, but jitter can stretch it)
    notice_timeout: float = 1.0


#: abandoned notice seqs remembered per mobile, so a late notice is evicted
#: instead of leaking; bounded in case a seq never arrives at all
_STALE_NOTICE_CAP = 1024


class ServiceGateway:
    """One live two-tier service instance."""

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.config = config or GatewayConfig()
        cfg = self.config
        if cfg.mobiles <= 0:
            raise ValueError("need at least one mobile node")
        if cfg.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.engine = WallClockEngine()
        self.telemetry = (
            Telemetry(interval=cfg.sample_interval)
            if cfg.sample_interval > 0
            else None
        )
        spec = SystemSpec(
            num_nodes=cfg.num_base + cfg.mobiles,
            db_size=cfg.db_size,
            action_time=cfg.action_time,
            message_delay=cfg.message_delay,
            seed=cfg.seed,
            initial_value=cfg.initial_value,
            engine=self.engine,
            telemetry=self.telemetry,
        )
        self.system = TwoTierSystem(spec, num_base=cfg.num_base)
        self._mobile_ids = sorted(self.system.mobiles)
        self._next_mobile = itertools.cycle(self._mobile_ids)
        self._conn_seq = itertools.count(1)
        self._inflight_sem = asyncio.Semaphore(cfg.max_inflight)
        self._inflight = 0
        self._draining = False
        self._stop = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._ticker_proc = None
        self._started_at: Optional[float] = None
        self.histogram = LatencyHistogram()
        # mobile_id -> dict-as-ordered-set of notice seqs we stopped
        # waiting for; used to evict their late arrivals from
        # ``mobile.notices`` so the list stays bounded on a long service
        self._stale_notices: Dict[int, Dict[int, None]] = {}
        # service counters (engine/system metrics ride along separately)
        self.connections_total = 0
        self.served = 0
        self.accepted = 0
        self.rejected = 0
        self.errors = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind the listening socket (TCP host/port or unix ``unix_path``)."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=unix_path, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=host or "127.0.0.1",
                port=port or 0,
                limit=MAX_LINE_BYTES,
            )
        self._started_at = time.monotonic()
        if self.telemetry is not None:
            self._ticker_proc = self.engine.process(
                self._telemetry_ticker(), name="telemetry-ticker"
            )

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (None for unix sockets) — for port-0 tests."""
        if self._server is None:
            return None
        for sock in self._server.sockets:
            name = sock.getsockname()
            if isinstance(name, tuple):
                return name[1]
        return None

    async def run(self) -> None:
        """Serve until :meth:`request_stop` — the ``repro serve`` main."""
        if self._server is None:
            raise RuntimeError("call start() before run()")
        engine_task = asyncio.create_task(
            self.engine.run_async(stop=self._stop), name="wallclock-engine"
        )
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # idle handlers sit in readline() forever; close them cleanly
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            self.engine.kick()
            await engine_task

    def request_stop(self) -> None:
        """Stop serving (signal handlers and the drain/stop frame)."""
        self._stop.set()
        self.engine.kick()

    def _telemetry_ticker(self):
        # self-rescheduling, unlike Telemetry.schedule()'s pre-computed
        # horizon ticks: a service has no horizon.  Killed at drain/stop.
        interval = self.config.sample_interval
        while True:
            yield self.engine.timeout(interval)
            self.telemetry.sample(self.engine.now)

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = next(self._conn_seq)
        self.connections_total += 1
        mobile_id = next(self._next_mobile)
        write_lock = asyncio.Lock()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)

        async def reply(message: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_line(message))
                await writer.drain()

        try:
            await reply(
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "conn": conn_id,
                    "mobile": mobile_id,
                    "num_base": self.config.num_base,
                    "db_size": self.config.db_size,
                    "initial_value": self.config.initial_value,
                }
            )
            pending = set()
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not line:
                    break
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    self.errors += 1
                    await reply(error_reply(str(exc)))
                    continue
                kind = message["type"]
                if kind == "txn":
                    if self._draining:
                        self.errors += 1
                        await reply(
                            error_reply("draining", message.get("id"))
                        )
                        continue
                    # backpressure: block the reader until a slot frees
                    await self._inflight_sem.acquire()
                    self._inflight += 1
                    task = asyncio.ensure_future(
                        self._run_txn(mobile_id, message, reply)
                    )
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif kind == "ping":
                    await reply({"type": "pong", "id": message.get("id")})
                elif kind == "stats":
                    await reply(self._stats_reply())
                elif kind == "drain":
                    report = await self.drain()
                    await reply(report)
                    if message.get("stop"):
                        self.request_stop()
                else:
                    self.errors += 1
                    await reply(
                        error_reply(f"unknown frame type {kind!r}",
                                    message.get("id"))
                    )
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        except asyncio.CancelledError:
            pass  # server shutdown closes lingering connections
        finally:
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    async def _run_txn(self, mobile_id: int, message: Dict[str, Any], reply):
        request_id = message.get("id")
        try:
            try:
                ops = decode_ops(message.get("ops"))
                acceptance = decode_acceptance(message.get("acceptance"))
            except ProtocolError as exc:
                self.errors += 1
                await reply(error_reply(str(exc), request_id))
                return
            start = time.monotonic()
            proc = self.engine.process(
                self._serve_txn(mobile_id, ops, acceptance,
                                str(message.get("label", ""))),
                name="serve-txn",
            )
            future = self.engine.wait_process(proc)
            self.engine.kick()
            try:
                record, notice = await future
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.errors += 1
                await reply(error_reply(f"{type(exc).__name__}: {exc}",
                                        request_id))
                return
            latency = time.monotonic() - start
            self.histogram.record(latency)
            self.served += 1
            if record.status is TentativeStatus.ACCEPTED:
                self.accepted += 1
                status = "accepted"
            else:
                self.rejected += 1
                status = "rejected"
            result = {
                "type": "result",
                "id": request_id,
                "status": status,
                "seq": record.seq,
                "mobile": record.mobile_id,
                "latency_ms": round(latency * 1000.0, 4),
                # the acknowledgement really did travel base -> mobile as a
                # tentative-notice message (satellite: diagnostics round-trip)
                "noticed": notice is not None,
            }
            if record.diagnostic:
                result["diagnostic"] = record.diagnostic
            try:
                await reply(result)
            except (ConnectionError, BrokenPipeError):
                pass  # client went away; the txn still counted
        finally:
            self._inflight -= 1
            self._inflight_sem.release()

    def _serve_txn(self, mobile_id: int, ops, acceptance, label: str):
        """Engine process: one transaction through the full two-tier cycle."""
        mobile = self.system.mobiles[mobile_id]
        overlay = TentativeStore(mobile.context.store)
        record = yield from mobile.run_tentative(
            ops, acceptance, label, overlay=overlay, log=False
        )
        yield from self.system._replay_tentative(mobile, record)
        notice = yield from self._await_notice(mobile_id, mobile, record.seq)
        return record, notice

    def _await_notice(self, mobile_id: int, mobile, seq: int):
        """Wait (bounded) for the base -> mobile tentative-notice.

        With a zero message delay the notice's delivery already holds an
        earlier queue position, so one zero-length sleep suffices — that
        fast path is unchanged.  With a nonzero delay, jitter or load can
        land the notice *later* than one nominal delay; sleeping exactly
        one delay then mis-reported ``noticed: false`` and left the
        un-popped notice in ``mobile.notices`` forever.  Poll against a
        deadline instead, and if we do give up, remember the seq so its
        late arrival is evicted rather than leaked.
        """
        delay = self.system.network.message_delay
        yield self.engine.timeout(delay)
        notice = mobile.pop_notice(seq)
        stale = self._stale_notices.setdefault(mobile_id, {})
        if notice is None:
            deadline = self.engine.now + self.config.notice_timeout
            poll = max(delay, 0.002)
            while notice is None and self.engine.now < deadline:
                yield self.engine.timeout(
                    min(poll, deadline - self.engine.now)
                )
                notice = mobile.pop_notice(seq)
            if notice is None:
                stale[seq] = None
                while len(stale) > _STALE_NOTICE_CAP:
                    stale.pop(next(iter(stale)))
        if stale:
            self._evict_stale_notices(mobile, stale)
        return notice

    @staticmethod
    def _evict_stale_notices(mobile, stale: Dict[int, None]) -> None:
        """Drop late arrivals of abandoned notices from ``mobile.notices``."""
        kept = [entry for entry in mobile.notices if entry[0] not in stale]
        if len(kept) != len(mobile.notices):
            for entry in mobile.notices:
                if entry[0] in stale:
                    stale.pop(entry[0], None)
            mobile.notices[:] = kept

    # ------------------------------------------------------------------ #
    # stats & drain
    # ------------------------------------------------------------------ #

    def _stats_reply(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )
        return {
            "type": "stats",
            "uptime_seconds": round(uptime, 3),
            "connections_total": self.connections_total,
            "inflight": self._inflight,
            "served": self.served,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "draining": self._draining,
            "engine": {
                "now": self.engine.now,
                "queued_events": self.engine.queued_events,
                "events_scheduled": self.engine.events_scheduled,
            },
            "latency_ms": self.histogram.summary_ms(),
        }

    async def drain(self) -> Dict[str, Any]:
        """Stop admitting, finish in-flight work, spin the engine dry."""
        self._draining = True
        while self._inflight > 0:
            await asyncio.sleep(0.005)
        if self._ticker_proc is not None:
            self._ticker_proc.kill()
            self._ticker_proc = None
        while self.engine.queued_events > 0:
            self.engine.kick()
            await asyncio.sleep(0.005)
        return self.drained_report()

    def drained_report(self) -> Dict[str, Any]:
        """Oracle input: checkable invariants over the quiesced system."""
        system = self.system
        store_sum = 0
        non_numeric = 0
        for value in system.nodes[0].store.snapshot().values():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                store_sum += value
            else:
                non_numeric += 1
        wal_quiescent = True
        for node_id in system.base_ids:
            try:
                system.nodes[node_id].wal.assert_quiescent()
            except Exception:  # noqa: BLE001 - the verdict is the point
                wal_quiescent = False
                break
        report = self._stats_reply()
        report["type"] = "drained"
        metrics = {
            key: value
            for key, value in system.metrics.as_dict().items()
            if value
        }
        report.update(
            {
                "store_sum": store_sum,
                "store_non_numeric": non_numeric,
                "base_divergence": system.base_divergence(),
                "wal_quiescent": wal_quiescent,
                "metrics": metrics,
                "histogram": self.histogram.to_dict(),
            }
        )
        if self.telemetry is not None:
            report["telemetry"] = self.telemetry.to_dict()
        return report
