"""The service benchmark: gateway + loadtest under one measured roof.

Produces the ``BENCH_service.json`` payload the CI ``service-smoke`` job
gates, the way ``harness/bench.py`` produces ``BENCH_kernel.json`` for the
perf gate.  Everything runs in one process on one asyncio loop — gateway,
engine, and all load-test clients — which *understates* what a dedicated
server process can do (the CI smoke also exercises the cross-process path
via ``repro serve``), so the committed-throughput floor is a conservative
gate.

Unlike the kernel bench's machine-independent speedup ratio, the gate here
is the acceptance criterion's absolute floor: ≥ ``COMMITTED_FLOOR``
committed transactions/sec with ≥ 100 concurrent clients, oracle-clean.
"""

from __future__ import annotations

import asyncio
import os
import platform
import sys
import tempfile
from typing import Any, Dict, List

from repro.service.gateway import GatewayConfig, ServiceGateway
from repro.service.loadtest import LoadtestConfig, run_loadtest

#: acceptance-criterion floor: committed txns/sec the gate requires
COMMITTED_FLOOR = 1000.0

#: benchmark shape: ≥100 concurrent clients per the acceptance criterion.
#: The offered load sits well above the floor but below a development
#: machine's capacity (~1800-2500/s measured): open-loop clients at or
#: beyond capacity build an unbounded queue and the p99 stops describing
#: the service and starts describing the backlog
BENCH_CLIENTS = 100
BENCH_RATE = 1400.0
BENCH_DURATION = 4.0
BENCH_DB_SIZE = 2000
BENCH_ACTIONS = 2
BENCH_SEED = 7


async def _run_pair(
    gateway_config: GatewayConfig, loadtest_config: LoadtestConfig
) -> Dict[str, Any]:
    """Gateway and loadtest on one loop over a unix socket."""
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        path = os.path.join(tmp, "gateway.sock")
        gateway = ServiceGateway(gateway_config)
        await gateway.start(unix_path=path)
        server_task = asyncio.create_task(gateway.run())
        try:
            return await run_loadtest(loadtest_config, unix_path=path)
        finally:
            gateway.request_stop()
            await server_task


def collect(
    clients: int = BENCH_CLIENTS,
    rate: float = BENCH_RATE,
    duration: float = BENCH_DURATION,
    db_size: int = BENCH_DB_SIZE,
    seed: int = BENCH_SEED,
) -> Dict[str, Any]:
    """Run the service benchmark and return the BENCH_service payload."""
    gateway_config = GatewayConfig(
        db_size=db_size, seed=seed, max_inflight=max(clients * 4, 256)
    )
    loadtest_config = LoadtestConfig(
        clients=clients,
        rate=rate,
        duration=duration,
        workload="uniform",
        actions=BENCH_ACTIONS,
        db_size=db_size,
        seed=seed,
        drain=True,
    )
    result = asyncio.run(_run_pair(gateway_config, loadtest_config))
    return {
        "benchmark": "service-gateway",
        "schema": 1,
        "config": result["config"],
        "clients": clients,
        "sent": result["sent"],
        "completed": result["completed"],
        "accepted": result["accepted"],
        "rejected": result["rejected"],
        "errors": result["errors"],
        "lost": result["lost"],
        "elapsed_seconds": result["elapsed_seconds"],
        "throughput_committed_per_sec": result["throughput_committed_per_sec"],
        "completed_per_sec": result["completed_per_sec"],
        "rejection_rate": result["rejection_rate"],
        "latency_ms": result["latency_ms"],
        "oracle": result["oracle"],
        "committed_floor": COMMITTED_FLOOR,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def check(
    payload: Dict[str, Any], committed_floor: float = COMMITTED_FLOOR
) -> List[str]:
    """Gate the payload; returns human-readable failures (empty = pass)."""
    failures: List[str] = []
    if payload.get("schema") != 1:
        failures.append(f"unexpected schema: {payload.get('schema')!r}")
    if payload.get("clients", 0) < 100:
        failures.append(
            f"acceptance criterion needs >= 100 concurrent clients, "
            f"got {payload.get('clients')}"
        )
    throughput = payload.get("throughput_committed_per_sec", 0.0)
    if throughput < committed_floor:
        failures.append(
            f"committed throughput {throughput:.1f}/s below the "
            f"{committed_floor:.0f}/s floor"
        )
    oracle = payload.get("oracle") or {}
    if not oracle.get("ok"):
        failures.append(f"oracle failed on the drained state: {oracle}")
    latency = payload.get("latency_ms") or {}
    if latency.get("p99") is None:
        failures.append("no p99 latency recorded")
    return failures
