"""O(1)-memory latency histograms for the live service path.

A load test at thousands of transactions per second cannot afford to keep
every sample, so :class:`LatencyHistogram` buckets latencies geometrically:
bucket ``i`` covers ``[BASE * GROWTH**i, BASE * GROWTH**(i+1))`` seconds,
spanning ~1 µs to ~100 s in 277 buckets at 7% relative resolution — more
than enough to quote p50/p95/p99 honestly (the quoted value is the upper
edge of the bucket containing the quantile, so percentiles never
under-report).  Exact count/sum/min/max ride along for means and tails.

Histograms serialize to plain dicts (sparse: only occupied buckets) and
merge bucket-wise, so per-connection histograms roll up into the run-level
one and the gateway can ship its server-side view to the load-test client
inside the drain reply.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: lower edge of bucket 0 (seconds) — ~1 µs, far below any socket round trip
_BASE = 1e-6
#: geometric growth per bucket: 7% relative error, 277 buckets to 100 s
_GROWTH = 1.07
_LOG_GROWTH = math.log(_GROWTH)
#: samples above the last bucket edge clamp into the overflow bucket
_NUM_BUCKETS = int(math.ceil(math.log(100.0 / _BASE) / _LOG_GROWTH)) + 1


class LatencyHistogram:
    """Log-bucketed histogram of latency samples (seconds)."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}  # sparse: bucket index -> count
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_index(seconds: float) -> int:
        if seconds < _BASE:
            return 0
        index = int(math.log(seconds / _BASE) / _LOG_GROWTH)
        return index if index < _NUM_BUCKETS else _NUM_BUCKETS - 1

    @staticmethod
    def bucket_upper_edge(index: int) -> float:
        return _BASE * _GROWTH ** (index + 1)

    def record(self, seconds: float) -> None:
        """Add one sample."""
        if seconds < 0:
            raise ValueError(f"latency cannot be negative: {seconds}")
        index = self.bucket_index(seconds)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> Optional[float]:
        """Upper edge of the bucket holding quantile ``q`` (0 < q <= 100).

        None when empty.  The exact max is returned for the top of the
        distribution so p100 (and any quantile landing in the last occupied
        bucket) never exceeds an actually observed value's bucket ceiling.
        """
        if not 0 < q <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        if self.count == 0:
            return None
        rank = math.ceil(self.count * q / 100.0)
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                edge = self.bucket_upper_edge(index)
                # never quote beyond the true observed maximum
                return min(edge, self.max) if self.max is not None else edge
        return self.max  # pragma: no cover - rank <= count always hits above

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (in place)."""
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def summary_ms(
        self, quantiles: Iterable[float] = (50.0, 90.0, 95.0, 99.0)
    ) -> Dict[str, Optional[float]]:
        """The headline numbers, in milliseconds, for reports and benches."""
        out: Dict[str, Optional[float]] = {}
        for q in quantiles:
            value = self.percentile(q)
            key = f"p{q:g}"
            out[key] = round(value * 1000.0, 4) if value is not None else None
        out["mean"] = round(self.mean * 1000.0, 4) if self.count else None
        out["max"] = round(self.max * 1000.0, 4) if self.max is not None else None
        out["count"] = self.count
        return out

    def to_dict(self) -> dict:
        buckets: List[Tuple[int, int]] = sorted(self.counts.items())
        return {
            "base_seconds": _BASE,
            "growth": _GROWTH,
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min,
            "max_seconds": self.max,
            "buckets": [[index, n] for index, n in buckets],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        # bucket indices are only meaningful under this module's layout;
        # silently adopting counts serialized with a different base/growth
        # would mis-bucket every sample on merge
        base = data.get("base_seconds", _BASE)
        growth = data.get("growth", _GROWTH)
        if not (
            math.isclose(float(base), _BASE, rel_tol=1e-9)
            and math.isclose(float(growth), _GROWTH, rel_tol=1e-9)
        ):
            raise ValueError(
                "histogram bucket layout mismatch: serialized "
                f"base_seconds={base!r}, growth={growth!r} but this build "
                f"uses base_seconds={_BASE!r}, growth={_GROWTH!r} — refusing "
                "to mis-bucket; re-serialize with a matching build"
            )
        hist = cls()
        hist.counts = {int(index): int(n) for index, n in data["buckets"]}
        hist.count = int(data["count"])
        hist.total = float(data["total_seconds"])
        hist.min = data["min_seconds"]
        hist.max = data["max_seconds"]
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return "<LatencyHistogram empty>"
        p50 = self.percentile(50.0)
        p99 = self.percentile(99.0)
        return (
            f"<LatencyHistogram n={self.count} "
            f"p50={p50 * 1000:.2f}ms p99={p99 * 1000:.2f}ms>"
        )
