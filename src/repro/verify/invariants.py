"""Reusable system invariants.

The test suite and benchmarks assert the same handful of whole-system
properties over and over; these helpers name them, produce useful
diagnostics when they fail, and give library users a one-call health check
after any simulation::

    from repro.verify.invariants import check_all
    report = check_all(system)
    assert report.ok, report.describe()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import InvalidStateError


@dataclass
class InvariantReport:
    """Outcome of one or more invariant checks."""

    failures: List[str] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.ok:
            return f"all invariants hold ({', '.join(self.checked)})"
        return "invariant failures:\n" + "\n".join(
            f"  - {failure}" for failure in self.failures
        )

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        return InvariantReport(
            failures=self.failures + other.failures,
            checked=self.checked + other.checked,
        )


def check_quiescent(system) -> InvariantReport:
    """No transaction holds locks or pending undo at any node."""
    report = InvariantReport(checked=["quiescent"])
    for node in system.nodes:
        try:
            node.tm.assert_quiescent()
        except InvalidStateError as exc:
            report.failures.append(f"node {node.node_id}: {exc}")
        held = getattr(node.locks, "_held_by_txn", {})
        if held:
            report.failures.append(
                f"node {node.node_id}: {len(held)} lock holders remain"
            )
    return report


def check_converged(system) -> InvariantReport:
    """Every replica agrees on every object's value."""
    report = InvariantReport(checked=["converged"])
    diverged = system.divergence()
    if diverged:
        details = divergence_report(system, limit=5)
        report.failures.append(
            f"{diverged} objects diverged; first few: {details}"
        )
    return report


def check_accounting(system) -> InvariantReport:
    """Counter bookkeeping closes: adjudicated tentative work, commit/abort
    totals, and wait/deadlock ordering are internally consistent."""
    report = InvariantReport(checked=["accounting"])
    m = system.metrics
    if m.deadlocks > m.waits:
        report.failures.append(
            f"more deadlocks ({m.deadlocks}) than waits ({m.waits}) — every "
            "deadlock victim must first have waited"
        )
    adjudicated = m.tentative_accepted + m.tentative_rejected
    if adjudicated > m.tentative_committed:
        report.failures.append(
            f"adjudicated tentative txns ({adjudicated}) exceed committed "
            f"({m.tentative_committed})"
        )
    for name, value in m.as_dict().items():
        if isinstance(value, (int, float)) and value < 0:
            report.failures.append(f"counter {name} went negative: {value}")
    return report


def check_serializable(system) -> InvariantReport:
    """The recorded schedule is one-copy conflict serializable.

    Only meaningful for systems built with ``record_history=True`` and a
    serializable strategy; skipped (vacuously ok) without a history.
    """
    report = InvariantReport(checked=["serializable"])
    history = getattr(system, "history", None)
    if history is None:
        return report
    graph = history.conflict_graph()
    cycle = graph.find_cycle()
    if cycle is not None:
        report.failures.append(
            "precedence cycle among committed transactions: "
            + " -> ".join(map(str, cycle))
        )
    return report


def check_all(system, expect_serializable: bool = False) -> InvariantReport:
    """Run the standard post-run health checks."""
    report = check_quiescent(system)
    report = report.merge(check_converged(system))
    report = report.merge(check_accounting(system))
    if expect_serializable:
        report = report.merge(check_serializable(system))
    return report


def divergence_report(system, limit: int = 10) -> Dict[int, List[Any]]:
    """Map of diverged oid -> per-holder values (up to ``limit`` objects).

    Under a partial placement only the nodes actually holding an object
    are compared (a shard that never stored the object is not divergence);
    under full replication every node holds everything and the report is
    the classic all-nodes comparison.
    """
    snapshots = [node.store.snapshot() for node in system.nodes]
    out: Dict[int, List[Any]] = {}
    if not snapshots:
        return out
    for oid in sorted(set().union(*(snap.keys() for snap in snapshots))):
        values = [snap[oid] for snap in snapshots if oid in snap]
        if any(v != values[0] for v in values):
            out[oid] = values
            if len(out) >= limit:
                break
    return out


def conservation_total(system) -> Any:
    """Sum over objects of the value held at each object's first holder —
    for increment-only workloads on a converged system this must equal the
    sum of committed deltas (no lost updates).  Under full replication this
    is simply node 0's total."""
    snapshots = [node.store.snapshot() for node in system.nodes]
    total: Any = 0
    seen = set()
    for snap in snapshots:
        for oid, value in snap.items():
            if oid not in seen:
                seen.add(oid)
                total += value
    return total
