"""History recording and conflict-serializability checking.

The recorded history contains one event per executed access::

    (sequence, node_id, txn_id, oid, kind)    kind in {"r", "w"}

Events are attributed to the **root** user transaction: when a lazy scheme
installs a replica update at a slave, the install is recorded as the root
transaction's write at that node (the housekeeping transaction is an
implementation detail — in the paper's terms it carries the root's update to
the replica).  Only transactions marked committed participate in the check.

Serializability test: the classic conflict (precedence) graph.  For each
``(node, oid)`` stream, every pair of accesses by different transactions
where at least one is a write adds the edge ``earlier -> later``.  The
recorded schedule is (one-copy) conflict serializable iff the graph is
acyclic; a cycle is returned as a concrete anomaly witness.

The cycle search is self-contained (iterative DFS); when networkx is
available, :meth:`ConflictGraph.as_networkx` exports the graph for richer
analysis.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Access:
    """One recorded access."""

    seq: int
    node_id: int
    txn_id: int
    oid: int
    kind: str  # "r" or "w"

    @property
    def is_write(self) -> bool:
        # "c" marks a conflicting update the replica *rejected* (a lazy
        # reconciliation): for precedence purposes the root's update was
        # ordered after the local state at this replica, so it conflicts
        # like a write even though its value was dropped.
        return self.kind in ("w", "c")


class History:
    """Append-only access log with commit marking.

    Wire a system with ``record_history=True`` and its transaction managers
    feed this automatically; standalone use::

        history = History()
        history.record_write(node_id=0, txn_id=1, oid=7)
        history.mark_committed(1)
        assert history.conflict_graph().is_serializable()
    """

    def __init__(self) -> None:
        self._events: List[Access] = []
        self._committed: Set[int] = set()
        self._seq = itertools.count()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record_read(self, node_id: int, txn_id: int, oid: int) -> None:
        self._events.append(
            Access(next(self._seq), node_id, txn_id, oid, "r")
        )

    def record_write(self, node_id: int, txn_id: int, oid: int) -> None:
        self._events.append(
            Access(next(self._seq), node_id, txn_id, oid, "w")
        )

    def record_conflict(self, node_id: int, txn_id: int, oid: int) -> None:
        """A replica rejected ``txn_id``'s update to ``oid`` (lazy-group
        reconciliation).  The rejection is precedence evidence: this replica
        ordered the local committed state ahead of the incoming update."""
        self._events.append(
            Access(next(self._seq), node_id, txn_id, oid, "c")
        )

    def mark_committed(self, txn_id: int) -> None:
        self._committed.add(txn_id)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> List[Access]:
        return list(self._events)

    @property
    def committed_ids(self) -> Set[int]:
        return set(self._committed)

    def committed_events(self) -> List[Access]:
        """Events of committed transactions, in execution order."""
        return [e for e in self._events if e.txn_id in self._committed]

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------ #
    # checking
    # ------------------------------------------------------------------ #

    def conflict_graph(self) -> "ConflictGraph":
        """Build the precedence graph over committed transactions."""
        streams: Dict[Tuple[int, int], List[Access]] = defaultdict(list)
        for event in self.committed_events():
            streams[(event.node_id, event.oid)].append(event)
        edges: Dict[int, Set[int]] = defaultdict(set)
        nodes: Set[int] = set(self._committed)
        for stream in streams.values():
            for i, earlier in enumerate(stream):
                for later in stream[i + 1:]:
                    if later.txn_id == earlier.txn_id:
                        continue
                    if earlier.is_write or later.is_write:
                        edges[earlier.txn_id].add(later.txn_id)
        return ConflictGraph(nodes=nodes, edges=dict(edges))


class ConflictGraph:
    """A precedence graph with cycle detection and serial-order recovery."""

    def __init__(self, nodes: Set[int], edges: Dict[int, Set[int]]):
        self.nodes = set(nodes)
        self.edges = {k: set(v) for k, v in edges.items()}

    def find_cycle(self) -> Optional[List[int]]:
        """Return one precedence cycle (an anomaly witness), or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.nodes}
        for root in sorted(self.nodes):
            if color[root] is not WHITE and color[root] != WHITE:
                continue
            if color[root] != WHITE:
                continue
            path: List[int] = [root]
            stack: List[Tuple[int, Iterable[int]]] = [
                (root, iter(sorted(self.edges.get(root, ()))))
            ]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child not in color:
                        continue
                    if color[child] == GRAY:
                        idx = path.index(child)
                        return path[idx:]
                    if color[child] == BLACK:
                        continue
                    color[child] = GRAY
                    path.append(child)
                    stack.append(
                        (child, iter(sorted(self.edges.get(child, ()))))
                    )
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    color[path.pop()] = BLACK
        return None

    def is_serializable(self) -> bool:
        """Acyclic precedence graph ⇔ conflict-serializable schedule."""
        return self.find_cycle() is None

    def serial_order(self) -> List[int]:
        """A topological order (an equivalent serial schedule).

        Raises ValueError when the graph is cyclic.
        """
        in_degree = {n: 0 for n in self.nodes}
        for src, dsts in self.edges.items():
            for dst in dsts:
                if dst in in_degree:
                    in_degree[dst] += 1
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for dst in sorted(self.edges.get(node, ())):
                if dst not in in_degree:
                    continue
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    ready.append(dst)
            ready.sort()
        if len(order) != len(self.nodes):
            raise ValueError("conflict graph is cyclic; no serial order")
        return order

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def as_networkx(self):
        """Export as a networkx DiGraph (optional dependency)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        for src, dsts in self.edges.items():
            graph.add_edges_from((src, dst) for dst in dsts)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ConflictGraph txns={len(self.nodes)} "
            f"edges={self.edge_count()}>"
        )
