"""Execution-history verification.

The paper's correctness claims are about *schedules*: "Eager replication
gives serializable execution — there are no concurrency anomalies", while
update-anywhere lazy schemes admit non-serializable behaviour that surfaces
as reconciliation.  This package records the history a simulated system
actually executed and checks it:

* :class:`~repro.verify.history.History` — an append-only log of committed
  reads/writes, per node, attributed to the *root* user transaction (replica
  refreshes count as the root's writes at that replica).
* :class:`~repro.verify.history.ConflictGraph` — the precedence graph over
  committed transactions; acyclicity certifies (one-copy) conflict
  serializability of the recorded schedule, and a cycle is a concrete,
  inspectable anomaly.
"""

from repro.verify.history import ConflictGraph, History
from repro.verify.invariants import InvariantReport, check_all

__all__ = ["History", "ConflictGraph", "InvariantReport", "check_all"]
