"""repro — "The Dangers of Replication and a Solution", reproduced.

A production-quality reproduction of Gray, Helland, O'Neil & Shasha
(SIGMOD 1996): the closed-form analytic model of replication instability
(equations 1-19), a deterministic discrete-event simulator with real locking,
deadlock detection and versioned storage, the four Table-1 replication
strategies, the section-6 convergent schemes, and the paper's proposed
**two-tier replication protocol** for mobile nodes.

Quick start::

    from repro import ModelParameters, eager

    p = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                        action_time=0.01)
    print(eager.total_deadlock_rate(p.with_(nodes=10))
          / eager.total_deadlock_rate(p))     # -> 1000.0

    from repro import (
        IncrementOp, NonNegativeOutputs, SystemSpec, TwoTierSystem,
    )

    system = TwoTierSystem(SystemSpec(num_nodes=3, db_size=100), num_base=2)
    mobile = system.mobile(2)
    system.disconnect_mobile(2)
    mobile.submit_tentative([IncrementOp(7, -50)], NonNegativeOutputs())
    system.run()
    system.reconnect_mobile(2)
    system.run()

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured results of every table and figure.
"""

from repro.analytic import (
    ModelParameters,
    eager,
    lazy_group,
    lazy_master,
    partial,
    single_node,
    two_tier,
)
from repro.core import (
    AcceptanceCriterion,
    AlwaysAccept,
    IdenticalOutputs,
    MobileNode,
    NonNegativeOutputs,
    PredicateCriterion,
    PriceNotAbove,
    TwoTierSystem,
    WithinTolerance,
)
from repro.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    Partition,
)
from repro.harness import (
    ExperimentConfig,
    repeat_experiment,
    run_experiment,
)
from repro.metrics import Metrics, summarize
from repro.placement import FullReplication, HashShardPlacement, Placement
from repro.replication import (
    EagerGroupSystem,
    EagerMasterSystem,
    LazyGroupSystem,
    LazyMasterSystem,
    SystemSpec,
)
from repro.sim import Engine, RandomSource
from repro.txn import (
    AppendOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    WriteOp,
)

__version__ = "1.0.0"

__all__ = [
    # analytic model
    "ModelParameters",
    "single_node",
    "eager",
    "lazy_group",
    "lazy_master",
    "two_tier",
    "partial",
    # simulation & measurement
    "Engine",
    "RandomSource",
    "Metrics",
    "summarize",
    "ExperimentConfig",
    "run_experiment",
    "repeat_experiment",
    # fault injection
    "FaultPlan",
    "LinkFaults",
    "Partition",
    "Crash",
    "FaultInjector",
    # operations
    "Operation",
    "ReadOp",
    "WriteOp",
    "IncrementOp",
    "MultiplyOp",
    "AppendOp",
    # strategies
    "SystemSpec",
    "EagerGroupSystem",
    "EagerMasterSystem",
    "LazyGroupSystem",
    "LazyMasterSystem",
    # placement
    "Placement",
    "FullReplication",
    "HashShardPlacement",
    # two-tier
    "TwoTierSystem",
    "MobileNode",
    "AcceptanceCriterion",
    "AlwaysAccept",
    "IdenticalOutputs",
    "NonNegativeOutputs",
    "PriceNotAbove",
    "PredicateCriterion",
    "WithinTolerance",
    "__version__",
]
