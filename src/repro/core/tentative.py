"""Tentative transactions and tentative object versions.

A mobile node keeps *two versions* of every replicated item:

* **master version** — "the most recent value received from the object
  master" (possibly stale while disconnected), held in the node's ordinary
  object store;
* **tentative version** — "the local object may be updated by tentative
  transactions", held here as an overlay on the master-version store.

Reads at the mobile node see tentative values ("If the mobile node queries
this data it sees the tentative values"); discarding the overlay implements
reconnect step 1 ("Discards its tentative object versions since they will
soon be refreshed from the masters").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.acceptance import AcceptanceCriterion
from repro.storage.store import ObjectStore
from repro.txn.ops import Operation


class TentativeStatus(enum.Enum):
    PENDING = "pending"  # committed at the mobile node, not yet replayed
    ACCEPTED = "accepted"  # base transaction committed & passed acceptance
    REJECTED = "rejected"  # base transaction failed its acceptance criterion


@dataclass
class TentativeTransaction:
    """One tentative transaction awaiting base re-execution.

    Carries everything the host base node needs (reconnect step 3: "Sends
    all its tentative transactions (and all their input parameters) to the
    base node to be executed in the order in which they committed").
    """

    seq: int
    mobile_id: int
    ops: List[Operation]
    acceptance: AcceptanceCriterion
    tentative_outputs: List[Any] = field(default_factory=list)
    commit_time: float = 0.0
    status: TentativeStatus = TentativeStatus.PENDING
    diagnostic: str = ""
    base_txn_id: Optional[int] = None
    label: str = ""

    @property
    def pending(self) -> bool:
        return self.status is TentativeStatus.PENDING


class TentativeStore:
    """The tentative-version overlay on a mobile node's master-version store.

    Reads fall through to the base store when no tentative write has touched
    the object; writes never touch the base store.
    """

    def __init__(self, base_store: ObjectStore):
        self.base_store = base_store
        self._overlay: Dict[int, Any] = {}

    def value(self, oid: int) -> Any:
        if oid in self._overlay:
            return self._overlay[oid]
        return self.base_store.value(oid)

    def write(self, oid: int, value: Any) -> None:
        self._overlay[oid] = value

    def apply(self, op: Operation) -> Any:
        """Apply an operation to the tentative version; returns new value."""
        new_value = op.apply(self.value(op.oid))
        if not op.is_read:
            self.write(op.oid, new_value)
        return new_value

    def discard(self) -> int:
        """Reconnect step 1: throw away all tentative versions."""
        dropped = len(self._overlay)
        self._overlay.clear()
        return dropped

    @property
    def dirty_oids(self) -> Sequence[int]:
        return sorted(self._overlay)

    def __contains__(self, oid: int) -> bool:
        return oid in self._overlay

    def __len__(self) -> int:
        return len(self._overlay)
