"""The mobile node: tentative execution while disconnected.

"Mobile nodes are disconnected much of the time. They store a replica of the
database and may originate tentative transactions. A mobile node may be the
master of some data items."

A :class:`MobileNode` wraps its replica (the system-owned
:class:`~repro.replication.base.NodeContext`, holding the *master versions*)
with a :class:`~repro.core.tentative.TentativeStore` overlay (the *tentative
versions*) and a log of committed-but-tentative transactions awaiting base
re-execution.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Sequence

from repro.core.acceptance import AcceptanceCriterion, AlwaysAccept
from repro.core.tentative import (
    TentativeStatus,
    TentativeStore,
    TentativeTransaction,
)
from repro.exceptions import InvalidStateError
from repro.txn.ops import Operation


class MobileNode:
    """One mobile participant in a :class:`~repro.core.protocol.TwoTierSystem`.

    Not constructed directly — the system builds one per mobile id.
    """

    def __init__(self, system, node_id: int, host_base_id: int):
        self.system = system
        self.node_id = node_id
        self.host_base_id = host_base_id
        self.context = system.nodes[node_id]
        self.tentative = TentativeStore(self.context.store)
        self.log: List[TentativeTransaction] = []
        self.notices: List[tuple] = []
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    @property
    def connected(self) -> bool:
        return self.system.network.is_connected(self.node_id)

    # ------------------------------------------------------------------ #
    # reads: the mobile user sees tentative values
    # ------------------------------------------------------------------ #

    def read(self, oid: int) -> Any:
        """Tentative view: overlay value if present, else master version."""
        return self.tentative.value(oid)

    def master_value(self, oid: int) -> Any:
        """The best known master version (possibly stale while dark)."""
        return self.context.store.value(oid)

    # ------------------------------------------------------------------ #
    # tentative execution
    # ------------------------------------------------------------------ #

    def run_tentative(
        self,
        ops: Sequence[Operation],
        acceptance: Optional[AcceptanceCriterion] = None,
        label: str = "",
        overlay: Optional[TentativeStore] = None,
        log: bool = True,
    ):
        """Generator: execute a tentative transaction at this node.

        Validates the scope rule, applies each operation to the tentative
        versions (consuming ``Action_Time`` per action), and commits the
        transaction to the tentative log for later base re-execution.
        Returns the :class:`TentativeTransaction`.

        ``overlay`` substitutes a private :class:`TentativeStore` for the
        node-wide one, and ``log=False`` skips appending to :attr:`log` —
        together they let the live gateway run many concurrent independent
        transactions through one mobile without cross-contaminating
        tentative values or growing the log without bound.  Sim-mode
        callers use the defaults and see the original batch semantics.
        """
        criterion = acceptance if acceptance is not None else AlwaysAccept()
        ops = list(ops)
        self.system.scope.validate(ops, self.node_id)
        store = overlay if overlay is not None else self.tentative
        record = TentativeTransaction(
            seq=next(self._seq),
            mobile_id=self.node_id,
            ops=ops,
            acceptance=criterion,
            label=label,
        )
        engine = self.system.engine
        for op in ops:
            if self.system.action_time > 0:
                yield engine.timeout(self.system.action_time)
            output = store.apply(op)
            if not op.is_read:
                record.tentative_outputs.append(output)
        record.commit_time = engine.now
        if log:
            self.log.append(record)
        self.system.metrics.tentative_committed += 1
        return record

    def submit_tentative(
        self,
        ops: Sequence[Operation],
        acceptance: Optional[AcceptanceCriterion] = None,
        label: str = "",
    ):
        """Spawn :meth:`run_tentative` as a simulation process."""
        return self.system.engine.process(
            self.run_tentative(ops, acceptance, label),
            name=f"tentative@{self.node_id}",
        )

    # ------------------------------------------------------------------ #
    # log inspection
    # ------------------------------------------------------------------ #

    @property
    def pending_transactions(self) -> List[TentativeTransaction]:
        return [t for t in self.log if t.pending]

    @property
    def rejected_transactions(self) -> List[TentativeTransaction]:
        return [t for t in self.log if t.status is TentativeStatus.REJECTED]

    @property
    def accepted_transactions(self) -> List[TentativeTransaction]:
        return [t for t in self.log if t.status is TentativeStatus.ACCEPTED]

    def record_notice(self, seq: int, status: TentativeStatus, why: str) -> None:
        """Reconnect step 5: 'Accepts notice of the success or failure of
        each tentative transaction.'"""
        self.notices.append((seq, status, why))

    def pop_notice(self, seq: int) -> Optional[tuple]:
        """Consume and return the notice for tentative ``seq``, if delivered.

        The live gateway acknowledges each transaction to its client from
        the base's notice, then pops it so :attr:`notices` stays bounded
        over a long-running service.  Scans from the tail: the matching
        notice is almost always the most recently recorded one.
        """
        notices = self.notices
        for i in range(len(notices) - 1, -1, -1):
            if notices[i][0] == seq:
                return notices.pop(i)
        return None

    def require_disconnected(self) -> None:
        if self.connected:
            raise InvalidStateError(
                f"mobile node {self.node_id} is connected; tentative execution "
                "is intended for disconnected operation (connected mobiles "
                "submit base transactions directly)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MobileNode {self.node_id} host={self.host_base_id} "
            f"{'up' if self.connected else 'dark'} "
            f"pending={len(self.pending_transactions)}>"
        )
