"""The two-tier scope rule.

"Tentative transactions must follow a scope rule: they may involve objects
mastered on base nodes and mastered at the mobile node originating the
transaction (call this the transaction's scope). The idea is that the mobile
node and all the base nodes will be in contact when the tentative
transaction is processed as a 'real' base transaction — so the real
transaction will be able to read the master copy of each item in the scope."
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from repro.exceptions import ScopeViolationError
from repro.txn.ops import Operation


class TransactionScope:
    """Validates tentative transactions against the scope rule.

    Args:
        ownership: map oid -> master node id (the system's full map).
        base_node_ids: ids of the always-connected base nodes.
    """

    def __init__(self, ownership: Dict[int, int], base_node_ids: Iterable[int]):
        self.ownership = ownership
        self.base_node_ids: Set[int] = set(base_node_ids)

    def allowed_oids(self, mobile_id: int) -> Set[int]:
        """All objects a tentative transaction from ``mobile_id`` may touch."""
        return {
            oid
            for oid, master in self.ownership.items()
            if master in self.base_node_ids or master == mobile_id
        }

    def master_is_in_scope(self, oid: int, mobile_id: int) -> bool:
        master = self.ownership.get(oid)
        if master is None:
            return False
        return master in self.base_node_ids or master == mobile_id

    def validate(self, ops: Sequence[Operation], mobile_id: int) -> None:
        """Raise :class:`ScopeViolationError` if any op leaves the scope.

        Both reads and writes are checked — a tentative transaction "cannot
        read or write any [other mobile's] tentative data" and its base
        re-execution must find every master reachable.
        """
        for op in ops:
            if not self.master_is_in_scope(op.oid, mobile_id):
                master = self.ownership.get(op.oid)
                raise ScopeViolationError(
                    f"object {op.oid} is mastered at node {master!r}, which is "
                    f"neither a base node nor mobile node {mobile_id}"
                )
