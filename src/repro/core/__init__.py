"""Two-tier replication — the paper's proposed solution (section 7).

The scheme splits the world into:

* **Base nodes** — always connected, collectively mastering (most of) the
  database and running serializable *base transactions* under lazy-master
  replication.
* **Mobile nodes** — usually disconnected, each keeping **two versions** of
  every object: the *best known master version* and a *tentative version*
  updated by local tentative transactions.

While disconnected, a mobile node accumulates
:class:`~repro.core.tentative.TentativeTransaction` records.  On reconnect
the node runs the five-step exchange of section 7: discard tentative
versions, upload mobile-mastered updates, replay tentative transactions as
base transactions (in commit order, each guarded by an
:class:`~repro.core.acceptance.AcceptanceCriterion`), download replica
updates, and receive accept/reject notices.

Key properties (all tested):

1. mobile nodes may make tentative updates while disconnected;
2. base transactions execute with single-copy serializability;
3. a transaction is durable when its base transaction completes;
4. replicas of all connected nodes converge to the base state;
5. **if all transactions commute, there are no reconciliations** — the
   master database never suffers system delusion.
"""

from repro.core.acceptance import (
    AcceptanceCriterion,
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    PredicateCriterion,
    PriceNotAbove,
    WithinTolerance,
)
from repro.core.scope import TransactionScope
from repro.core.tentative import TentativeStatus, TentativeTransaction
from repro.core.mobile import MobileNode
from repro.core.protocol import TwoTierSystem

__all__ = [
    "AcceptanceCriterion",
    "AlwaysAccept",
    "IdenticalOutputs",
    "NonNegativeOutputs",
    "PredicateCriterion",
    "PriceNotAbove",
    "WithinTolerance",
    "TransactionScope",
    "TentativeStatus",
    "TentativeTransaction",
    "MobileNode",
    "TwoTierSystem",
]
