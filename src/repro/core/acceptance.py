"""Acceptance criteria for re-executed base transactions.

"The base transaction has an acceptance criterion: a test the resulting
outputs must pass for the slightly different base transaction results to be
acceptable. To give some sample acceptance criteria:

* The bank balance must not go negative.
* The price quote can not exceed the tentative quote.
* The seats must be aisle seats."

A criterion inspects the *outputs* of the tentative execution and of the
base re-execution (the written values, in operation order) and answers
whether the base outcome is acceptable.  Returning False aborts the base
transaction and sends the mobile node a diagnostic.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple


class AcceptanceCriterion:
    """Decides whether a base re-execution's results are acceptable.

    ``check`` returns ``(accepted, diagnostic)``; the diagnostic travels back
    to the mobile node on rejection ("the originating node and person who
    generated the transaction are informed it failed and why it failed").
    """

    name = "abstract"

    def check(
        self,
        tentative_outputs: Sequence[Any],
        base_outputs: Sequence[Any],
    ) -> Tuple[bool, str]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class AlwaysAccept(AcceptanceCriterion):
    """Accept any successful base execution.

    "If the tentative transaction completes successfully and passes the
    acceptance test, then the replication system assumes all is well" — for
    fully commutative transactions the base result is always acceptable, and
    this criterion realizes the zero-reconciliation property.
    """

    name = "always-accept"

    def check(self, tentative_outputs, base_outputs):
        return True, ""


class IdenticalOutputs(AcceptanceCriterion):
    """Strictest test: base outputs must equal tentative outputs.

    "If the acceptance criteria requires the base and tentative transaction
    have identical outputs, then subsequent transactions reading tentative
    results written by T will fail too" — the paper calls this "probably too
    pessimistic", and the benchmarks show why: its rejection rate tracks the
    lazy-group collision rate.
    """

    name = "identical-outputs"

    def check(self, tentative_outputs, base_outputs):
        if list(tentative_outputs) == list(base_outputs):
            return True, ""
        return False, (
            f"outputs differ: tentative={list(tentative_outputs)!r} "
            f"base={list(base_outputs)!r}"
        )


class NonNegativeOutputs(AcceptanceCriterion):
    """"The bank balance must not go negative."

    Accepts any base execution whose written values are all >= 0 — the
    balance may *differ* from the tentative one ("It is fine if the checking
    account balance is different when the transaction is reprocessed"), it
    just must not overdraw.
    """

    name = "non-negative"

    def check(self, tentative_outputs, base_outputs):
        for value in base_outputs:
            try:
                negative = value < 0
            except TypeError:
                continue
            if negative:
                return False, f"balance went negative: {value!r}"
        return True, ""


class PriceNotAbove(AcceptanceCriterion):
    """"The price quote can not exceed the tentative quote."

    Each base output must not exceed the corresponding tentative output by
    more than ``tolerance`` (absolute).
    """

    name = "price-not-above"

    def __init__(self, tolerance: float = 0.0):
        self.tolerance = tolerance

    def check(self, tentative_outputs, base_outputs):
        for quoted, actual in zip(tentative_outputs, base_outputs):
            try:
                exceeded = actual > quoted + self.tolerance
            except TypeError:
                continue
            if exceeded:
                return False, (
                    f"price {actual!r} exceeds tentative quote {quoted!r}"
                    + (f" (+{self.tolerance})" if self.tolerance else "")
                )
        return True, ""


class WithinTolerance(AcceptanceCriterion):
    """Base outputs within a relative tolerance of the tentative ones."""

    name = "within-tolerance"

    def __init__(self, relative: float = 0.05):
        if relative < 0:
            raise ValueError("relative tolerance must be >= 0")
        self.relative = relative

    def check(self, tentative_outputs, base_outputs):
        for expected, actual in zip(tentative_outputs, base_outputs):
            try:
                scale = max(abs(expected), 1e-12)
                off = abs(actual - expected) / scale > self.relative
            except TypeError:
                continue
            if off:
                return False, (
                    f"base output {actual!r} deviates more than "
                    f"{self.relative:.0%} from tentative {expected!r}"
                )
        return True, ""


class PredicateCriterion(AcceptanceCriterion):
    """Application-specific test over each base output value.

    "These acceptance criteria are application specific."  Example — the
    paper's aisle seats::

        aisle = PredicateCriterion(lambda seat: seat[1] in "CD",
                                   name="aisle-seats",
                                   describe="seat must be an aisle seat")
    """

    def __init__(
        self,
        predicate: Callable[[Any], bool],
        name: str = "predicate",
        describe: str = "predicate failed",
    ):
        self.predicate = predicate
        self.name = name
        self.describe = describe

    def check(self, tentative_outputs, base_outputs):
        for value in base_outputs:
            if not self.predicate(value):
                return False, f"{self.describe}: {value!r}"
        return True, ""


class OnOutputs(AcceptanceCriterion):
    """Project a criterion onto selected output positions.

    Transactions often mix concerns — a sales order carries a price output
    and a stock output — and each acceptance rule applies to its own slice::

        combine(OnOutputs(PriceNotAbove(), [0]),
                OnOutputs(NonNegativeOutputs(), [1]))
    """

    def __init__(self, criterion: AcceptanceCriterion, indices: Sequence[int]):
        self.criterion = criterion
        self.indices = list(indices)
        self.name = f"{criterion.name}@{self.indices}"

    def _project(self, outputs: Sequence[Any]) -> List[Any]:
        return [outputs[i] for i in self.indices if i < len(outputs)]

    def check(self, tentative_outputs, base_outputs):
        return self.criterion.check(
            self._project(tentative_outputs), self._project(base_outputs)
        )


def combine(*criteria: AcceptanceCriterion) -> AcceptanceCriterion:
    """All criteria must accept (logical AND), first diagnostic wins."""

    class _Combined(AcceptanceCriterion):
        name = "+".join(c.name for c in criteria)

        def check(self, tentative_outputs, base_outputs):
            for criterion in criteria:
                ok, why = criterion.check(tentative_outputs, base_outputs)
                if not ok:
                    return False, f"[{criterion.name}] {why}"
            return True, ""

    return _Combined()
