"""The two-tier replication system (paper section 7, Figures 5 and 6).

Base nodes run lazy-master replication among themselves (the base tier *is*
a :class:`~repro.replication.lazy_master.LazyMasterSystem`); mobile nodes are
extra replicas that are usually dark.  The class adds:

* tentative execution at mobile nodes (via :class:`~repro.core.mobile.MobileNode`),
* the five-step reconnect exchange,
* base re-execution of tentative transactions with acceptance criteria,
  resubmitting deadlock victims until they succeed ("If a base transaction
  deadlocks, it is resubmitted and reprocessed until it succeeds"),
* local transactions on mobile-mastered data that work while disconnected.

Durability and convergence follow the paper: a transaction is durable once
its base transaction commits; replica updates flow to every node (parked for
dark mobiles by the network's store-and-forward queues); the master state
never diverges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.mobile import MobileNode
from repro.core.scope import TransactionScope
from repro.core.tentative import TentativeStatus, TentativeTransaction
from repro.exceptions import (
    ConfigurationError,
    DeadlockAbort,
    ScopeViolationError,
)
from repro.network.message import Message
from repro.replication.base import NodeContext, SystemSpec
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import Operation


class TwoTierSystem(LazyMasterSystem):
    """Two-tier replication: base tier + mobile tier.

    Construct with a :class:`~repro.replication.base.SystemSpec` whose
    ``num_nodes`` counts *all* nodes, plus ``num_base`` — mobiles are the
    remainder (ids ``num_base .. num_nodes-1``)::

        TwoTierSystem(SystemSpec(num_nodes=4, db_size=100), num_base=1)

    The spec's placement spans the **base tier only**: base nodes shard
    (or fully replicate) the master copies among themselves, while mobile
    nodes always hold full replicas — a mobile must be able to execute
    tentative transactions over any object while dark.  Objects are
    mastered per the placement (round-robin over base nodes under full
    replication) unless overridden by ``mobile_mastered`` ("A mobile node
    may be the master of some data items").  Base transactions retry
    deadlocks by default, per the paper.

    The legacy ``TwoTierSystem(num_base, num_mobile, db_size, ...)``
    signature still works through the deprecation shim.
    """

    name = "two-tier"
    default_retry_deadlocks = True

    def __init__(
        self,
        spec: Optional[SystemSpec] = None,
        num_mobile: Optional[int] = None,
        db_size: Optional[int] = None,
        mobile_mastered: Optional[Dict[int, int]] = None,
        cascade_rejections: bool = False,
        num_base: Optional[int] = None,
        **kwargs,
    ):
        if isinstance(spec, SystemSpec):
            if num_mobile is not None or db_size is not None:
                raise ConfigurationError(
                    "with a SystemSpec, pass num_base only — mobiles are "
                    "spec.num_nodes - num_base"
                )
            base_count = 1 if num_base is None else num_base
            mobile_count = spec.num_nodes - base_count
        else:
            # legacy signature: (num_base, num_mobile, db_size, ...)
            base_count = spec if spec is not None else num_base
            mobile_count = num_mobile
            if base_count is None or mobile_count is None or db_size is None:
                raise ConfigurationError(
                    "num_base, num_mobile, and db_size are required"
                )
            spec = None
        if base_count <= 0:
            raise ConfigurationError("need at least one base node")
        if mobile_count < 0:
            raise ConfigurationError("num_mobile must be >= 0")
        num_nodes = base_count + mobile_count
        for oid, owner in (mobile_mastered or {}).items():
            if not base_count <= owner < num_nodes:
                raise ConfigurationError(
                    f"mobile_mastered[{oid}] = {owner} is not a mobile node id"
                )
        # set before super().__init__: the placement binds against the base
        # tier, via our _placement_scope_nodes override
        self.num_base = base_count
        self.num_mobile = mobile_count
        if spec is None:
            super().__init__(num_nodes, db_size, **kwargs)
        else:
            super().__init__(spec, **kwargs)
        self.cascade_rejections = cascade_rejections
        self.base_ids = list(range(base_count))
        # mobile mastership overrides the placement-derived (base-tier)
        # default; mobiles hold full replicas, so the owner always has a copy
        for oid, owner in (mobile_mastered or {}).items():
            self.ownership[oid] = owner
        self.scope = TransactionScope(self.ownership, self.base_ids)
        self.mobiles: Dict[int, MobileNode] = {
            mid: MobileNode(self, mid, host_base_id=(mid - base_count) % base_count)
            for mid in range(base_count, num_nodes)
        }

    def _placement_scope_nodes(self) -> int:
        return self.num_base

    def _register_probes(self, telemetry) -> None:
        # called from ReplicatedSystem.__init__, before self.mobiles exists;
        # the closures only run at tick time (first tick at t = interval > 0)
        super()._register_probes(telemetry)
        telemetry.gauge(
            "tentative_queue",
            lambda: sum(
                len(m.pending_transactions) for m in self.mobiles.values()
            ),
        )
        telemetry.counter_rate(
            "rejection_rate", lambda: self.metrics.tentative_rejected
        )

    # ------------------------------------------------------------------ #
    # topology helpers
    # ------------------------------------------------------------------ #

    def mobile(self, node_id: int) -> MobileNode:
        return self.mobiles[node_id]

    def is_base(self, node_id: int) -> bool:
        return node_id < self.num_base

    def base_nodes(self) -> List[NodeContext]:
        return [self.nodes[i] for i in self.base_ids]

    def disconnect_mobile(self, mobile_id: int) -> None:
        """The mobile goes dark; replica updates start parking for it."""
        if self.is_base(mobile_id):
            raise ConfigurationError(f"node {mobile_id} is a base node")
        self.network.disconnect(mobile_id)

    # ------------------------------------------------------------------ #
    # the reconnect exchange (paper section 7, both node lists)
    # ------------------------------------------------------------------ #

    def reconnect_mobile(self, mobile_id: int):
        """Spawn the reconnect exchange for ``mobile_id`` as a process.

        The process value is the list of tentative transactions replayed
        (with final statuses).
        """
        mobile = self.mobiles[mobile_id]
        return self.engine.process(
            self._reconnect(mobile), name=f"reconnect@{mobile_id}"
        )

    def _reconnect(self, mobile: MobileNode):
        # Step 1: discard tentative object versions — they will be refreshed
        # from the masters.
        mobile.tentative.discard()

        # Step 2 + 4: rejoin the network.  The store-and-forward queues
        # flush: first the mobile's deferred outbound updates (replica
        # updates for mobile-mastered objects), then the inbound backlog of
        # base replica updates.
        self.network.reconnect(mobile.node_id)

        # Let the flushed replica-update transactions apply before replaying
        # tentative work, so base re-execution sees fresh master versions.
        yield self.engine.timeout(self.network.message_delay)

        # Step 3: replay tentative transactions in commit order.
        #
        # With cascading rejections on, a tentative transaction that read or
        # overwrote the tentative results of an already-rejected predecessor
        # fails too: "If the acceptance criteria requires the base and
        # tentative transaction have identical outputs, then subsequent
        # transactions reading tentative results written by T will fail
        # too."  (Weaker criteria may not want this, hence the option.)
        replayed: List[TentativeTransaction] = []
        tainted_oids: set = set()
        for record in list(mobile.log):
            if not record.pending:
                continue
            if self.cascade_rejections and tainted_oids:
                touched = {op.oid for op in record.ops}
                poisoned = touched & tainted_oids
                if poisoned:
                    record.status = TentativeStatus.REJECTED
                    record.diagnostic = (
                        "depends on tentative results of a rejected "
                        f"transaction (objects {sorted(poisoned)})"
                    )
                    self.metrics.tentative_rejected += 1
                    self._trace("reject", mobile=mobile.node_id,
                                seq=record.seq, why="cascade")
                    self.network.send(
                        self.nodes[mobile.host_base_id].node_id,
                        mobile.node_id,
                        "tentative-notice",
                        (record.seq, record.status, record.diagnostic),
                    )
                    tainted_oids |= {
                        op.oid for op in record.ops if not op.is_read
                    }
                    replayed.append(record)
                    continue
            yield from self._replay_tentative(mobile, record)
            if record.status is TentativeStatus.REJECTED:
                tainted_oids |= {
                    op.oid for op in record.ops if not op.is_read
                }
            replayed.append(record)

        # Step 5: the host's accept/reject notices are delivered as
        # messages; give zero-delay networks a chance to drain them now.
        return replayed

    # ------------------------------------------------------------------ #
    # base re-execution
    # ------------------------------------------------------------------ #

    def _replay_tentative(self, mobile: MobileNode, record: TentativeTransaction):
        """Re-run one tentative transaction as a base transaction.

        "During this reprocessing, the base transaction reads and writes
        object master copies using a lazy-master execution model."  Deadlock
        victims are resubmitted; acceptance failure aborts and notifies.
        """
        host = self.nodes[mobile.host_base_id]
        attempts = 0
        while True:
            txn = host.tm.begin(label=f"base:{record.label or record.seq}")
            involved: List[NodeContext] = []
            try:
                for op in record.ops:
                    master = self.master_of(op.oid)
                    if op.is_read:
                        if master.tm.lock_reads and master not in involved:
                            involved.append(master)  # S locks need releasing
                        yield from master.tm.execute(txn, op)
                        continue
                    if master not in involved:
                        involved.append(master)
                    yield from master.tm.execute(txn, op)
                    self.metrics.actions += 1
            except DeadlockAbort as exc:
                txn.mark_aborted(self.engine.now, reason=exc.reason)
                for node in involved:
                    node.tm.finish_abort_local(txn)
                if exc.reason != "deadlock":
                    # the host base crashed mid-reprocessing: resubmitting
                    # at a dead node would livelock, so reject instead
                    record.status = TentativeStatus.REJECTED
                    record.diagnostic = "host base crashed during reprocessing"
                    self.metrics.tentative_rejected += 1
                    return
                attempts += 1
                if attempts > self.max_retries:
                    # pathological livelock guard; surfaces as a rejection
                    record.status = TentativeStatus.REJECTED
                    record.diagnostic = "base transaction livelocked"
                    self.metrics.tentative_rejected += 1
                    return
                self.metrics.restarts += 1
                backoff = self.rng.stream("base-retry").uniform(
                    0, self.action_time * 2
                )
                yield self.engine.timeout(backoff)
                continue

            base_outputs = [u.new_value for u in txn.updates]
            accepted, why = record.acceptance.check(
                record.tentative_outputs, base_outputs
            )
            if accepted:
                self._commit_everywhere(txn, involved)
                self._propagate_to_slaves(host.node_id, txn)
                record.status = TentativeStatus.ACCEPTED
                record.base_txn_id = txn.txn_id
                self.metrics.tentative_accepted += 1
            else:
                # "the base transaction is aborted and a diagnostic message
                # is returned to the mobile node"
                txn.mark_aborted(self.engine.now, reason="acceptance")
                for node in involved:
                    node.tm.finish_abort_local(txn)
                record.status = TentativeStatus.REJECTED
                record.diagnostic = why
                self.metrics.tentative_rejected += 1
                self._trace("reject", mobile=mobile.node_id, seq=record.seq,
                            why=why)
            self.network.send(
                host.node_id,
                mobile.node_id,
                "tentative-notice",
                (record.seq, record.status, record.diagnostic),
            )
            return

    # ------------------------------------------------------------------ #
    # local transactions on mobile-mastered data
    # ------------------------------------------------------------------ #

    def submit_local(self, mobile_id: int, ops: Sequence[Operation],
                     label: str = ""):
        """A transaction purely over data mastered at this mobile node.

        "Local transactions that read and write only local data can be
        designed in any way you like."  They execute at the mobile's own
        master copies — even while disconnected — and their replica updates
        park in the outbound queue until reconnect.
        """
        ops = list(ops)
        for op in ops:
            if not op.is_read and self.ownership[op.oid] != mobile_id:
                raise ScopeViolationError(
                    f"object {op.oid} is not mastered at mobile {mobile_id}; "
                    "use a tentative transaction instead"
                )
        return self.engine.process(
            self._run_local_master(mobile_id, ops, label),
            name=f"local@{mobile_id}",
        )

    def _run_local_master(self, mobile_id: int, ops: List[Operation], label: str):
        node = self.nodes[mobile_id]
        txn = node.tm.begin(label=label)
        try:
            yield from self._execute_local(node, txn, ops)
        except DeadlockAbort as exc:
            self._abort_everywhere(txn, [node], reason=exc.reason)
            return txn
        self._commit_everywhere(txn, [node])
        self._propagate_to_slaves(mobile_id, txn)
        return txn

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind == "tentative-notice":
            mobile = self.mobiles.get(node.node_id)
            if mobile is not None:
                seq, status, why = msg.payload
                mobile.record_notice(seq, status, why)
            return None
        return super().handle_message(node, msg)

    # ------------------------------------------------------------------ #
    # convergence of the base tier
    # ------------------------------------------------------------------ #

    def base_divergence(self) -> int:
        """Objects whose value differs *across base nodes* — the paper's
        system-delusion test restricted to the master tier (mobiles may be
        legitimately stale while dark).  Under a partial base placement
        each object is compared only across its base replica set."""
        if self.placement.is_full:
            from repro.storage.store import divergence

            return divergence(self.nodes[i].store for i in self.base_ids)
        differing = 0
        for oid in range(self.db_size):
            replicas = self.placement.replicas(oid)
            if len(replicas) < 2:
                continue
            values = [self.nodes[n].store.value(oid) for n in replicas]
            first = values[0]
            if any(value != first for value in values[1:]):
                differing += 1
        return differing

    def base_converged(self) -> bool:
        return self.base_divergence() == 0
