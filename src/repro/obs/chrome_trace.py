"""Export :class:`~repro.sim.tracing.Tracer` events to Chrome trace JSON.

The output is the Trace Event Format that Chrome's ``about:tracing`` and
https://ui.perfetto.dev load directly — each simulated node becomes one
Perfetto *process track*, every user transaction a duration slice on that
track, and deadlocks / faults / partitions instant markers.  Virtual
seconds map to trace microseconds, so the paper's shapes (a wait queue
congesting, a reconciliation storm after a partition) are visible on a
zoomable timeline instead of in end-of-run counters.

Event mapping:

* ``commit`` / ``abort`` events carrying ``start`` + ``node`` details →
  complete slices (``ph: "X"``) with ``pid`` = node, ``tid`` = txn id;
* ``deadlock``, ``crash``, ``recover``, ``reconcile``, ``wait``, ... →
  process-scoped instants on their node's track;
* ``fault`` and ``partition`` → global instants (they concern links, not
  one node).

Events are emitted sorted by timestamp (metadata first), which some
viewers require and the schema tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.sim.tracing import TraceEvent, Tracer

#: one virtual second is one trace second (Chrome's ts unit is µs)
MICROSECONDS = 1e6

#: categories drawn as global (trace-wide) instant markers
_GLOBAL_CATEGORIES = frozenset({"fault", "partition", "message"})

#: detail keys that locate an event on a node track, in preference order
_NODE_KEYS = ("node", "origin", "mobile")


def _node_of(event: TraceEvent) -> Optional[int]:
    for key in _NODE_KEYS:
        value = event.detail.get(key)
        if isinstance(value, int):
            return value
    return None


def _slice_name(event: TraceEvent) -> str:
    label = event.detail.get("label")
    if label:
        return str(label)
    txn = event.detail.get("txn")
    if event.category == "abort":
        reason = event.detail.get("reason", "abort")
        return f"txn {txn} abort({reason})"
    return f"txn {txn}"


def _args_of(event: TraceEvent) -> Dict[str, Any]:
    """Event details, JSON-safe (stringify anything exotic)."""
    args: Dict[str, Any] = {"category": event.category}
    for key, value in event.detail.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            args[key] = value
        elif isinstance(value, (list, tuple)):
            args[key] = [str(v) if not isinstance(v, (int, float, str, bool))
                         else v for v in value]
        else:
            args[key] = str(value)
    return args


def chrome_trace_events(
    events: Iterable[TraceEvent],
    num_nodes: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Convert trace events into a sorted Trace Event Format list.

    Args:
        events: the tracer's events (any order; output is ts-sorted).
        num_nodes: emit process-name metadata for nodes ``0..num_nodes-1``
            even if some never traced an event (keeps tracks stable across
            runs); ``None`` names only the nodes that appear.
    """
    body: List[Dict[str, Any]] = []
    seen_nodes = set(range(num_nodes)) if num_nodes else set()
    for event in events:
        ts = event.time * MICROSECONDS
        node = _node_of(event)
        if node is not None:
            seen_nodes.add(node)
        if event.category in ("commit", "abort") and "start" in event.detail:
            start = float(event.detail["start"])
            pid = node if node is not None else 0
            seen_nodes.add(pid)
            body.append({
                "name": _slice_name(event),
                "cat": f"txn,{event.category}",
                "ph": "X",
                "ts": start * MICROSECONDS,
                "dur": max(0.0, (event.time - start)) * MICROSECONDS,
                "pid": pid,
                "tid": event.detail.get("txn", 0),
                "args": _args_of(event),
            })
            continue
        scope_global = event.category in _GLOBAL_CATEGORIES or node is None
        instant: Dict[str, Any] = {
            "name": (event.detail.get("kind") and
                     f"{event.category}:{event.detail['kind']}")
            or event.category,
            "cat": event.category,
            "ph": "i",
            "ts": ts,
            "s": "g" if scope_global else "p",
            "pid": 0 if scope_global else node,
            "tid": 0,
            "args": _args_of(event),
        }
        body.append(instant)
    body.sort(key=lambda e: e["ts"])

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": f"node {pid}"},
        }
        for pid in sorted(seen_nodes)
    ]
    # pid-order node tracks regardless of name collation in the viewer
    metadata.extend(
        {
            "name": "process_sort_index",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": pid},
        }
        for pid in sorted(seen_nodes)
    )
    return metadata + body


def to_chrome_trace(
    source: Union[Tracer, Iterable[TraceEvent]],
    num_nodes: Optional[int] = None,
) -> Dict[str, Any]:
    """The complete JSON-object form of a trace (Perfetto-loadable)."""
    events = source.events() if isinstance(source, Tracer) else list(source)
    return {
        "traceEvents": chrome_trace_events(events, num_nodes=num_nodes),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome_trace",
            "events": len(events),
            "dropped": source.dropped if isinstance(source, Tracer) else 0,
        },
    }


def write_chrome_trace(
    source: Union[Tracer, Iterable[TraceEvent]],
    path: Union[str, Path],
    num_nodes: Optional[int] = None,
) -> Path:
    """Serialise a trace to ``path``; returns the written path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(source, num_nodes=num_nodes), fh)
        fh.write("\n")
    return target
