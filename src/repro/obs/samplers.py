"""Windowed time-series sampling over a live simulation.

The paper's arguments are about *shapes over time* — a wait queue building
up, reconciliations exploding after a partition — which flat end-of-run
counters cannot show.  A :class:`Telemetry` handle owns a set of samplers
that an engine-scheduled tick drives at a fixed virtual-time cadence:

* :class:`GaugeSampler` records the instantaneous value of a probe
  (wait-queue depth, in-flight messages, WAL active transactions);
* :class:`CounterDeltaSampler` records the per-window *rate* of a
  monotonically increasing counter (commits/s, reconciliations/s), so a
  burst is visible in the window it happened rather than smeared over the
  whole run.

Sampling is strictly bounded: :meth:`Telemetry.schedule` pre-schedules
every tick up to a horizon, so an instrumented engine still drains to
quiescence (a self-rescheduling tick would keep the event queue alive
forever).  All state is plain floats and lists — series serialise with
:meth:`Telemetry.to_dict` and survive the campaign runner's process
boundary inside the result payload's ``extra["series"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError

#: glyphs for :meth:`TimeSeries.sparkline`, lowest to highest
_SPARK_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class SeriesSummary:
    """min/mean/max/last over one series (the report's sparkline caption)."""

    count: int
    minimum: float
    mean: float
    maximum: float
    last: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "min": self.minimum,
            "mean": self.mean,
            "max": self.maximum,
            "last": self.last,
        }


class TimeSeries:
    """One named series of (virtual time, value) samples."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def summary(self) -> SeriesSummary:
        if not self.values:
            return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0)
        return SeriesSummary(
            count=len(self.values),
            minimum=min(self.values),
            mean=sum(self.values) / len(self.values),
            maximum=max(self.values),
            last=self.values[-1],
        )

    def sparkline(self, width: int = 48) -> str:
        """ASCII shape of the series, resampled to ``width`` columns."""
        if not self.values:
            return ""
        n = len(self.values)
        columns = min(width, n)
        peak = max(self.values)
        if peak <= 0:
            return _SPARK_LEVELS[0] * columns
        chars = []
        for c in range(columns):
            lo = c * n // columns
            hi = max(lo + 1, (c + 1) * n // columns)
            window_peak = max(self.values[lo:hi])
            level = int(window_peak / peak * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[level])
        return "".join(chars)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
            "summary": self.summary().as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimeSeries":
        series = cls(data["name"])
        series.times = [float(t) for t in data.get("times", ())]
        series.values = [float(v) for v in data.get("values", ())]
        return series

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name!r} n={len(self.values)}>"


class GaugeSampler:
    """Samples the instantaneous value of ``probe()`` every tick."""

    def __init__(self, series: TimeSeries, probe: Callable[[], float]):
        self.series = series
        self.probe = probe

    def sample(self, now: float, window: float) -> None:
        self.series.append(now, float(self.probe()))


class CounterDeltaSampler:
    """Samples the per-second rate of a cumulative counter over each window.

    ``probe()`` must be monotonically non-decreasing (a counter); each tick
    records ``(current - previous) / window``.
    """

    def __init__(self, series: TimeSeries, probe: Callable[[], float]):
        self.series = series
        self.probe = probe
        # the first window starts at t=0: priming against zero means
        # startup activity lands in window one instead of being lost
        self._previous = 0.0

    def sample(self, now: float, window: float) -> None:
        current = float(self.probe())
        delta = current - self._previous
        self._previous = current
        self.series.append(now, delta / window if window > 0 else 0.0)


class Telemetry:
    """The single observability handle threaded through a system.

    Owns the registered samplers, the recorded series, and a timeline of
    discrete *marks* (fault onsets, partitions, recoveries).  Components
    register probes against it at construction time
    (:meth:`~repro.replication.base.ReplicatedSystem._register_probes`);
    the harness then calls :meth:`schedule` once the measurement horizon is
    known.

    Args:
        interval: virtual seconds between samples (the window width).
    """

    def __init__(self, interval: float = 1.0):
        if interval <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {interval}"
            )
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {}
        self.marks: List[Tuple[float, str, Dict[str, Any]]] = []
        self._samplers: List[Any] = []
        self._scheduled = False

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def _new_series(self, name: str) -> TimeSeries:
        if name in self.series:
            raise ConfigurationError(f"series {name!r} is already registered")
        series = TimeSeries(name)
        self.series[name] = series
        return series

    def gauge(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        """Register an instantaneous-value probe sampled every tick."""
        series = self._new_series(name)
        self._samplers.append(GaugeSampler(series, probe))
        return series

    def counter_rate(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        """Register a cumulative counter, recorded as per-window rate."""
        series = self._new_series(name)
        self._samplers.append(CounterDeltaSampler(series, probe))
        return series

    def mark(self, time: float, label: str, **detail: Any) -> None:
        """Record a discrete timeline event (partition start, crash, ...)."""
        self.marks.append((time, label, detail))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample(self, now: float) -> None:
        """Take one sample of every registered probe (one window ends)."""
        for sampler in self._samplers:
            sampler.sample(now, self.interval)

    def schedule(self, engine, horizon: float) -> int:
        """Pre-schedule sample ticks on ``engine`` up to ``horizon``.

        Ticks land at ``interval, 2*interval, ... <= horizon`` plus one
        final tick at the horizon itself when it is not already a multiple,
        so the last partial window is never silently dropped.  Bounded
        scheduling keeps the engine drainable.  Returns the tick count.
        """
        if self._scheduled:
            raise ConfigurationError("telemetry ticks are already scheduled")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self._scheduled = True
        ticks = 0
        t = self.interval
        while t < horizon + 1e-12:
            engine.schedule_at(t, self._tick, engine)
            t += self.interval
            ticks += 1
        if ticks == 0 or t - self.interval < horizon - 1e-12:
            engine.schedule_at(horizon, self._tick, engine)
            ticks += 1
        return ticks

    def _tick(self, engine) -> None:
        self.sample(engine.now)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def summaries(self) -> Dict[str, SeriesSummary]:
        return {name: s.summary() for name, s in sorted(self.series.items())}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible snapshot (crosses the campaign worker boundary)."""
        return {
            "interval": self.interval,
            "series": {
                name: series.to_dict()
                for name, series in sorted(self.series.items())
            },
            "marks": [
                {"time": t, "label": label, "detail": dict(detail)}
                for t, label, detail in self.marks
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Telemetry interval={self.interval:g} "
            f"series={len(self.series)} marks={len(self.marks)}>"
        )
