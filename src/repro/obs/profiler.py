"""Wall-clock hot-spot profiling of the simulation engine itself.

The engine's main loop dispatches every scheduled callback; the profiler
taps that single choke point and buckets real (wall-clock) time by what ran
— process steps under their process *name* (normalised: trailing
``@node`` / ``-id`` numerics stripped, so every ``handler-replica-update-N``
lands in one bucket), bare callbacks under their qualified function name.
That answers "where does a simulated second actually go?" — the measurement
baseline any engine optimisation work should start from.

Zero cost when off: :attr:`Engine.profiler` is ``None`` by default and the
run loop only pays an attribute check.  Install/uninstall::

    profiler = Profiler().install(system.engine)
    system.run()
    print(profiler.table())
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.metrics.report import format_table
from repro.sim.process import Process

#: trailing `-123` / `@4` id suffixes collapse into one bucket per kind
_ID_SUFFIX = re.compile(r"(?:[@-]\d+)+$")


def bucket_name(callback: Callable, args: Tuple[Any, ...]) -> str:
    """The profile bucket one dispatch belongs to."""
    if args and isinstance(args[0], Process):
        name = args[0].name or "anonymous-process"
        return _ID_SUFFIX.sub("", name) or name
    return getattr(callback, "__qualname__", repr(callback))


@dataclass
class Bucket:
    """Aggregate cost of one dispatch kind."""

    name: str
    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.seconds / self.calls * 1e6 if self.calls else 0.0


class Profiler:
    """Counts and times engine callback dispatches, bucketed by name."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.buckets: Dict[str, Bucket] = {}
        self.total_dispatches = 0
        self.total_seconds = 0.0
        self._engine = None

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def install(self, engine) -> "Profiler":
        """Hook this profiler into ``engine``'s dispatch path."""
        if engine.profiler is not None:
            raise ConfigurationError("engine already has a profiler installed")
        engine.profiler = self
        self._engine = engine
        return self

    def uninstall(self) -> None:
        if self._engine is not None and self._engine.profiler is self:
            self._engine.profiler = None
        self._engine = None

    # ------------------------------------------------------------------ #
    # the dispatch tap (called by Engine.run)
    # ------------------------------------------------------------------ #

    def dispatch(self, callback: Callable, args: Tuple[Any, ...]) -> None:
        t0 = self._clock()
        try:
            callback(*args)
        finally:
            elapsed = self._clock() - t0
            name = bucket_name(callback, args)
            bucket = self.buckets.get(name)
            if bucket is None:
                bucket = self.buckets[name] = Bucket(name)
            bucket.calls += 1
            bucket.seconds += elapsed
            self.total_dispatches += 1
            self.total_seconds += elapsed

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def hot_spots(self, top: Optional[int] = None) -> List[Bucket]:
        """Buckets by cumulative wall time, hottest first."""
        ranked = sorted(
            self.buckets.values(),
            key=lambda b: (-b.seconds, b.name),
        )
        return ranked[:top] if top is not None else ranked

    def table(self, top: int = 15) -> str:
        rows = [
            [
                b.name,
                b.calls,
                f"{b.seconds * 1e3:.3f}",
                f"{b.mean_us:.2f}",
                (f"{b.seconds / self.total_seconds * 100:.1f}%"
                 if self.total_seconds else "-"),
            ]
            for b in self.hot_spots(top)
        ]
        return format_table(
            ["bucket", "calls", "total ms", "mean µs", "share"],
            rows,
            title=(
                f"engine hot spots: {self.total_dispatches} dispatches, "
                f"{self.total_seconds * 1e3:.1f} ms wall"
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_dispatches": self.total_dispatches,
            "total_seconds": self.total_seconds,
            "buckets": [
                {
                    "name": b.name,
                    "calls": b.calls,
                    "seconds": b.seconds,
                }
                for b in self.hot_spots()
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Profiler dispatches={self.total_dispatches} "
            f"wall={self.total_seconds:.4f}s buckets={len(self.buckets)}>"
        )
