"""Observability subsystem: time-series telemetry, traces, profiles, reports.

Four lenses onto one simulated run, layered on the existing tracer/metrics
hooks without touching the measurement semantics:

* :mod:`repro.obs.samplers` — a :class:`~repro.obs.samplers.Telemetry`
  handle drives windowed gauge / counter-rate samplers from an
  engine-scheduled tick (wait-queue depth, in-flight messages, per-window
  commit/abort/reconciliation rates, tentative backlog);
* :mod:`repro.obs.chrome_trace` — exports
  :class:`~repro.sim.tracing.Tracer` events as Chrome/Perfetto trace JSON
  with one track per node;
* :mod:`repro.obs.profiler` — wall-clock hot spots of the engine itself,
  bucketed by process name;
* :mod:`repro.obs.report` — a per-run markdown/JSON report stitching
  counters, oracle verdict, fault timeline, and series summaries.

Entry points: ``ExperimentConfig(sample_interval=...)`` for sampling,
``python -m repro trace`` / ``python -m repro report`` on the CLI.
"""

from repro.obs.chrome_trace import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profiler import Profiler, bucket_name
from repro.obs.report import RunReport, build_report, write_report
from repro.obs.samplers import (
    CounterDeltaSampler,
    GaugeSampler,
    SeriesSummary,
    Telemetry,
    TimeSeries,
)

__all__ = [
    "CounterDeltaSampler",
    "GaugeSampler",
    "Profiler",
    "RunReport",
    "SeriesSummary",
    "Telemetry",
    "TimeSeries",
    "bucket_name",
    "build_report",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_report",
]
