"""Per-run reports: counters, oracle verdict, fault timeline, series.

One :class:`RunReport` stitches everything a run produced into a single
markdown (or JSON) document: the configuration provenance, the measured
rates and non-zero counters, the invariant-oracle verdict, the fault/mark
timeline, and a sparkline summary (min/mean/max/last per window) of every
telemetry series.  This is the artefact a chaos run leaves behind — the
"what happened and when" that flat counters cannot answer.

The builder duck-types its input so it works both on a live
:class:`~repro.harness.experiment.ExperimentResult` (with an attached
:class:`~repro.obs.samplers.Telemetry`) and on a deserialised campaign
payload whose series travelled inside ``extra["series"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.metrics.report import format_table
from repro.obs.samplers import Telemetry, TimeSeries


@dataclass
class RunReport:
    """Everything the report renders, already shaped for output."""

    title: str
    config: Dict[str, Any]
    rates: Dict[str, float]
    counters: Dict[str, float]
    divergence: int
    end_time: float
    oracle_ok: Optional[bool]
    oracle_failures: List[str] = field(default_factory=list)
    fault_stats: Dict[str, Any] = field(default_factory=dict)
    timeline: List[Tuple[float, str, Dict[str, Any]]] = field(
        default_factory=list
    )
    series: List[TimeSeries] = field(default_factory=list)
    sample_interval: Optional[float] = None
    trace_dropped: int = 0

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def to_markdown(self) -> str:
        lines: List[str] = [f"# {self.title}", ""]

        lines.append("## Run")
        lines.append("")
        lines.append("```")
        for key in sorted(self.config):
            lines.append(f"{key} = {self.config[key]}")
        lines.append(f"end_time = {self.end_time:.6g}")
        lines.append(f"divergence = {self.divergence}")
        lines.append("```")
        lines.append("")

        verdict = ("n/a" if self.oracle_ok is None
                   else "ok" if self.oracle_ok else "FAIL")
        lines.append(f"## Oracle: {verdict}")
        for failure in self.oracle_failures:
            lines.append(f"- {failure}")
        lines.append("")

        lines.append("## Rates")
        lines.append("")
        lines.append("```")
        lines.append(format_table(
            ["rate", "per second"],
            sorted(self.rates.items()),
        ))
        lines.append("```")
        lines.append("")

        lines.append("## Counters")
        lines.append("")
        lines.append("```")
        lines.append(format_table(
            ["counter", "count"],
            sorted((k, v) for k, v in self.counters.items() if v),
        ))
        lines.append("```")
        lines.append("")

        if self.trace_dropped:
            lines.append(
                f"**Warning:** the tracer ring buffer dropped "
                f"{self.trace_dropped} events; raise `Tracer(limit=...)` "
                "for a complete trace."
            )
            lines.append("")

        if self.fault_stats:
            lines.append("## Injected faults")
            lines.append("")
            lines.append("```")
            lines.append(format_table(
                ["fault", "count"],
                sorted(self.fault_stats.items()),
            ))
            lines.append("```")
            lines.append("")

        if self.timeline:
            lines.append("## Fault timeline")
            lines.append("")
            for time, label, detail in sorted(self.timeline,
                                              key=lambda m: m[0]):
                suffix = ""
                if detail:
                    fields = " ".join(
                        f"{k}={v}" for k, v in sorted(detail.items())
                    )
                    suffix = f" ({fields})"
                lines.append(f"- `t={time:.3f}` {label}{suffix}")
            lines.append("")

        if self.series:
            window = (f"{self.sample_interval:g}s"
                      if self.sample_interval else "?")
            lines.append(f"## Time series ({window} windows)")
            lines.append("")
            lines.append("```")
            rows = []
            for series in self.series:
                s = series.summary()
                rows.append([
                    series.name, s.count, s.minimum, f"{s.mean:.4g}",
                    s.maximum, s.last,
                ])
            lines.append(format_table(
                ["series", "windows", "min", "mean", "max", "last"],
                rows,
            ))
            lines.append("")
            for series in self.series:
                lines.append(f"{series.name:>24} |{series.sparkline()}|")
            lines.append("```")
            lines.append("")

        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "config": dict(self.config),
            "rates": dict(self.rates),
            "counters": dict(self.counters),
            "divergence": self.divergence,
            "end_time": self.end_time,
            "oracle_ok": self.oracle_ok,
            "oracle_failures": list(self.oracle_failures),
            "fault_stats": dict(self.fault_stats),
            "trace_dropped": self.trace_dropped,
            "timeline": [
                {"time": t, "label": label, "detail": dict(detail)}
                for t, label, detail in self.timeline
            ],
            "sample_interval": self.sample_interval,
            "series": {s.name: s.to_dict() for s in self.series},
        }


def _series_from_extra(extra: Dict[str, Any]) -> Tuple[
        List[TimeSeries], List[Tuple[float, str, Dict[str, Any]]],
        Optional[float]]:
    """Rebuild series + marks from a serialised ``extra['series']`` blob."""
    blob = extra.get("series")
    if not isinstance(blob, dict):
        return [], [], None
    series = [
        TimeSeries.from_dict(data)
        for _name, data in sorted(blob.get("series", {}).items())
    ]
    marks = [
        (m["time"], m["label"], m.get("detail", {}))
        for m in blob.get("marks", ())
    ]
    return series, marks, blob.get("interval")


def build_report(
    result,
    telemetry: Optional[Telemetry] = None,
    title: Optional[str] = None,
) -> RunReport:
    """Assemble a :class:`RunReport` from one experiment result.

    Args:
        result: an :class:`~repro.harness.experiment.ExperimentResult`
            (or anything shaped like one).
        telemetry: the run's live telemetry handle; when ``None`` the
            series are recovered from ``result.extra["series"]`` if the
            run sampled (campaign payloads round-trip this way).
        title: report heading (defaults to strategy + parameters).
    """
    from repro.harness.export import config_to_dict

    config = config_to_dict(result.config)
    params = config.pop("params", {})
    flat_config = dict(params)
    flat_config.update(
        (k, v) for k, v in config.items() if v is not None
    )

    if telemetry is not None:
        series = [telemetry.series[name]
                  for name in sorted(telemetry.series)]
        timeline = list(telemetry.marks)
        interval: Optional[float] = telemetry.interval
    else:
        series, timeline, interval = _series_from_extra(result.extra)

    extra = result.extra
    return RunReport(
        title=title or (
            f"{result.config.strategy} run — nodes="
            f"{result.config.params.nodes}, seed={result.config.seed}"
        ),
        config=flat_config,
        rates={k: v for k, v in result.rates.as_dict().items()
               if k != "horizon"},
        counters=result.metrics.as_dict(),
        divergence=result.divergence,
        end_time=result.end_time,
        oracle_ok=extra.get("oracle_ok"),
        oracle_failures=list(extra.get("oracle_failures") or ()),
        fault_stats=dict(extra.get("fault_stats") or {}),
        timeline=timeline,
        series=series,
        sample_interval=interval,
        trace_dropped=int(extra.get("trace_dropped") or 0),
    )


def service_report_markdown(payload: Dict[str, Any]) -> str:
    """Render a ``repro loadtest`` result JSON as a markdown section.

    Accepts the dict a load-test run writes with ``--out`` (or the
    ``BENCH_service.json`` payload, which embeds the same fields): offered
    vs committed throughput, the latency percentiles, the rejection rate,
    and the drained-state oracle verdict.
    """
    if payload.get("kind") not in ("service-loadtest", None) and \
            payload.get("benchmark") != "service-gateway":
        raise ValueError(
            "not a service loadtest result: expected kind="
            f"'service-loadtest', got {payload.get('kind')!r}"
        )
    config = payload.get("config") or {}
    latency = payload.get("latency_ms") or {}
    oracle = payload.get("oracle")

    lines: List[str] = ["# Service loadtest report", ""]
    lines.append("## Run")
    lines.append("")
    lines.append("```")
    for key in sorted(config):
        lines.append(f"{key} = {config[key]}")
    elapsed = payload.get("elapsed_seconds")
    if elapsed is not None:
        lines.append(f"elapsed_seconds = {elapsed:.3f}")
    lines.append("```")
    lines.append("")

    lines.append("## Throughput")
    lines.append("")
    lines.append("```")
    rows = [
        ["sent", payload.get("sent", 0)],
        ["completed", payload.get("completed", 0)],
        ["accepted", payload.get("accepted", 0)],
        ["rejected", payload.get("rejected", 0)],
        ["errors", payload.get("errors", 0)],
        ["lost replies", payload.get("lost", 0)],
        ["committed/sec",
         f"{payload.get('throughput_committed_per_sec', 0.0):.1f}"],
        ["completed/sec",
         f"{payload.get('completed_per_sec', 0.0):.1f}"],
        ["rejection rate",
         f"{payload.get('rejection_rate', 0.0):.4f}"],
    ]
    lines.append(format_table(["quantity", "value"], rows))
    lines.append("```")
    lines.append("")

    if latency:
        lines.append("## Latency (ms)")
        lines.append("")
        lines.append("```")
        order = ("p50", "p90", "p95", "p99", "mean", "max", "count")
        rows = [
            [key, latency[key] if key == "count"
             else f"{latency[key]:.3f}"]
            for key in order if latency.get(key) is not None
        ]
        lines.append(format_table(["quantile", "value"], rows))
        lines.append("```")
        lines.append("")

    if oracle is not None:
        verdict = "ok" if oracle.get("ok") else "FAIL"
        lines.append(f"## Oracle: {verdict}")
        lines.append("")
        lines.append("```")
        rows = sorted(
            (k, v) for k, v in oracle.items() if k != "ok"
        )
        lines.append(format_table(["check", "value"], rows))
        lines.append("```")
        lines.append("")
    else:
        lines.append("## Oracle: n/a (run finished without --drain)")
        lines.append("")

    return "\n".join(lines)


def write_report(report: RunReport, path: Union[str, Path]) -> Path:
    """Write the markdown form of ``report`` to ``path``."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(report.to_markdown(), encoding="utf-8")
    return target
