"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is pure data: per-link fault probabilities plus a
timetable of partitions and node crashes.  It carries no randomness of its
own — the :class:`~repro.faults.injector.FaultInjector` draws every coin
flip from a ``RandomSource`` forked off the experiment's master seed under
the plan's ``fault_seed``, so

* the same (workload seed, plan) always produces the same fault timeline,
* changing ``fault_seed`` reshuffles the faults while leaving every
  workload stream (arrivals, operations, backoffs) byte-identical.

Plans serialise to canonical dictionaries (:meth:`FaultPlan.to_dict`) so
they can join the campaign cache's content-hash key, and parse from the
CLI's compact ``drop=0.05,partition=2`` syntax via :meth:`FaultPlan.from_spec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.specs import coerce_float, coerce_window, split_spec_items

#: spec value meaning "the partition never heals / the node never recovers"
FOREVER = math.inf


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities for every inter-node link.

    Args:
        drop: probability a message is silently lost on the wire.
        duplicate: probability a message is delivered twice.
        reorder: probability a message takes an extra uniform delay of up
            to ``reorder_window`` seconds, letting later sends overtake it.
        reorder_window: the maximum reorder delay.
        jitter: every message gets a uniform extra latency in [0, jitter].
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.1
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop)
        _check_probability("duplicate", self.duplicate)
        _check_probability("reorder", self.reorder)
        if self.reorder_window < 0:
            raise ConfigurationError("reorder_window must be >= 0")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")

    @property
    def empty(self) -> bool:
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.reorder == 0.0 and self.jitter == 0.0)

    @property
    def lossless(self) -> bool:
        """Duplicates, reordering, and jitter never lose information."""
        return self.drop == 0.0


@dataclass(frozen=True)
class Partition:
    """A timed bidirectional cut between two node groups.

    While active, every (left, right) pair is unreachable in both
    directions; traffic parks in store-and-forward queues.  At
    ``start + duration`` the cut heals and parked messages flush.  A
    ``duration`` of ``math.inf`` never heals.
    """

    start: float
    duration: float
    left: Tuple[int, ...]
    right: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError("partition start must be >= 0")
        if self.duration <= 0:
            raise ConfigurationError("partition duration must be > 0")
        if not self.left or not self.right:
            raise ConfigurationError("both partition sides must be non-empty")
        if set(self.left) & set(self.right):
            raise ConfigurationError("partition sides must be disjoint")

    @property
    def heals(self) -> bool:
        return math.isfinite(self.duration)

    @property
    def heal_time(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Crash:
    """A fail-stop node crash at ``at``, recovering after ``downtime``.

    A ``downtime`` of ``math.inf`` means the node never comes back.
    """

    node: int
    at: float
    downtime: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("crash time must be >= 0")
        if self.downtime <= 0:
            raise ConfigurationError("crash downtime must be > 0")

    @property
    def recovers(self) -> bool:
        return math.isfinite(self.downtime)

    @property
    def recovery_time(self) -> float:
        return self.at + self.downtime


# spec keys that set LinkFaults fields directly
_LINK_KEYS = {
    "drop": "drop",
    "dup": "duplicate",
    "duplicate": "duplicate",
    "reorder": "reorder",
    "jitter": "jitter",
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule for one experiment.

    Attributes:
        link: probabilistic per-message faults.
        partitions: timed bidirectional cuts.
        crashes: fail-stop node crashes.
        fault_seed: selects the fault randomness stream.  Fault draws come
            from ``rng.spawn(f"faults/{fault_seed}")`` — a forked child of
            the experiment's master source — so they can never perturb
            workload streams (the seeding contract).
    """

    link: LinkFaults = field(default_factory=LinkFaults)
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[Crash, ...] = ()
    fault_seed: int = 0

    def __post_init__(self) -> None:
        by_node: Dict[int, list] = {}
        for crash in self.crashes:
            by_node.setdefault(crash.node, []).append(crash)
        for node, crashes in by_node.items():
            crashes.sort(key=lambda c: c.at)
            for earlier, later in zip(crashes, crashes[1:]):
                if later.at < earlier.recovery_time:
                    raise ConfigurationError(
                        f"overlapping crash windows for node {node}"
                    )

    @property
    def empty(self) -> bool:
        return self.link.empty and not self.partitions and not self.crashes

    @property
    def lossless(self) -> bool:
        """True when the plan destroys no information: no drops, every
        partition heals, every crashed node recovers.  A lossless plan must
        leave a convergent strategy convergent — the oracle's yardstick."""
        return (
            self.link.lossless
            and all(p.heals for p in self.partitions)
            and all(c.recovers for c in self.crashes)
        )

    def with_seed(self, fault_seed: int) -> "FaultPlan":
        """The same fault schedule under a different randomness stream."""
        return replace(self, fault_seed=fault_seed)

    # ------------------------------------------------------------------ #
    # serialisation (canonical: joins the campaign cache key)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        def number(x: float) -> Any:
            # "inf" as a string: strict-JSON safe for cache keys and exports
            return "inf" if math.isinf(x) else x

        return {
            "link": {
                "drop": self.link.drop,
                "duplicate": self.link.duplicate,
                "reorder": self.link.reorder,
                "reorder_window": self.link.reorder_window,
                "jitter": self.link.jitter,
            },
            "partitions": [
                {
                    "start": p.start,
                    "duration": number(p.duration),
                    "left": list(p.left),
                    "right": list(p.right),
                }
                for p in self.partitions
            ],
            "crashes": [
                {
                    "node": c.node,
                    "at": c.at,
                    "downtime": number(c.downtime),
                }
                for c in self.crashes
            ],
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        def number(x: Any) -> float:
            return math.inf if x == "inf" else float(x)

        link = data.get("link", {})
        return cls(
            link=LinkFaults(
                drop=link.get("drop", 0.0),
                duplicate=link.get("duplicate", 0.0),
                reorder=link.get("reorder", 0.0),
                reorder_window=link.get("reorder_window", 0.1),
                jitter=link.get("jitter", 0.0),
            ),
            partitions=tuple(
                Partition(
                    start=p["start"],
                    duration=number(p["duration"]),
                    left=tuple(p["left"]),
                    right=tuple(p["right"]),
                )
                for p in data.get("partitions", ())
            ),
            crashes=tuple(
                Crash(node=c["node"], at=c["at"], downtime=number(c["downtime"]))
                for c in data.get("crashes", ())
            ),
            fault_seed=data.get("fault_seed", 0),
        )

    # ------------------------------------------------------------------ #
    # CLI spec parsing
    # ------------------------------------------------------------------ #

    @classmethod
    def from_spec(
        cls,
        spec: str,
        num_nodes: int,
        duration: float,
        fault_seed: int = 0,
    ) -> "FaultPlan":
        """Build a concrete plan from a compact CLI spec.

        Syntax: comma-separated ``key=value`` pairs.

        * ``drop`` / ``dup`` / ``reorder`` — per-message probabilities;
        * ``jitter`` — max uniform extra latency in seconds;
        * ``partition=<seconds>|forever`` — one bidirectional cut splitting
          the nodes in half, starting at 25% of the run;
        * ``crash=<seconds>|forever`` — the last node crashes at 25% of the
          run, recovering after the given downtime.

        The timetable is a deterministic function of (spec, num_nodes,
        duration) — two runs of the same sweep cell schedule identical
        events.  Example: ``drop=0.05,partition=2``.

        Tokenisation and value coercion come from :mod:`repro.specs`, the
        grammar shared with ``--placement``.
        """
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        link: Dict[str, float] = {}
        partitions: Tuple[Partition, ...] = ()
        crashes: Tuple[Crash, ...] = ()
        for key, raw in split_spec_items(spec, what="fault"):
            if key in _LINK_KEYS:
                link[_LINK_KEYS[key]] = coerce_float(key, raw)
                continue
            if key in ("partition", "crash"):
                window = coerce_window(key, raw)
                start = duration * 0.25
                if key == "partition":
                    if num_nodes < 2:
                        raise ConfigurationError(
                            "partition needs at least 2 nodes"
                        )
                    half = num_nodes // 2
                    partitions = partitions + (
                        Partition(
                            start=start,
                            duration=window,
                            left=tuple(range(half)),
                            right=tuple(range(half, num_nodes)),
                        ),
                    )
                else:
                    crashes = crashes + (
                        Crash(node=num_nodes - 1, at=start, downtime=window),
                    )
                continue
            raise ConfigurationError(
                f"unknown fault spec key {key!r}; expected one of "
                f"{sorted(_LINK_KEYS)} + ['partition', 'crash']"
            )
        return cls(
            link=LinkFaults(**link),
            partitions=partitions,
            crashes=crashes,
            fault_seed=fault_seed,
        )
