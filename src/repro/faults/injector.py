"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live system.

The injector has two halves:

* a **timeline** — partitions and crashes are scheduled on the engine at
  plan-specified instants when :meth:`FaultInjector.install` runs, so two
  runs of the same plan cut and heal at identical simulated times;
* a **wire tap** — the network hands every inter-node message about to go
  on a live link to :meth:`FaultInjector.route`, which decides drop /
  duplicate / extra latency from seeded coin flips.

Determinism contract: all randomness comes from
``system.rng.spawn(f"faults/{plan.fault_seed}")`` — a *forked* child of the
experiment's master source.  Forking means fault draws never advance any
workload stream, so changing ``fault_seed`` re-rolls the faults while the
offered load stays byte-identical.  Within the fault stream the number of
draws per message is fixed by the plan's constants (a probability of zero
draws nothing), so fault timelines are stable too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.network.message import Message


class FaultInjector:
    """Wires a :class:`FaultPlan` into a replicated system.

    Args:
        system: any :class:`~repro.replication.base.ReplicatedSystem`.
        plan: the fault schedule to execute.

    Call :meth:`install` once, before the workload starts.
    """

    def __init__(self, system, plan: FaultPlan):
        self.system = system
        self.plan = plan
        self._rng = system.rng.spawn(f"faults/{plan.fault_seed}").stream("link")
        self._installed = False
        # observability counters, exported via stats()
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.partitions_started = 0
        self.partitions_healed = 0
        self.crashes = 0
        self.recoveries = 0

    # ------------------------------------------------------------------ #
    # timeline
    # ------------------------------------------------------------------ #

    def install(self) -> "FaultInjector":
        """Register the wire tap and schedule the partition/crash timeline."""
        if self._installed:
            raise ConfigurationError("fault injector already installed")
        self._installed = True
        network = self.system.network
        if not self.plan.link.empty:
            network.install_fault_injector(self)
        engine = self.system.engine
        for partition in self.plan.partitions:
            engine.schedule_at(
                partition.start, self._start_partition, partition
            )
            if partition.heals:
                engine.schedule_at(
                    partition.heal_time, self._heal_partition, partition
                )
        for crash in self.plan.crashes:
            engine.schedule_at(crash.at, self._crash, crash)
            if crash.recovers:
                engine.schedule_at(crash.recovery_time, self._recover, crash)
        return self

    def _start_partition(self, partition) -> None:
        for a in partition.left:
            for b in partition.right:
                self.system.network.set_reachable(a, b, False)
        self.partitions_started += 1
        self.system._trace(
            "partition", phase="start",
            left=list(partition.left), right=list(partition.right),
        )
        self._mark("partition-start",
                   left=list(partition.left), right=list(partition.right))

    def _heal_partition(self, partition) -> None:
        for a in partition.left:
            for b in partition.right:
                self.system.network.set_reachable(a, b, True)
        self.partitions_healed += 1
        self.system._trace(
            "partition", phase="heal",
            left=list(partition.left), right=list(partition.right),
        )
        self._mark("partition-heal",
                   left=list(partition.left), right=list(partition.right))

    def _crash(self, crash) -> None:
        self.system.crash_node(crash.node)
        self.crashes += 1
        self._mark("crash", node=crash.node)

    def _recover(self, crash) -> None:
        self.system.recover_node(crash.node)
        self.recoveries += 1
        self._mark("recover", node=crash.node)

    def _mark(self, label: str, **detail) -> None:
        """Pin a fault-timeline mark onto the telemetry series, if any."""
        telemetry = getattr(self.system, "telemetry", None)
        if telemetry is not None:
            telemetry.mark(self.system.engine.now, label, **detail)

    # ------------------------------------------------------------------ #
    # wire tap
    # ------------------------------------------------------------------ #

    def route(self, msg: Message) -> List[Tuple[Message, float]]:
        """Decide the fate of one on-the-wire message.

        Returns ``[(message, extra_delay), ...]`` — empty for a drop, two
        entries for a duplicate.  Draw counts per message depend only on
        which plan probabilities are non-zero, never on draw outcomes, so
        the fault timeline is a pure function of (seed, plan).
        """
        link = self.plan.link
        if link.drop > 0.0 and self._rng.random() < link.drop:
            self.dropped += 1
            self.system._trace(
                "fault", kind="drop", msg_kind=msg.kind,
                src=msg.src, dst=msg.dst,
            )
            return []
        deliveries = [(msg, self._extra_delay(link))]
        if link.duplicate > 0.0 and self._rng.random() < link.duplicate:
            clone = Message(
                src=msg.src, dst=msg.dst, kind=msg.kind,
                payload=msg.payload, send_time=msg.send_time,
            )
            clone.deliver_time = msg.deliver_time
            deliveries.append((clone, self._extra_delay(link)))
            self.duplicated += 1
            self.system._trace(
                "fault", kind="duplicate", msg_kind=msg.kind,
                src=msg.src, dst=msg.dst,
            )
        return deliveries

    def _extra_delay(self, link) -> float:
        extra = 0.0
        if link.jitter > 0.0:
            extra += self._rng.uniform(0.0, link.jitter)
        if link.reorder > 0.0:
            # two draws, unconditionally, to keep draw counts fixed
            coin = self._rng.random()
            window = self._rng.uniform(0.0, link.reorder_window)
            if coin < link.reorder:
                extra += window
        if extra > 0.0:
            self.delayed += 1
        return extra

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "partitions_started": self.partitions_started,
            "partitions_healed": self.partitions_healed,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector dropped={self.dropped} "
            f"duplicated={self.duplicated} crashes={self.crashes}>"
        )
