"""Post-run invariant oracle for faulted experiments.

Every faulted run ends with a verdict: did the system end in a state
consistent with what its strategy *promises* under the executed fault plan?
The oracle composes the standard invariants from
:mod:`repro.verify.invariants` with a fault-aware convergence expectation:

* duplicates, reordering, jitter, healed partitions and recovered crashes
  must leave a convergent strategy convergent — timestamp idempotency
  absorbs the link faults, parked queues flush at heal, and the WAL rolls
  lost work back at crash;
* message **drops** and nodes that never come back destroy information the
  strategy never sees, so divergence is excused (only the per-node
  invariants — quiescence, counter accounting — still apply);
* a partition that **never heals** is *not* excused: the replicas end the
  run disagreeing, which is precisely the system delusion the oracle
  exists to flag — such runs report ``oracle_ok = False``.

Two-tier systems are judged on their **base tier**: mobiles are
legitimately stale while dark (that is the design), but the master tier
diverging means lost durable updates — the paper's system delusion.

The verdict is attached to every campaign cell as ``oracle_ok`` so a fault
sweep reports correctness alongside its rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.verify.invariants import (
    InvariantReport,
    check_accounting,
    check_converged,
    check_quiescent,
    check_serializable,
)


@dataclass
class OracleVerdict:
    """The oracle's judgement of one finished run.

    Attributes:
        ok: every applicable invariant held.
        expected_convergence: whether replica convergence was required
            (False under lossy plans, where divergence is legitimate).
        failures: human-readable invariant violations.
        checked: names of the invariants that ran.
    """

    ok: bool
    expected_convergence: bool
    failures: List[str] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return f"oracle ok ({', '.join(self.checked)})"
        return "oracle failures:\n" + "\n".join(
            f"  - {failure}" for failure in self.failures
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "expected_convergence": self.expected_convergence,
            "failures": list(self.failures),
            "checked": list(self.checked),
        }


def evaluate(
    system,
    plan: Optional[FaultPlan] = None,
    expect_serializable: bool = False,
) -> OracleVerdict:
    """Judge a finished system against its fault plan.

    Args:
        system: the drained :class:`~repro.replication.base.ReplicatedSystem`.
        plan: the executed fault plan (None means fault-free).
        expect_serializable: additionally require a conflict-serializable
            recorded history (needs ``record_history=True``).
    """
    expected_convergence = plan is None or (
        plan.link.drop == 0.0 and all(c.recovers for c in plan.crashes)
    )
    report = check_quiescent(system)
    report = report.merge(check_accounting(system))
    report = report.merge(_check_no_dead_nodes(system, plan))
    if expected_convergence:
        report = report.merge(_check_convergence(system))
    if expect_serializable:
        report = report.merge(check_serializable(system))
    return OracleVerdict(
        ok=report.ok,
        expected_convergence=expected_convergence,
        failures=list(report.failures),
        checked=list(report.checked),
    )


def _check_convergence(system) -> InvariantReport:
    """Full convergence for flat systems; base-tier convergence for
    two-tier, whose mobiles may legitimately end the run disconnected."""
    from repro.core.protocol import TwoTierSystem

    if not isinstance(system, TwoTierSystem):
        return check_converged(system)
    report = InvariantReport(checked=["base-tier"])
    diverged = system.base_divergence()
    if diverged:
        report.failures.append(
            f"{diverged} objects diverged across the base tier"
        )
    return report


def _check_no_dead_nodes(system, plan: Optional[FaultPlan]) -> InvariantReport:
    """When every planned crash recovers, no node may still be down at the
    end of the run — a node still dark means the timeline did not finish."""
    report = InvariantReport(checked=["recovered"])
    if plan is None or not plan.crashes:
        return report
    if not all(c.recovers for c in plan.crashes):
        return report
    still_down = sorted(getattr(system, "crashed", ()))
    if still_down:
        report.failures.append(
            f"nodes still crashed at end of run: {still_down}"
        )
    return report
