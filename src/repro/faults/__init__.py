"""Deterministic fault injection: plans, the injector, and the oracle."""

from repro.faults.injector import FaultInjector
from repro.faults.oracle import OracleVerdict, evaluate
from repro.faults.plan import FOREVER, Crash, FaultPlan, LinkFaults, Partition

__all__ = [
    "FOREVER",
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "OracleVerdict",
    "Partition",
    "evaluate",
]
