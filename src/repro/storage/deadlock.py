"""Waits-for graph and deadlock detection.

"A deadlock consists of a cycle of transactions waiting for one another"
(paper, section 3).  The detector maintains the global waits-for graph —
shared by the lock managers of *all* nodes, because an eager transaction
holds locks at every replica and a cycle can span nodes — and runs a DFS
from each new waiter.  When a cycle is found, a victim is chosen (youngest
by default) and its pending lock requests are failed with
:class:`~repro.exceptions.DeadlockAbort`.

A transaction may wait at several lock managers at once (the footnote-2
parallel-update eager variant issues one replica update per node
concurrently), so waits are keyed by ``(manager, oid)`` and a transaction's
outgoing edges are the union over its live waits.

Hot-path design: the union is *not* rebuilt per probe.  The detector keeps
an aggregated adjacency map ``waiter -> {blocker: refcount}`` updated
incrementally as waits are set and cleared, so ``blockers_of`` — called for
every node the DFS visits — is a dict view instead of a set-union loop.
Managers are keyed by a stable small-int id handed out at registration
rather than ``id(manager)``, keeping wait keys replay-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(slots=True)
class _WaitInfo:
    """One waiting request: where it is queued and whom it blocks on."""

    manager: Any  # LockManager
    oid: int
    request: Any  # LockRequest
    blockers: Set[Any]


def youngest_victim(cycle: List[Any]) -> Any:
    """Default victim policy: abort the transaction that started last.

    Transactions expose a monotonically increasing ``txn_id``; the youngest
    has done the least work, so aborting it wastes the least.
    """
    return max(cycle, key=lambda txn: txn.txn_id)


def oldest_victim(cycle: List[Any]) -> Any:
    """Alternative policy: abort the oldest transaction (worst case, for the
    victim-policy ablation benchmark)."""
    return min(cycle, key=lambda txn: txn.txn_id)


class DeadlockDetector:
    """Cycle detection over the global waits-for graph.

    Args:
        victim_policy: maps a detected cycle (list of transactions) to the
            transaction to abort.  Defaults to :func:`youngest_victim`.
    """

    def __init__(self, victim_policy: Callable[[List[Any]], Any] = youngest_victim):
        self._waits: Dict[Any, Dict[Tuple[int, int], _WaitInfo]] = {}
        # incremental adjacency: waiter -> {blocker: live-wait refcount};
        # a blocker is present iff it blocks the waiter through >= 1 wait
        self._out: Dict[Any, Dict[Any, int]] = {}
        self._next_manager_id = 0
        # ids for managers that cannot carry a ``detector_index`` attribute
        # (e.g. None / test doubles); real lock managers never land here
        self._fallback_manager_ids: Dict[int, int] = {}
        self.victim_policy = victim_policy
        self.cycles_found = 0

    # ------------------------------------------------------------------ #
    # graph maintenance (called by lock managers)
    # ------------------------------------------------------------------ #

    def register_manager(self, manager: Any) -> int:
        """Hand out a stable small-int id for keying this manager's waits.

        Ids are assigned in first-contact order, which is deterministic for
        a seeded run — unlike ``id(manager)`` memory addresses.
        """
        manager_id = self._next_manager_id
        self._next_manager_id += 1
        return manager_id

    def _key(self, manager: Any, oid: int) -> Tuple[int, int]:
        manager_id = getattr(manager, "detector_index", None)
        if manager_id is None:
            try:
                manager_id = manager.detector_index = self.register_manager(manager)
            except AttributeError:
                fallback = self._fallback_manager_ids
                manager_id = fallback.get(id(manager))
                if manager_id is None:
                    manager_id = fallback[id(manager)] = self.register_manager(
                        manager
                    )
        return (manager_id, oid)

    def set_waits(
        self,
        waiter: Any,
        blockers: Iterable[Any],
        manager: Any,
        oid: int,
        request: Any,
    ) -> None:
        """Record/update one wait of ``waiter`` at ``(manager, oid)``."""
        blocker_set = {b for b in blockers if b is not waiter}
        waits = self._waits.get(waiter)
        if waits is None:
            waits = self._waits[waiter] = {}
        key = self._key(manager, oid)
        old = waits.get(key)
        if old is not None:
            self._drop_edges(waiter, old.blockers)
        waits[key] = _WaitInfo(
            manager=manager, oid=oid, request=request, blockers=blocker_set
        )
        self._add_edges(waiter, blocker_set)

    def clear_wait(self, txn: Any, manager: Any, oid: int) -> None:
        """Remove one wait (the request was granted or cancelled)."""
        waits = self._waits.get(txn)
        if waits is None:
            return
        info = waits.pop(self._key(manager, oid), None)
        if info is not None:
            self._drop_edges(txn, info.blockers)
        if not waits:
            self._waits.pop(txn, None)

    def clear_waits(self, txn: Any) -> None:
        """Remove every wait of ``txn`` (commit/abort path)."""
        if self._waits.pop(txn, None) is not None:
            self._out.pop(txn, None)

    def _add_edges(self, waiter: Any, blockers: Set[Any]) -> None:
        if not blockers:
            return
        counts = self._out.get(waiter)
        if counts is None:
            counts = self._out[waiter] = {}
        for blocker in blockers:
            counts[blocker] = counts.get(blocker, 0) + 1

    def _drop_edges(self, waiter: Any, blockers: Set[Any]) -> None:
        counts = self._out.get(waiter)
        if counts is None:
            return
        for blocker in blockers:
            remaining = counts.get(blocker, 0) - 1
            if remaining > 0:
                counts[blocker] = remaining
            else:
                counts.pop(blocker, None)
        if not counts:
            del self._out[waiter]

    def blockers_of(self, txn: Any) -> Set[Any]:
        """Union of blockers over the transaction's live waits."""
        counts = self._out.get(txn)
        return set(counts) if counts else set()

    def _ordered_blockers(self, txn: Any) -> List[Any]:
        """Blockers in a deterministic order.

        Transaction objects hash by identity, so iterating the raw set would
        make cycle exploration — and therefore victim selection — depend on
        memory addresses.  Ordering by ``txn_id`` keeps every run replayable.
        """
        counts = self._out.get(txn)
        if not counts:
            return []
        return sorted(counts, key=lambda t: t.txn_id)

    # ------------------------------------------------------------------ #
    # detection
    # ------------------------------------------------------------------ #

    def find_cycle(self, start: Any) -> Optional[List[Any]]:
        """Return a waits-for cycle reachable from ``start``, if one exists.

        Iterative DFS; the graph is tiny (bounded by concurrent transactions)
        so no cleverness is needed, but recursion is avoided for safety.
        """
        path: List[Any] = [start]
        on_path: Set[Any] = {start}
        visited: Set[Any] = set()
        stack: List[Tuple[Any, Iterable[Any]]] = [
            (start, iter(self._ordered_blockers(start)))
        ]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child in on_path:
                    idx = path.index(child)
                    return path[idx:]
                if child in visited:
                    continue
                visited.add(child)
                path.append(child)
                on_path.add(child)
                stack.append((child, iter(self._ordered_blockers(child))))
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
        return None

    def find_victim(self, start: Any) -> Optional[Any]:
        """Detect a cycle from ``start`` and pick a victim from it."""
        cycle = self.find_cycle(start)
        if cycle is None:
            return None
        self.cycles_found += 1
        return self.victim_policy(cycle)

    # ------------------------------------------------------------------ #
    # victim abort
    # ------------------------------------------------------------------ #

    def abort_waiting_txn(self, victim: Any, exc: BaseException) -> None:
        """Fail every queued lock request of ``victim``, waking it with
        ``exc``.

        Every member of a cycle is waiting by definition; a parallel-update
        transaction may have several queued requests, all of which must be
        cancelled so no stale request is granted after the abort.
        """
        waits = self._waits.get(victim)
        if not waits:
            # the victim's wait may already have been resolved by a racing
            # grant in the same instant; nothing to abort then
            return
        for info in list(waits.values()):
            info.manager.cancel_request(info.oid, info.request, exc)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def waiting_count(self) -> int:
        return len(self._waits)

    def edges(self) -> Dict[Any, Set[Any]]:
        return {txn: self.blockers_of(txn) for txn in self._waits}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeadlockDetector waiting={len(self._waits)} "
            f"cycles_found={self.cycles_found}>"
        )
