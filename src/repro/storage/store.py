"""The per-node object store.

A plain in-memory map ``oid -> Record`` with explicit read/write methods so
that every mutation passes a timestamp check-point.  The store is
concurrency-agnostic: isolation is the lock manager's job and atomicity is
the WAL's; the store just holds current committed state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional

from repro.exceptions import ConfigurationError
from repro.storage.record import Record
from repro.storage.versioning import Timestamp


class ObjectStore:
    """The object replicas stored at one node.

    By default the store materialises the whole ``oid`` space (full
    replication).  Under a partial placement only the node's shard is
    materialised: pass ``oids`` with the resident subset and the store
    allocates nothing for the rest — reading a non-resident object raises
    ``KeyError``, which is a routing bug, not a data condition.

    Example::

        store = ObjectStore(node_id=0, db_size=100)
        record = store.read(7)
        store.write(7, record.value + 1, ts)
    """

    def __init__(
        self,
        node_id: int,
        db_size: int,
        initial_value: Any = 0,
        oids: Optional[Iterable[int]] = None,
    ):
        if db_size <= 0:
            raise ConfigurationError(f"db_size must be positive, got {db_size}")
        self.node_id = node_id
        self.db_size = db_size
        resident = range(db_size) if oids is None else oids
        self._records: Dict[int, Record] = {
            oid: Record(oid=oid, value=initial_value) for oid in resident
        }

    def read(self, oid: int) -> Record:
        """Return the record for ``oid`` (raises KeyError if absent)."""
        return self._records[oid]

    def value(self, oid: int) -> Any:
        """Convenience: the committed value of ``oid``."""
        return self._records[oid].value

    def timestamp(self, oid: int) -> Timestamp:
        """Convenience: the committed timestamp of ``oid``."""
        return self._records[oid].ts

    def write(self, oid: int, value: Any, ts: Timestamp) -> Record:
        """Install ``value`` with timestamp ``ts`` as the committed version."""
        record = self._records[oid]
        record.value = value
        record.ts = ts
        return record

    def apply(self, oid: int, transform: Callable[[Any], Any], ts: Timestamp) -> Record:
        """Apply a pure transform to the current value (commutative ops)."""
        record = self._records[oid]
        record.value = transform(record.value)
        record.ts = ts
        return record

    def restore(self, oid: int, value: Any, ts: Timestamp) -> None:
        """Undo hook used by the WAL: reinstate an earlier version."""
        record = self._records[oid]
        record.value = value
        record.ts = ts

    def oids(self) -> Iterable[int]:
        """The object identifiers resident at this node."""
        return self._records.keys()

    def snapshot(self) -> Dict[int, Any]:
        """Map oid -> value for divergence comparisons between nodes."""
        return {oid: rec.value for oid, rec in self._records.items()}

    def __len__(self) -> int:
        """Resident objects (== ``db_size`` under full replication)."""
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, oid: int) -> bool:
        return oid in self._records

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ObjectStore node={self.node_id} size={self.db_size}>"


def divergence(stores: Iterable[ObjectStore]) -> int:
    """Number of objects whose value differs across the given stores.

    This is the paper's "system delusion" metric: after quiescence and full
    propagation, any nonzero divergence means the replicas failed to
    converge.

    All stores must hold the same keyspace.  Comparing shards holding
    different objects would either silently report phantom agreement (a
    missing key looks like "no difference") or phantom divergence; under
    partial replication use the system-level
    :meth:`~repro.replication.base.ReplicatedSystem.divergence`, which
    compares each object across its own replica set.
    """
    snapshots = [store.snapshot() for store in stores]
    if len(snapshots) < 2:
        return 0
    first, rest = snapshots[0], snapshots[1:]
    base_keys = first.keys()
    for index, snap in enumerate(rest, start=1):
        if snap.keys() != base_keys:
            extra = len(snap.keys() - base_keys)
            missing = len(base_keys - snap.keys())
            raise ConfigurationError(
                "divergence() needs identical keyspaces at every store, but "
                f"store #{index} differs from store #0 ({missing} missing, "
                f"{extra} extra objects) — these look like partial-replication "
                "shards; compare per replica set via system.divergence()"
            )
    differing = 0
    for oid, val in first.items():
        if any(snap[oid] != val for snap in rest):
            differing += 1
    return differing
