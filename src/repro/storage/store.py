"""The per-node object store.

A plain in-memory map ``oid -> Record`` with explicit read/write methods so
that every mutation passes a timestamp check-point.  The store is
concurrency-agnostic: isolation is the lock manager's job and atomicity is
the WAL's; the store just holds current committed state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional

from repro.exceptions import ConfigurationError
from repro.storage.record import Record
from repro.storage.versioning import Timestamp


class ObjectStore:
    """All object replicas stored at one node.

    Example::

        store = ObjectStore(node_id=0, db_size=100)
        record = store.read(7)
        store.write(7, record.value + 1, ts)
    """

    def __init__(self, node_id: int, db_size: int, initial_value: Any = 0):
        if db_size <= 0:
            raise ConfigurationError(f"db_size must be positive, got {db_size}")
        self.node_id = node_id
        self.db_size = db_size
        self._records: Dict[int, Record] = {
            oid: Record(oid=oid, value=initial_value) for oid in range(db_size)
        }

    def read(self, oid: int) -> Record:
        """Return the record for ``oid`` (raises KeyError if absent)."""
        return self._records[oid]

    def value(self, oid: int) -> Any:
        """Convenience: the committed value of ``oid``."""
        return self._records[oid].value

    def timestamp(self, oid: int) -> Timestamp:
        """Convenience: the committed timestamp of ``oid``."""
        return self._records[oid].ts

    def write(self, oid: int, value: Any, ts: Timestamp) -> Record:
        """Install ``value`` with timestamp ``ts`` as the committed version."""
        record = self._records[oid]
        record.value = value
        record.ts = ts
        return record

    def apply(self, oid: int, transform: Callable[[Any], Any], ts: Timestamp) -> Record:
        """Apply a pure transform to the current value (commutative ops)."""
        record = self._records[oid]
        record.value = transform(record.value)
        record.ts = ts
        return record

    def restore(self, oid: int, value: Any, ts: Timestamp) -> None:
        """Undo hook used by the WAL: reinstate an earlier version."""
        record = self._records[oid]
        record.value = value
        record.ts = ts

    def oids(self) -> Iterable[int]:
        """All object identifiers in the database."""
        return range(self.db_size)

    def snapshot(self) -> Dict[int, Any]:
        """Map oid -> value for divergence comparisons between nodes."""
        return {oid: rec.value for oid, rec in self._records.items()}

    def __len__(self) -> int:
        return self.db_size

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, oid: int) -> bool:
        return oid in self._records

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ObjectStore node={self.node_id} size={self.db_size}>"


def divergence(stores: Iterable[ObjectStore]) -> int:
    """Number of objects whose value differs across the given stores.

    This is the paper's "system delusion" metric: after quiescence and full
    propagation, any nonzero divergence means the replicas failed to
    converge.
    """
    snapshots = [store.snapshot() for store in stores]
    if len(snapshots) < 2:
        return 0
    first, rest = snapshots[0], snapshots[1:]
    differing = 0
    for oid, val in first.items():
        if any(snap.get(oid) != val for snap in rest):
            differing += 1
    return differing
