"""The per-node object store.

A plain in-memory map ``oid -> Record`` with explicit read/write methods so
that every mutation passes a timestamp check-point.  The store is
concurrency-agnostic: isolation is the lock manager's job and atomicity is
the WAL's; the store just holds current committed state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional

from repro.exceptions import ConfigurationError
from repro.storage.record import Record
from repro.storage.versioning import Timestamp


class ObjectStore:
    """The object replicas stored at one node.

    By default the store materialises the whole ``oid`` space (full
    replication).  Under a partial placement the store holds only the
    node's shard, in one of two modes:

    * ``oids=...`` — **eager**: every resident record is allocated up
      front.  Reading a non-resident object raises ``KeyError``, which is
      a routing bug, not a data condition.
    * ``resident=...`` — **lazy**: residency is a membership predicate
      (normally ``placement.is_replica``) and records materialise on
      first touch from ``initial_value``.  A million-object k-of-N store
      allocates only what it reads; ``len(store)`` counts *materialised*
      records while :meth:`oids`/:meth:`snapshot`/``in`` answer for the
      *logical* shard, so the two modes are observationally identical
      everywhere except memory.

    Example::

        store = ObjectStore(node_id=0, db_size=100)
        record = store.read(7)
        store.write(7, record.value + 1, ts)
    """

    def __init__(
        self,
        node_id: int,
        db_size: int,
        initial_value: Any = 0,
        oids: Optional[Iterable[int]] = None,
        resident: Optional[Callable[[int], bool]] = None,
    ):
        if db_size <= 0:
            raise ConfigurationError(f"db_size must be positive, got {db_size}")
        if oids is not None and resident is not None:
            raise ConfigurationError(
                "pass either oids (eager shard) or resident (lazy shard), "
                "not both"
            )
        self.node_id = node_id
        self.db_size = db_size
        self._initial_value = initial_value
        self._resident = resident
        if resident is not None:
            self._records: Dict[int, Record] = {}
        else:
            populate = range(db_size) if oids is None else oids
            self._records = {
                oid: Record(oid=oid, value=initial_value) for oid in populate
            }

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #

    def _miss(self, oid: int) -> Record:
        """Handle a ``_records`` miss: materialise lazily or re-raise."""
        if (
            self._resident is not None
            and 0 <= oid < self.db_size
            and self._resident(oid)
        ):
            record = self._records[oid] = Record(
                oid=oid, value=self._initial_value
            )
            return record
        raise KeyError(oid)

    def read(self, oid: int) -> Record:
        """Return the record for ``oid`` (raises KeyError if non-resident)."""
        try:
            return self._records[oid]
        except KeyError:
            return self._miss(oid)

    def value(self, oid: int) -> Any:
        """Convenience: the committed value of ``oid``."""
        try:
            return self._records[oid].value
        except KeyError:
            return self._miss(oid).value

    def timestamp(self, oid: int) -> Timestamp:
        """Convenience: the committed timestamp of ``oid``."""
        try:
            return self._records[oid].ts
        except KeyError:
            return self._miss(oid).ts

    def peek(self, oid: int) -> Any:
        """The committed value of ``oid`` *without* materialising it.

        Divergence/oracle sweeps walk the whole keyspace; under a lazy
        store a plain :meth:`value` would allocate a record per probed
        object and defeat the laziness.  ``peek`` answers from the
        materialised record when there is one, from ``initial_value``
        for a resident-but-untouched object, and raises ``KeyError`` for
        a non-resident one.
        """
        record = self._records.get(oid)
        if record is not None:
            return record.value
        if (
            self._resident is not None
            and 0 <= oid < self.db_size
            and self._resident(oid)
        ):
            return self._initial_value
        raise KeyError(oid)

    def write(self, oid: int, value: Any, ts: Timestamp) -> Record:
        """Install ``value`` with timestamp ``ts`` as the committed version."""
        record = self.read(oid)
        record.value = value
        record.ts = ts
        return record

    def apply(self, oid: int, transform: Callable[[Any], Any], ts: Timestamp) -> Record:
        """Apply a pure transform to the current value (commutative ops)."""
        record = self.read(oid)
        record.value = transform(record.value)
        record.ts = ts
        return record

    def restore(self, oid: int, value: Any, ts: Timestamp) -> None:
        """Undo hook used by the WAL: reinstate an earlier version.

        A no-op when the object is no longer resident here: it migrated
        away while the writing transaction was in flight, so the
        authoritative copy travelled to the new holder and reinstating a
        local version would resurrect a replica the directory no longer
        routes to (and crash the undo with a ``KeyError`` on a lazy
        store whose residency predicate already excludes the object).
        """
        if oid not in self:
            return
        record = self.read(oid)
        record.value = value
        record.ts = ts

    # ------------------------------------------------------------------ #
    # migration hooks
    # ------------------------------------------------------------------ #

    def adopt(self, oid: int, value: Any, ts: Timestamp) -> Record:
        """Install a record shipped from another node (shard migration).

        Bypasses the residency predicate — the directory has already been
        rebound, and the predicate closure sees the post-move membership.
        If the object was touched here while the transfer was in flight,
        the newer timestamp wins (the Thomas write rule, same as replica
        updates).
        """
        record = self._records.get(oid)
        if record is None:
            record = self._records[oid] = Record(oid=oid, value=value, ts=ts)
        elif ts > record.ts:
            record.value = value
            record.ts = ts
        return record

    def evict(self, oid: int) -> None:
        """Drop ``oid``'s record (migration source). Missing oid is a no-op
        for a lazy store that never materialised it."""
        self._records.pop(oid, None)

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def oids(self) -> Iterable[int]:
        """The object identifiers *logically* resident at this node."""
        if self._resident is None:
            return self._records.keys()
        resident = self._resident
        return [
            oid for oid in range(self.db_size)
            if oid in self._records or resident(oid)
        ]

    def snapshot(self) -> Dict[int, Any]:
        """Map oid -> value for divergence comparisons between nodes.

        Logical view: a lazy store reports ``initial_value`` for resident
        objects it never materialised (allocating nothing permanent).
        """
        if self._resident is None:
            return {oid: rec.value for oid, rec in self._records.items()}
        return {oid: self.peek(oid) for oid in self.oids()}

    @property
    def materialized(self) -> int:
        """Records actually allocated (== resident for an eager store)."""
        return len(self._records)

    def __len__(self) -> int:
        """Materialised records (== resident count for an eager store)."""
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records.values())

    def __contains__(self, oid: int) -> bool:
        if oid in self._records:
            return True
        return (
            self._resident is not None
            and 0 <= oid < self.db_size
            and self._resident(oid)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ObjectStore node={self.node_id} size={self.db_size}>"


def divergence(stores: Iterable[ObjectStore]) -> int:
    """Number of objects whose value differs across the given stores.

    This is the paper's "system delusion" metric: after quiescence and full
    propagation, any nonzero divergence means the replicas failed to
    converge.

    All stores must hold the same keyspace.  Comparing shards holding
    different objects would either silently report phantom agreement (a
    missing key looks like "no difference") or phantom divergence; under
    partial replication use the system-level
    :meth:`~repro.replication.base.ReplicatedSystem.divergence`, which
    compares each object across its own replica set.
    """
    snapshots = [store.snapshot() for store in stores]
    if len(snapshots) < 2:
        return 0
    first, rest = snapshots[0], snapshots[1:]
    base_keys = first.keys()
    for index, snap in enumerate(rest, start=1):
        if snap.keys() != base_keys:
            extra = len(snap.keys() - base_keys)
            missing = len(base_keys - snap.keys())
            raise ConfigurationError(
                "divergence() needs identical keyspaces at every store, but "
                f"store #{index} differs from store #0 ({missing} missing, "
                f"{extra} extra objects) — these look like partial-replication "
                "shards; compare per replica set via system.divergence()"
            )
    differing = 0
    for oid, val in first.items():
        if any(snap[oid] != val for snap in rest):
            differing += 1
    return differing
