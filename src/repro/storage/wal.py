"""Write-ahead log providing undo for aborted transactions.

The simulator keeps all state in memory, so the log's purpose here is
*atomicity*, not durability: when a transaction aborts (deadlock victim or
acceptance failure) its writes are rolled back in reverse order, restoring
both value and timestamp.  Commit simply forgets the transaction's entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.exceptions import InvalidStateError
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp


@dataclass(frozen=True)
class LogEntry:
    """Before/after image of one write."""

    txn_id: int
    oid: int
    before_value: Any
    before_ts: Timestamp
    after_value: Any
    after_ts: Timestamp


class WriteAheadLog:
    """Per-node undo log keyed by transaction.

    Example::

        wal.record(txn_id, oid, old, old_ts, new, new_ts)
        ...
        wal.undo(txn_id, store)   # on abort
        wal.forget(txn_id)        # on commit
    """

    def __init__(self) -> None:
        self._by_txn: Dict[int, List[LogEntry]] = {}
        self.total_entries = 0

    def record(
        self,
        txn_id: int,
        oid: int,
        before_value: Any,
        before_ts: Timestamp,
        after_value: Any,
        after_ts: Timestamp,
    ) -> LogEntry:
        """Append a before/after image for ``txn_id``'s write to ``oid``."""
        entry = LogEntry(
            txn_id=txn_id,
            oid=oid,
            before_value=before_value,
            before_ts=before_ts,
            after_value=after_value,
            after_ts=after_ts,
        )
        self._by_txn.setdefault(txn_id, []).append(entry)
        self.total_entries += 1
        return entry

    def undo(self, txn_id: int, store: ObjectStore) -> int:
        """Roll back every write of ``txn_id`` in reverse order.

        Returns the number of writes undone.  The entries are consumed.
        """
        entries = self._by_txn.pop(txn_id, [])
        for entry in reversed(entries):
            store.restore(entry.oid, entry.before_value, entry.before_ts)
        return len(entries)

    def forget(self, txn_id: int) -> int:
        """Discard entries at commit.  Returns how many were dropped."""
        return len(self._by_txn.pop(txn_id, []))

    def entries_for(self, txn_id: int) -> List[LogEntry]:
        """The in-flight entries of ``txn_id`` (oldest first)."""
        return list(self._by_txn.get(txn_id, []))

    def pending_transactions(self) -> int:
        return len(self._by_txn)

    def assert_quiescent(self) -> None:
        """Raise unless every transaction has committed or aborted."""
        if self._by_txn:
            raise InvalidStateError(
                f"WAL still holds undo for {len(self._by_txn)} transactions"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WriteAheadLog pending={len(self._by_txn)} "
            f"total={self.total_entries}>"
        )
