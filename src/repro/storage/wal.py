"""Write-ahead log providing undo for aborted transactions.

The simulator keeps all state in memory, so the log's purpose here is
*atomicity*, not durability: when a transaction aborts (deadlock victim or
acceptance failure) its writes are rolled back in reverse order, restoring
both value and timestamp.  Commit simply forgets the transaction's entries.

The log also models *node crashes* for fault injection: :meth:`crash`
discards every in-flight transaction's effects (reverse global-order undo,
as a real recovery manager's rollback pass would), after which the log
refuses new writes until :meth:`begin_recovery` / :meth:`complete_recovery`
bring the node back.  A write attempted while the node is down raises
:class:`~repro.exceptions.CrashAbort`, which flows into each strategy's
normal abort path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.exceptions import CrashAbort, InvalidStateError
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp

# log lifecycle states
ACTIVE = "active"
CRASHED = "crashed"
RECOVERING = "recovering"


@dataclass(frozen=True)
class LogEntry:
    """Before/after image of one write."""

    txn_id: int
    oid: int
    before_value: Any
    before_ts: Timestamp
    after_value: Any
    after_ts: Timestamp
    seq: int = -1  # global append order, for cross-transaction undo


class WriteAheadLog:
    """Per-node undo log keyed by transaction.

    Example::

        wal.record(txn_id, oid, old, old_ts, new, new_ts)
        ...
        wal.undo(txn_id, store)   # on abort
        wal.forget(txn_id)        # on commit
    """

    def __init__(self) -> None:
        self._by_txn: Dict[int, List[LogEntry]] = {}
        self.total_entries = 0
        self.state = ACTIVE

    @property
    def is_active(self) -> bool:
        return self.state == ACTIVE

    def record(
        self,
        txn_id: int,
        oid: int,
        before_value: Any,
        before_ts: Timestamp,
        after_value: Any,
        after_ts: Timestamp,
    ) -> LogEntry:
        """Append a before/after image for ``txn_id``'s write to ``oid``."""
        if self.state != ACTIVE:
            raise CrashAbort(f"write lost: node log is {self.state}")
        entry = LogEntry(
            txn_id=txn_id,
            oid=oid,
            before_value=before_value,
            before_ts=before_ts,
            after_value=after_value,
            after_ts=after_ts,
            seq=self.total_entries,
        )
        self._by_txn.setdefault(txn_id, []).append(entry)
        self.total_entries += 1
        return entry

    def undo(self, txn_id: int, store: ObjectStore) -> int:
        """Roll back every write of ``txn_id`` in reverse order.

        Returns the number of writes undone.  The entries are consumed.
        """
        entries = self._by_txn.pop(txn_id, [])
        for entry in reversed(entries):
            store.restore(entry.oid, entry.before_value, entry.before_ts)
        return len(entries)

    def forget(self, txn_id: int) -> int:
        """Discard entries at commit.  Returns how many were dropped."""
        return len(self._by_txn.pop(txn_id, []))

    # ------------------------------------------------------------------ #
    # crash & recovery
    # ------------------------------------------------------------------ #

    def crash(self, store: ObjectStore) -> int:
        """The node fails: roll back every in-flight transaction.

        All pending entries are undone in reverse *global* append order
        (later writes first, across transactions), restoring each object's
        value and timestamp; the log then refuses new writes until recovery
        completes.  Returns the number of writes discarded.
        """
        if self.state == CRASHED:
            raise InvalidStateError("double crash: node is already down")
        if self.state == RECOVERING:
            raise InvalidStateError("crash during recovery is not modelled")
        pending = sorted(
            (entry for entries in self._by_txn.values() for entry in entries),
            key=lambda entry: entry.seq,
            reverse=True,
        )
        for entry in pending:
            store.restore(entry.oid, entry.before_value, entry.before_ts)
        self._by_txn.clear()
        self.state = CRASHED
        return len(pending)

    def begin_recovery(self) -> None:
        """Start bringing a crashed node back (only valid while crashed)."""
        if self.state != CRASHED:
            raise InvalidStateError(
                f"cannot recover a node whose log is {self.state}"
            )
        self.state = RECOVERING

    def complete_recovery(self) -> None:
        """Finish recovery: the log accepts writes again."""
        if self.state != RECOVERING:
            raise InvalidStateError(
                f"complete_recovery without begin_recovery (state {self.state})"
            )
        self.state = ACTIVE

    def entries_for(self, txn_id: int) -> List[LogEntry]:
        """The in-flight entries of ``txn_id`` (oldest first)."""
        return list(self._by_txn.get(txn_id, []))

    def pending_before(self, oid: int):
        """``(value, ts)`` of ``oid``'s last *committed* version, if an
        active transaction has uncommitted writes to it (None otherwise).

        The earliest pending entry holds the committed before-image — any
        later writes to the same object chain off the first.  Migration
        uses this to ship committed state instead of leaking a value whose
        transaction may still abort.
        """
        earliest = None
        for entries in self._by_txn.values():
            for entry in entries:
                if entry.oid == oid and (
                    earliest is None or entry.seq < earliest.seq
                ):
                    earliest = entry
        if earliest is None:
            return None
        return earliest.before_value, earliest.before_ts

    def pending_transactions(self) -> int:
        return len(self._by_txn)

    def assert_quiescent(self) -> None:
        """Raise unless every transaction has committed or aborted."""
        if self._by_txn:
            raise InvalidStateError(
                f"WAL still holds undo for {len(self._by_txn)} transactions"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<WriteAheadLog pending={len(self._by_txn)} "
            f"total={self.total_entries}>"
        )
