"""Per-node storage substrate.

Each simulated node owns:

* an :class:`~repro.storage.store.ObjectStore` of versioned
  :class:`~repro.storage.record.Record` objects (value + Lamport timestamp +
  optional version vector),
* a strict two-phase-locking :class:`~repro.storage.lock_manager.LockManager`
  with FIFO wait queues,
* a :class:`~repro.storage.deadlock.DeadlockDetector` maintaining the global
  waits-for graph (shared across nodes so distributed eager transactions can
  form — and be caught in — cross-node cycles),
* a :class:`~repro.storage.wal.WriteAheadLog` supplying undo on abort.

The paper's model ignores read locks ("a weak multi-version form of
committed-read serialization"); the lock manager nevertheless implements both
shared and exclusive modes so the eager analysis can optionally be run with
full serializability.
"""

from repro.storage.deadlock import DeadlockDetector
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.record import Record
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp, TimestampGenerator, VersionVector
from repro.storage.wal import LogEntry, WriteAheadLog

__all__ = [
    "DeadlockDetector",
    "LockManager",
    "LockMode",
    "Record",
    "ObjectStore",
    "Timestamp",
    "TimestampGenerator",
    "VersionVector",
    "LogEntry",
    "WriteAheadLog",
]
