"""Strict two-phase locking with FIFO wait queues.

The eager analysis in the paper (equations 2-5 and 9-12) assumes a locking
scheduler: conflicting accesses wait, and cyclic waits are deadlocks that
abort a victim.  This lock manager implements that scheduler for one node.

Key points:

* Modes are SHARED / EXCLUSIVE with the usual compatibility matrix.
* Waiters queue FIFO; a request is granted only when no conflicting holder
  exists *and* no conflicting earlier request is still queued (no barging),
  matching the fairness assumed by the analytic wait model.
* Waiting is expressed as a :class:`~repro.sim.events.SimEvent`: ``acquire``
  returns ``None`` when granted immediately, otherwise an event the calling
  process must ``yield``.  The deadlock detector aborts a victim by *failing*
  that event with :class:`~repro.exceptions.DeadlockAbort`.
* All waits are registered with a (possibly shared) waits-for graph so that
  distributed eager transactions can form cross-node cycles and still be
  detected (the paper's eager scheme holds locks at every replica).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import DeadlockAbort, LockError
from repro.sim.events import SimEvent
from repro.sim.protocol import EngineProtocol


class LockMode(enum.Enum):
    """Lock modes; EXCLUSIVE conflicts with everything."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED

    def covers(self, other: "LockMode") -> bool:
        """True if holding ``self`` satisfies a request for ``other``."""
        return self is LockMode.EXCLUSIVE or other is LockMode.SHARED


@dataclass
class LockRequest:
    """A queued lock request by one transaction."""

    txn: Any
    mode: LockMode
    event: SimEvent
    upgrade: bool = False


@dataclass
class _LockEntry:
    """State of one lockable object: current holders plus the wait queue."""

    holders: Dict[Any, LockMode] = field(default_factory=dict)
    queue: List[LockRequest] = field(default_factory=list)

    def conflicts_with_holders(self, txn: Any, mode: LockMode) -> List[Any]:
        """Holders (other than txn) whose mode conflicts with ``mode``."""
        return [
            holder
            for holder, held in self.holders.items()
            if holder is not txn and not held.compatible_with(mode)
        ]


class LockManager:
    """Lock table for one node, wired to a shared deadlock detector.

    Args:
        engine: the simulation engine (used to create wait events).
        node_id: owning node, for diagnostics.
        detector: shared :class:`~repro.storage.deadlock.DeadlockDetector`.
        on_wait: optional metrics hook called once per blocked request.
        on_deadlock: optional metrics hook called once per chosen victim.
        telemetry: optional :class:`~repro.obs.samplers.Telemetry` handle
            (the owning system registers an aggregate wait-queue-depth
            gauge over all nodes; the handle is kept here so per-node
            probes can be added without re-plumbing).
    """

    def __init__(
        self,
        engine: EngineProtocol,
        node_id: int,
        detector,
        on_wait: Optional[Callable[[Any], None]] = None,
        on_deadlock: Optional[Callable[[Any], None]] = None,
        telemetry=None,
    ):
        self.engine = engine
        self.node_id = node_id
        self.detector = detector
        self.on_wait = on_wait
        self.on_deadlock = on_deadlock
        self.telemetry = telemetry
        self._table: Dict[int, _LockEntry] = {}
        self._held_by_txn: Dict[Any, set] = {}
        # txns with queued (blocked) requests, and on which objects: lets
        # release_all skip the whole-table scan in the common no-wait case
        self._queued_by_txn: Dict[Any, set] = {}

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #

    def acquire(self, txn: Any, oid: int, mode: LockMode) -> Optional[SimEvent]:
        """Request ``mode`` on ``oid`` for ``txn``.

        Returns ``None`` when the lock is granted immediately; otherwise a
        :class:`SimEvent` that the caller must yield.  The event is failed
        with :class:`DeadlockAbort` if the transaction is chosen as a
        deadlock victim while waiting.

        Usage contract: a transaction has at most one outstanding request
        per object at this node — it must wait for (or be aborted out of)
        a pending request before issuing another for the same object.
        Violations raise :class:`LockError` rather than corrupting the
        queue.  (Concurrent requests for the same object at *different*
        nodes — the parallel-update eager mode — are fine.)
        """
        entry = self._table.get(oid)
        if entry is None:
            # uncontended fast path: first touch of a free object — grant
            # without building queues or consulting the deadlock detector
            # (entries are reaped once empty, so "absent" means "free")
            self._table[oid] = entry = _LockEntry()
            entry.holders[txn] = mode
            held_oids = self._held_by_txn.get(txn)
            if held_oids is None:
                held_oids = self._held_by_txn[txn] = set()
            held_oids.add(oid)
            return None
        if entry.queue and any(request.txn is txn for request in entry.queue):
            raise LockError(
                f"transaction {txn!r} already has a queued request for "
                f"object {oid} at node {self.node_id}"
            )
        held = entry.holders.get(txn)

        if held is not None and held.covers(mode):
            return None  # re-entrant or already stronger

        upgrade = held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
        if self._grantable(entry, txn, mode, upgrade=upgrade):
            self._grant(entry, txn, oid, mode)
            return None

        event = self.engine.event(name=f"lock({self.node_id},{oid})")
        request = LockRequest(txn=txn, mode=mode, event=event, upgrade=upgrade)
        if upgrade:
            # upgrades go to the head of the queue to avoid upgrade starvation
            entry.queue.insert(0, request)
        else:
            entry.queue.append(request)
        self._note_queued(txn, oid)
        if self.on_wait is not None:
            self.on_wait(txn)
        self._register_wait(entry, oid, request)
        victim = self.detector.find_victim(txn)
        if victim is not None:
            self._abort_victim(victim)
        return event

    def _grantable(
        self,
        entry: _LockEntry,
        txn: Any,
        mode: LockMode,
        upgrade: bool,
        before_request: Optional[LockRequest] = None,
    ) -> bool:
        """Can this request be granted now?

        ``before_request`` marks the queue position of an already-enqueued
        request being re-checked at promotion time: only requests *ahead of*
        it can block it.  For brand-new requests (not yet queued) the whole
        queue is ahead.
        """
        if entry.conflicts_with_holders(txn, mode):
            return False
        if upgrade:
            return True  # sole conflicting holder is txn itself; jump queue
        # no barging past earlier waiters with conflicting modes
        for queued in entry.queue:
            if queued is before_request:
                break
            if queued.txn is not txn and not queued.mode.compatible_with(mode):
                return False
        return True

    def _grant(self, entry: _LockEntry, txn: Any, oid: int, mode: LockMode) -> None:
        current = entry.holders.get(txn)
        if current is None or mode.covers(current):
            entry.holders[txn] = mode
        self._held_by_txn.setdefault(txn, set()).add(oid)

    # ------------------------------------------------------------------ #
    # release
    # ------------------------------------------------------------------ #

    def release_all(self, txn: Any) -> None:
        """Release every lock ``txn`` holds and cancel its queued requests.

        Called at commit and abort (strict 2PL: nothing is released early).
        """
        oids = self._held_by_txn.pop(txn, ())
        for oid in oids:
            entry = self._table.get(oid)
            if entry is None:
                continue
            entry.holders.pop(txn, None)
        # drop any still-queued requests from this txn (abort path); their
        # wait events fail so concurrently-parked requesters (parallel-update
        # transactions) wake up instead of leaking.  The queued-by-txn index
        # makes the common case (nothing queued) free; when something *is*
        # queued the table is walked in insertion order, exactly as before,
        # so promotion order is unchanged.
        if self._queued_by_txn.pop(txn, None):
            for oid, entry in list(self._table.items()):
                dropped = [req for req in entry.queue if req.txn is txn]
                if not dropped:
                    continue
                entry.queue[:] = [req for req in entry.queue if req.txn is not txn]
                for request in dropped:
                    self.detector.clear_wait(txn, self, oid)
                    if request.event.pending:
                        request.event.fail(DeadlockAbort("owner aborted"))
                self._promote_waiters(oid)
        self.detector.clear_waits(txn)
        for oid in oids:
            self._promote_waiters(oid)

    def _promote_waiters(self, oid: int) -> None:
        """Grant every queued request that has become grantable, in order."""
        entry = self._table.get(oid)
        if entry is None:
            return
        progressed = True
        while progressed:
            progressed = False
            for request in list(entry.queue):
                if self._grantable(
                    entry,
                    request.txn,
                    request.mode,
                    upgrade=request.upgrade,
                    before_request=request,
                ):
                    entry.queue.remove(request)
                    self._note_dequeued(request.txn, oid)
                    self._grant(entry, request.txn, oid, request.mode)
                    self.detector.clear_wait(request.txn, self, oid)
                    request.event.succeed()
                    progressed = True
                    break
        self._refresh_waits(entry, oid)
        if not entry.holders and not entry.queue:
            self._table.pop(oid, None)

    def _note_queued(self, txn: Any, oid: int) -> None:
        queued = self._queued_by_txn.get(txn)
        if queued is None:
            queued = self._queued_by_txn[txn] = set()
        queued.add(oid)

    def _note_dequeued(self, txn: Any, oid: int) -> None:
        queued = self._queued_by_txn.get(txn)
        if queued is not None:
            queued.discard(oid)
            if not queued:
                del self._queued_by_txn[txn]

    # ------------------------------------------------------------------ #
    # waits-for bookkeeping
    # ------------------------------------------------------------------ #

    def _blockers_of(self, entry: _LockEntry, request: LockRequest) -> List[Any]:
        blockers = entry.conflicts_with_holders(request.txn, request.mode)
        if not request.upgrade:
            for queued in entry.queue:
                if queued is request:
                    break
                if queued.txn is not request.txn and not queued.mode.compatible_with(
                    request.mode
                ):
                    blockers.append(queued.txn)
        return blockers

    def _register_wait(self, entry: _LockEntry, oid: int, request: LockRequest) -> None:
        blockers = self._blockers_of(entry, request)
        self.detector.set_waits(request.txn, blockers, manager=self, oid=oid,
                                request=request)

    def _refresh_waits(self, entry: _LockEntry, oid: int) -> None:
        """Recompute waits-for edges for all still-queued requests on ``oid``.

        Keeps the graph accurate after holders change, so detection never
        chases stale edges.
        """
        for request in entry.queue:
            blockers = self._blockers_of(entry, request)
            self.detector.set_waits(request.txn, blockers, manager=self, oid=oid,
                                    request=request)

    # ------------------------------------------------------------------ #
    # victim handling
    # ------------------------------------------------------------------ #

    def cancel_request(self, oid: int, request: LockRequest, exc: BaseException) -> None:
        """Remove a queued request and fail its event (victim abort path)."""
        entry = self._table.get(oid)
        if entry is None or request not in entry.queue:
            raise LockError(f"request for oid {oid} not queued")
        entry.queue.remove(request)
        self._note_dequeued(request.txn, oid)
        self.detector.clear_wait(request.txn, self, oid)
        if request.event.pending:
            request.event.fail(exc)
        self._promote_waiters(oid)

    def _abort_victim(self, victim: Any) -> None:
        if self.on_deadlock is not None:
            self.on_deadlock(victim)
        self.detector.abort_waiting_txn(victim, DeadlockAbort())

    # ------------------------------------------------------------------ #
    # introspection (tests)
    # ------------------------------------------------------------------ #

    def holders(self, oid: int) -> Dict[Any, LockMode]:
        entry = self._table.get(oid)
        return dict(entry.holders) if entry else {}

    def queue_length(self, oid: int) -> int:
        entry = self._table.get(oid)
        return len(entry.queue) if entry else 0

    def total_queued(self) -> int:
        """Blocked lock requests across every object (wait-queue depth)."""
        return sum(len(entry.queue) for entry in self._table.values())

    def locks_held(self, txn: Any) -> set:
        return set(self._held_by_txn.get(txn, set()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LockManager node={self.node_id} objects={len(self._table)}>"
