"""Versioned database records.

The paper's model database is "a fixed set of objects"; a record is one such
object's replica at one node.  Each record carries the Lamport timestamp of
its most recent committed update (Figure 4) and, for the convergent schemes
of section 6, an optional version vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.storage.versioning import Timestamp, VersionVector


@dataclass
class Record:
    """One object replica: value plus versioning metadata.

    Attributes:
        oid: object identifier, stable across all replicas.
        value: the current committed value.
        ts: Lamport timestamp of the most recent committed update.
        vector: version vector (only maintained by convergent schemes).
    """

    oid: int
    value: Any = 0
    ts: Timestamp = field(default_factory=lambda: Timestamp.ZERO)
    vector: Optional[VersionVector] = None

    def copy(self) -> "Record":
        """A shallow snapshot (values in this library are immutable scalars
        or tuples, so shallow is enough)."""
        return Record(oid=self.oid, value=self.value, ts=self.ts, vector=self.vector)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Record(oid={self.oid}, value={self.value!r}, ts={self.ts})"
