"""Timestamps and version vectors.

Figure 4 of the paper tags every lazy replica update with the *old* object
timestamp so the receiver can tell whether applying the update is safe.  For
that test to be meaningful across nodes the timestamps must be unique and
totally ordered; wall-clock time is neither in a simulation nor in practice,
so we use Lamport pairs ``(counter, node_id)``.

Section 6 describes Microsoft Access keeping a *version vector* with each
replicated record and resolving pairwise exchanges by recency; the
:class:`VersionVector` here supports that convergent scheme (and dominance
testing to distinguish genuine conflicts from stale echoes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional


@dataclass(frozen=True, order=True)
class Timestamp:
    """A Lamport timestamp: ``(counter, node_id)``.

    Ordering is lexicographic, so timestamps are totally ordered and two
    distinct events never compare equal (node id breaks counter ties).
    """

    counter: int
    node_id: int

    ZERO: "Timestamp" = None  # type: ignore[assignment] # set below

    def next_at(self, node_id: int) -> "Timestamp":
        """The smallest timestamp at ``node_id`` strictly after ``self``."""
        return Timestamp(self.counter + 1, node_id)

    def __str__(self) -> str:
        return f"{self.counter}@{self.node_id}"


Timestamp.ZERO = Timestamp(0, -1)


class TimestampGenerator:
    """Per-node Lamport clock.

    ``tick()`` produces a fresh local timestamp; ``witness(ts)`` advances the
    clock past any timestamp observed on an incoming message, preserving the
    happened-before order of the paper's lazy update streams.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._counter = 0

    def tick(self) -> Timestamp:
        """Produce the next local timestamp."""
        self._counter += 1
        return Timestamp(self._counter, self.node_id)

    def witness(self, ts: Timestamp) -> None:
        """Advance the local clock to at least ``ts.counter``."""
        if ts.counter > self._counter:
            self._counter = ts.counter

    @property
    def current_counter(self) -> int:
        return self._counter


class VersionVector:
    """A map node_id -> update counter, with dominance comparison.

    Used by the convergent (section 6) schemes.  ``a.dominates(b)`` means
    ``a`` has seen every update ``b`` has; when neither dominates, the
    versions are *concurrent* and a reconciliation rule must pick a winner.
    """

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Optional[Mapping[int, int]] = None):
        self._clocks: Dict[int, int] = dict(clocks or {})

    def get(self, node_id: int) -> int:
        return self._clocks.get(node_id, 0)

    def bump(self, node_id: int) -> "VersionVector":
        """Return a copy with ``node_id``'s component incremented."""
        clocks = dict(self._clocks)
        clocks[node_id] = clocks.get(node_id, 0) + 1
        return VersionVector(clocks)

    def merge(self, other: "VersionVector") -> "VersionVector":
        """Component-wise maximum of two vectors."""
        clocks = dict(self._clocks)
        for node_id, counter in other._clocks.items():
            if counter > clocks.get(node_id, 0):
                clocks[node_id] = counter
        return VersionVector(clocks)

    def dominates(self, other: "VersionVector") -> bool:
        """True when self >= other component-wise."""
        return all(self.get(n) >= c for n, c in other._clocks.items())

    def concurrent_with(self, other: "VersionVector") -> bool:
        """True when neither vector dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        nodes = set(self._clocks) | set(other._clocks)
        return all(self.get(n) == other.get(n) for n in nodes)

    def __hash__(self) -> int:
        return hash(tuple(sorted((n, c) for n, c in self._clocks.items() if c)))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._clocks.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{n}:{c}" for n, c in self)
        return f"VersionVector({{{inner}}})"
