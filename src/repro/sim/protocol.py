"""The explicit engine interface: what every kernel must provide.

Three kernels live in this repo — the slotted hot-path
:class:`~repro.sim.engine.Engine`, the frozen
:class:`~repro.sim.legacy_kernel.LegacyEngine` benchmark reference, and the
asyncio-backed :class:`~repro.service.wallclock.WallClockEngine` that serves
real traffic.  Strategies, the fault injector, and the observability layers
were all written against the *implicit* interface the first two share; this
module makes that contract explicit so a new kernel cannot silently drift:
the conformance test (``tests/test_engine_protocol.py``) checks every kernel
against it structurally.

Two tiers of contract:

* :data:`CORE_ENGINE_MEMBERS` — the scheduling core every kernel has had
  since the seed: the clock, ``schedule``/``schedule_now``, ``timeout``,
  ``event``, ``process``, ``run``, ``peek``, ``queued_events``.
* :class:`EngineProtocol` — the full surface the system layers require
  today.  Beyond the core it includes ``schedule_at`` (fault timetables,
  telemetry ticks), the trusted-spawn ``_spawn`` fast path (network
  delivery, transaction submission), ``events_scheduled`` (the benchmark
  base), and the ``profiler`` dispatch tap.  ``LegacyEngine`` predates
  these additions and is only driven by the microbench, so it conforms to
  the core tier alone.

Annotations across ``network/``, ``storage/``, ``txn/``, ``replication/``,
``obs/``, and ``faults/`` reference :class:`EngineProtocol` rather than the
concrete :class:`Engine`, which is what lets
:class:`~repro.service.wallclock.WallClockEngine` drive every strategy
unmodified on wall-clock time.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Generator,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.sim.events import SimEvent, Timeout
from repro.sim.process import Process

#: the scheduling core shared by every kernel, including the frozen legacy
#: one — the conformance test checks ``LegacyEngine`` against these names
CORE_ENGINE_MEMBERS = (
    "now",
    "schedule",
    "schedule_now",
    "timeout",
    "event",
    "process",
    "run",
    "peek",
    "queued_events",
)


@runtime_checkable
class EngineProtocol(Protocol):
    """Structural type of a full simulation/serving kernel.

    ``@runtime_checkable`` makes ``isinstance(engine, EngineProtocol)`` a
    member-presence check, which is exactly the "did the new kernel forget
    a method?" question the conformance test asks.
    """

    #: the clock — virtual seconds for the sim kernels, seconds since
    #: service start for the wall-clock kernel
    now: float
    #: optional :class:`~repro.obs.profiler.Profiler` dispatch tap
    profiler: Any

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` time units."""
        ...

    def schedule_now(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, FIFO after peers."""
        ...

    def schedule_at(self, at: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute time ``at``."""
        ...

    def timeout(self, delay: float) -> Timeout:
        """A (possibly cached) sleep token for ``yield``."""
        ...

    def event(self, name: str = "") -> SimEvent:
        """A fresh pending one-shot event."""
        ...

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn ``generator`` as a process (validates the argument)."""
        ...

    def _spawn(self, generator: Generator, name: str = "") -> Process:
        """Trusted-caller :meth:`process` without the generator check."""
        ...

    # ------------------------------------------------------------------ #
    # driving & introspection
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Drive the queue synchronously (wall-clock kernels may refuse)."""
        ...

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None when drained."""
        ...

    @property
    def queued_events(self) -> int:
        """Live callbacks currently scheduled."""
        ...

    @property
    def events_scheduled(self) -> int:
        """Total callbacks ever scheduled."""
        ...
