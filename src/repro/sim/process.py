"""Simulation processes: generators driven by the engine.

A :class:`Process` wraps a generator and *is itself* a
:class:`~repro.sim.events.SimEvent` — it settles when the generator returns
(success, with the generator's return value) or raises (failure).  That lets
one process wait for another simply by yielding it, which is how a
transaction coordinator waits for its participants.

Waiting is allocation-free: parking on an event appends the process to the
event's waiter list, and a plain timeout sleep is just a heap entry tagged
with the process and its current *timer generation*.  Interrupting a sleeper
bumps the generation, which invalidates the heap entry in place — the engine
drops it eagerly (see ``Engine._resume_timer``).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.exceptions import ProcessKilled, SimulationError
from repro.sim.events import TIMER_WAIT, SimEvent


class Process(SimEvent):
    """A running simulation process.

    Created via :meth:`repro.sim.engine.Engine.process`; user code never
    instantiates this directly.

    Attributes:
        generator: the underlying generator being stepped.
        waiting_on: the event this process is currently parked on, if any;
            the :data:`~repro.sim.events.TIMER_WAIT` sentinel during a plain
            timeout sleep.
    """

    __slots__ = ("generator", "engine", "waiting_on", "_timer_gen", "_timer_armed")

    def __init__(self, engine, generator: Generator[Any, Any, Any], name: str = ""):
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.engine = engine
        self.waiting_on: Optional[SimEvent] = None
        self._timer_gen = 0  # bumped to invalidate an armed sleep
        self._timer_armed = False  # a live timer entry sits in the heap

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self.pending

    def interrupt(self, exception: Optional[BaseException] = None) -> None:
        """Throw ``exception`` into the process at its current ``yield``.

        The process must be parked on an event (a timeout or a pending
        :class:`SimEvent`).  Interrupting a finished process is a no-op;
        interrupting the currently-executing process is an error — raise in
        place instead.
        """
        if self.settled:
            return
        if exception is None:
            exception = ProcessKilled(f"process {self.name!r} interrupted")
        target = self.waiting_on
        if target is None:
            raise SimulationError(
                f"cannot interrupt process {self.name!r}: it is not waiting "
                "(interrupting the running process is not allowed)"
            )
        self.waiting_on = None
        if target is TIMER_WAIT:
            # invalidate the sleep: the stale heap entry no longer matches
            # the generation, and the engine drops it without running it
            self._timer_gen += 1
            if self._timer_armed:
                self._timer_armed = False
                self.engine._timer_cancelled()
        else:
            target.remove_waiter(self)
        self.engine.schedule_now(self.engine._step, self, None, exception)

    def kill(self, exception: Optional[BaseException] = None) -> bool:
        """Best-effort :meth:`interrupt` for fault injection.

        Throws ``exception`` into the process if it is parked on an event
        and reports True.  A settled process, or one that is currently
        runnable (queued to step at this instant, e.g. freshly spawned), is
        left alone and False is returned — runnable processes must be
        stopped by data-level guards (a crashed WAL refusing writes) rather
        than by rewriting the engine's queue.
        """
        if self.settled or self.waiting_on is None:
            return False
        self.interrupt(exception)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {self.state.value}>"
