"""The discrete-event simulation engine.

The engine owns a virtual clock and a priority queue of scheduled callbacks.
Processes (generators) yield :class:`~repro.sim.events.Timeout`,
:class:`~repro.sim.events.SimEvent`, or :class:`~repro.sim.process.Process`
objects; the engine resumes them when the awaited thing happens.

Events scheduled for the same instant run in FIFO order (a monotonically
increasing sequence number breaks ties), which makes every run fully
deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.events import SimEvent, Timeout, TimerEvent
from repro.sim.process import Process


class Engine:
    """A deterministic discrete-event simulator.

    Example::

        engine = Engine()

        def worker():
            yield engine.timeout(2.0)
            return "done"

        proc = engine.process(worker())
        engine.run()
        assert proc.value == "done"
        assert engine.now == 2.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._running = False
        self._process_count = 0
        # optional repro.obs.profiler.Profiler tap on callback dispatch;
        # None keeps the hot loop at a single attribute check
        self.profiler = None

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, args)
        )

    def schedule_now(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, after queued peers."""
        self.schedule(0.0, callback, *args)

    def schedule_at(self, at: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``at``.

        Convenience for timetable-style schedules (fault plans, partitions)
        whose events are specified as absolute instants.
        """
        self.schedule(at - self.now, callback, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create a :class:`Timeout` for ``delay`` time units."""
        return Timeout(delay)

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending :class:`SimEvent`."""
        return SimEvent(name=name)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``.

        The first step happens at the current simulation instant (not
        immediately within this call), preserving causal ordering between the
        spawner and the spawned.
        """
        if not hasattr(generator, "send"):
            raise SimulationError(
                "process() requires a generator; did you forget to call the "
                "generator function?"
            )
        proc = Process(self, generator, name=name)
        self._process_count += 1
        self.schedule_now(self._step, proc, None, None)
        return proc

    def _step(
        self,
        process: Process,
        send_value: Any,
        throw_exc: Optional[BaseException],
    ) -> None:
        """Advance ``process`` by one yield, then bind its next wait target."""
        if process.settled:
            return
        process.waiting_on = None
        process._resume_callback = None
        try:
            if throw_exc is not None:
                target = process.generator.throw(throw_exc)
            else:
                target = process.generator.send(send_value)
        except StopIteration as stop:
            process.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is data
            process.fail(exc)
            return
        try:
            self._bind(process, target)
        except SimulationError as exc:
            process.generator.close()
            process.fail(exc)

    def _bind(self, process: Process, target: Any) -> None:
        """Arrange for ``process`` to resume when ``target`` is ready."""
        if isinstance(target, Timeout):
            # represent the timeout as an event so the wait is interruptible
            event = TimerEvent()
            self.schedule(target.delay, self._fire_timeout, event)
            target = event
        if isinstance(target, SimEvent):  # includes Process
            if target.settled:
                if target.exception is not None:
                    self.schedule_now(self._step, process, None, target.exception)
                else:
                    self.schedule_now(self._step, process, target.value, None)
                return

            def resume(event: SimEvent, _process=process) -> None:
                if event.exception is not None:
                    self.schedule_now(self._step, _process, None, event.exception)
                else:
                    self.schedule_now(self._step, _process, event.value, None)

            process.waiting_on = target
            process._resume_callback = resume
            target.add_callback(resume)
            return
        raise SimulationError(
            f"process {process.name!r} yielded unsupported object {target!r}; "
            "yield a Timeout, SimEvent, or Process"
        )

    def _fire_timeout(self, event: TimerEvent) -> None:
        """Settle a timeout event (skipped if its waiter was interrupted)."""
        if event.pending and not event.abandoned:
            event.succeed()

    # ------------------------------------------------------------------ #
    # the main loop
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the final value of :attr:`now`.  When ``until`` is given the
        clock is advanced exactly to it even if the last event fires earlier,
        so rate computations can divide by a known horizon.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                at, _seq, callback, args = self._queue[0]
                if (
                    args
                    and isinstance(args[0], TimerEvent)
                    and args[0].abandoned
                ):
                    # dead timer from an interrupted wait: drop it without
                    # advancing the clock
                    heapq.heappop(self._queue)
                    continue
                if until is not None and at > until:
                    break
                heapq.heappop(self._queue)
                if at < self.now:
                    raise SimulationError("event queue time went backwards")
                self.now = at
                if self.profiler is None:
                    callback(*args)
                else:
                    self.profiler.dispatch(callback, args)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None when the queue is empty."""
        return self._queue[0][0] if self._queue else None

    @property
    def queued_events(self) -> int:
        """Number of callbacks currently scheduled."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self.now:.6g} queued={len(self._queue)}>"
