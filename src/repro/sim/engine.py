"""The discrete-event simulation engine.

The engine owns a virtual clock and a priority queue of scheduled callbacks.
Processes (generators) yield :class:`~repro.sim.events.Timeout`,
:class:`~repro.sim.events.SimEvent`, or :class:`~repro.sim.process.Process`
objects; the engine resumes them when the awaited thing happens.

Events scheduled for the same instant run in FIFO order (a monotonically
increasing sequence number breaks ties), which makes every run fully
deterministic for a given seed.

Hot-path design (see docs/simulator.md, "Kernel architecture & hot path"):

* Resuming a process allocates nothing but its heap entry.  A plain timeout
  sleep is a heap entry carrying ``(process, timer_generation)`` — no
  ``TimerEvent``, no closure; an event wait parks the process on the event's
  waiter list.
* Cancelled sleeps are invalidated *in place* by bumping the process's timer
  generation.  The engine counts dead entries so :attr:`queued_events` stays
  truthful immediately, drops them at the heap head without advancing the
  clock, and compacts the heap when they pile up.
* ``Timeout`` objects are immutable and cached by delay, so the steady-state
  ``yield engine.timeout(action_time)`` pattern allocates nothing at all.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.sim.events import TIMER_WAIT, EventState, SimEvent, Timeout
from repro.sim.process import Process

_PENDING = EventState.PENDING

#: cache at most this many distinct Timeout delays (workloads use a handful)
_TIMEOUT_CACHE_LIMIT = 256

#: compact the heap when dead timer entries exceed this count *and* half the
#: physical queue — keeps run() O(live) under heavy interrupt churn
_COMPACT_MIN_DEAD = 64


class Engine:
    """A deterministic discrete-event simulator.

    Example::

        engine = Engine()

        def worker():
            yield engine.timeout(2.0)
            return "done"

        proc = engine.process(worker())
        engine.run()
        assert proc.value == "done"
        assert engine.now == 2.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0  # next sequence number == callbacks ever scheduled
        self._dead_timers = 0  # invalidated sleep entries still in the heap
        self._running = False
        self._process_count = 0
        self._timeout_cache: Dict[float, Timeout] = {}
        # pin the bound methods once: heap entries are compared to
        # self._resume_timer by identity, and a fresh bound object per
        # attribute access would never match (it also skips a rebind per push)
        self._step = self._step
        self._resume_timer = self._resume_timer
        # optional repro.obs.profiler.Profiler tap on callback dispatch;
        # None keeps the hot loop at a single attribute check
        self.profiler = None

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self.now + delay, seq, callback, args))

    def schedule_now(self, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at the current instant, after queued peers."""
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self.now, seq, callback, args))

    def schedule_at(self, at: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``at``.

        Convenience for timetable-style schedules (fault plans, partitions)
        whose events are specified as absolute instants.  ``at`` values that
        land an epsilon *before* ``now`` through float round-off (e.g. an
        accumulated tick schedule) are clamped to "now" instead of raising.
        """
        delay = at - self.now
        if delay < 0.0:
            # relative epsilon: 1e-9 is ~1e7 ULPs at clock magnitudes, far
            # beyond accumulation error but far below any real schedule step
            tolerance = 1e-9 * (abs(at) if abs(at) > 1.0 else 1.0)
            if -delay <= tolerance:
                delay = 0.0
        self.schedule(delay, callback, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create (or reuse) a :class:`Timeout` for ``delay`` time units.

        Timeouts are immutable value objects, so repeated delays — the
        steady-state ``action_time`` sleep — share one cached instance.
        """
        cache = self._timeout_cache
        cached = cache.get(delay)
        if cached is not None:
            return cached
        timeout = Timeout(delay)
        if len(cache) >= _TIMEOUT_CACHE_LIMIT:
            # cache full: hand back an uncached (still correct) Timeout —
            # workloads cycle a small delay set, so evicting would thrash
            # the delays that actually repeat
            return timeout
        cache[delay] = timeout
        return timeout

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending :class:`SimEvent`."""
        return SimEvent(name=name)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``.

        The first step happens at the current simulation instant (not
        immediately within this call), preserving causal ordering between the
        spawner and the spawned.
        """
        if not hasattr(generator, "send"):
            raise SimulationError(
                "process() requires a generator; did you forget to call the "
                "generator function?"
            )
        return self._spawn(generator, name)

    def _spawn(self, generator: Generator, name: str = "") -> Process:
        """Trusted-caller :meth:`process` without the generator check."""
        proc = Process(self, generator, name=name)
        self._process_count += 1
        self.schedule_now(self._step, proc, None, None)
        return proc

    def _step(
        self,
        process: Process,
        send_value: Any,
        throw_exc: Optional[BaseException],
    ) -> None:
        """Advance ``process`` by one yield, then bind its next wait target."""
        if process.state is not _PENDING:
            return
        process.waiting_on = None
        try:
            if throw_exc is not None:
                target = process.generator.throw(throw_exc)
            else:
                target = process.generator.send(send_value)
        except StopIteration as stop:
            process.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is data
            process.fail(exc)
            return
        try:
            self._bind(process, target)
        except SimulationError as exc:
            process.generator.close()
            process.fail(exc)

    def _bind(self, process: Process, target: Any) -> None:
        """Arrange for ``process`` to resume when ``target`` is ready."""
        if isinstance(target, Timeout):
            # a sleep is just a heap entry: (process, generation) — no event
            # object, no closure; interrupt invalidates it via the generation
            process.waiting_on = TIMER_WAIT
            process._timer_armed = True
            seq = self._seq
            self._seq = seq + 1
            heappush(
                self._queue,
                (self.now + target.delay, seq, self._resume_timer,
                 (process, process._timer_gen)),
            )
            return
        if isinstance(target, SimEvent):  # includes Process
            if target.state is not _PENDING:
                if target.exception is not None:
                    self.schedule_now(self._step, process, None, target.exception)
                else:
                    self.schedule_now(self._step, process, target.value, None)
                return
            process.waiting_on = target
            target.add_waiter(process)
            return
        raise SimulationError(
            f"process {process.name!r} yielded unsupported object {target!r}; "
            "yield a Timeout, SimEvent, or Process"
        )

    def _resume_timer(self, process: Process, generation: int) -> None:
        """A sleep deadline arrived: schedule the process's next step.

        The step is scheduled (not run inline) so that peers already queued
        at this instant keep their FIFO position — the same two-hop shape as
        the pre-refactor ``TimerEvent.succeed`` path, preserving sequence
        numbering bit-for-bit.
        """
        if generation != process._timer_gen:
            return  # stale entry that slipped past the queue-head filter
        process._timer_armed = False
        self.schedule_now(self._step, process, None, None)

    def _timer_cancelled(self) -> None:
        """Account one invalidated sleep entry; compact the heap if cheap."""
        self._dead_timers += 1
        dead = self._dead_timers
        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop invalidated sleep entries from the heap in place."""
        resume_timer = self._resume_timer
        alive = [
            entry
            for entry in self._queue
            if entry[2] is not resume_timer
            or entry[3][1] == entry[3][0]._timer_gen
        ]
        # in-place so a run() loop holding a reference keeps seeing the heap
        self._queue[:] = alive
        heapq.heapify(self._queue)
        self._dead_timers = 0

    # ------------------------------------------------------------------ #
    # the main loop
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the final value of :attr:`now`.  When ``until`` is given the
        clock is advanced exactly to it even if the last event fires earlier,
        so rate computations can divide by a known horizon.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        resume_timer = self._resume_timer
        profiler = None  # re-read each iteration: install mid-run is allowed
        try:
            while queue:
                head = queue[0]
                at = head[0]
                if head[2] is resume_timer:
                    entry_args = head[3]
                    if entry_args[1] != entry_args[0]._timer_gen:
                        # dead timer from an interrupted wait: drop it
                        # without advancing the clock
                        heappop(queue)
                        self._dead_timers -= 1
                        continue
                if until is not None and at > until:
                    break
                heappop(queue)
                if at < self.now:
                    raise SimulationError("event queue time went backwards")
                self.now = at
                profiler = self.profiler
                if profiler is None:
                    head[2](*head[3])
                else:
                    profiler.dispatch(head[2], head[3])
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def peek(self) -> Optional[float]:
        """Time of the next *live* scheduled event, or None when empty.

        Dead (cancelled-sleep) entries at the head are dropped on the way.
        """
        queue = self._queue
        resume_timer = self._resume_timer
        while queue:
            head = queue[0]
            if head[2] is resume_timer and head[3][1] != head[3][0]._timer_gen:
                heappop(queue)
                self._dead_timers -= 1
                continue
            return head[0]
        return None

    @property
    def queued_events(self) -> int:
        """Number of live callbacks currently scheduled.

        Invalidated sleep entries awaiting physical removal are excluded, so
        the count (and any telemetry gauge over it) is truthful immediately
        after an interrupt.
        """
        return len(self._queue) - self._dead_timers

    @property
    def events_scheduled(self) -> int:
        """Total callbacks ever scheduled (the benchmark's events/sec base)."""
        return self._seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self.now:.6g} queued={self.queued_events}>"
