"""Event primitives for the discrete-event engine.

Two kinds of objects can be yielded by a simulation process:

* :class:`Timeout` — resume after a fixed amount of virtual time.
* :class:`SimEvent` — a one-shot event that some other component will either
  :meth:`~SimEvent.succeed` or :meth:`~SimEvent.fail`.  Failing an event makes
  the waiting process receive the exception at its ``yield`` statement, which
  is how the deadlock detector aborts a victim that is parked on a lock queue.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

from repro.exceptions import SimulationError


class EventState(enum.Enum):
    """Lifecycle of a :class:`SimEvent`."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Timeout:
    """A request to sleep for ``delay`` units of virtual time.

    Instances are immutable value objects; the engine interprets them when a
    process yields one.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts :attr:`~EventState.PENDING` and is settled exactly once,
    either with a value (:meth:`succeed`) or an exception (:meth:`fail`).
    Settling runs all registered callbacks; callbacks added after settling are
    invoked immediately by the engine when a process yields the event.

    The class is deliberately tiny — no ``AnyOf``/``AllOf`` composition — the
    replication protocols only ever wait on single events.
    """

    __slots__ = ("state", "value", "exception", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self.state = EventState.PENDING
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []
        self.name = name

    @property
    def pending(self) -> bool:
        return self.state is EventState.PENDING

    @property
    def settled(self) -> bool:
        return self.state is not EventState.PENDING

    def succeed(self, value: Any = None) -> "SimEvent":
        """Settle the event successfully, waking all waiters with ``value``."""
        if self.settled:
            raise SimulationError(f"event {self} already settled")
        self.state = EventState.SUCCEEDED
        self.value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Settle the event with an exception.

        Every waiting process receives ``exception`` at its ``yield``.
        """
        if self.settled:
            raise SimulationError(f"event {self} already settled")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.state = EventState.FAILED
        self.exception = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback`` to run when the event settles.

        If the event is already settled the callback runs immediately.
        """
        if self.settled:
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Deregister a callback (used when a waiter is interrupted away)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return f"<SimEvent{label} {self.state.value}>"


class TimerEvent(SimEvent):
    """Internal event backing a :class:`Timeout` wait.

    When the waiting process is interrupted the timer is *abandoned*: the
    engine drops its queue entry without advancing the clock, so dead timers
    never stretch the simulation horizon.
    """

    __slots__ = ("abandoned",)

    def __init__(self, name: str = "timeout"):
        super().__init__(name=name)
        self.abandoned = False
