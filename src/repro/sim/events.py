"""Event primitives for the discrete-event engine.

Two kinds of objects can be yielded by a simulation process:

* :class:`Timeout` — resume after a fixed amount of virtual time.  Plain
  sleeps never allocate an event: the engine pushes a timer entry carrying
  the process directly (see ``Engine._bind``).
* :class:`SimEvent` — a one-shot event that some other component will either
  :meth:`~SimEvent.succeed` or :meth:`~SimEvent.fail`.  Failing an event makes
  the waiting process receive the exception at its ``yield`` statement, which
  is how the deadlock detector aborts a victim that is parked on a lock queue.

Hot-path design: a process parked on an event is recorded in the event's
*waiter list* — just the :class:`~repro.sim.process.Process` object, no
closure.  Settling walks the waiter list and schedules each process's
``_step`` directly, so the resume path allocates nothing beyond the heap
entry.  ``add_callback`` remains for non-process observers (liveness
tracking, tests) and is kept lazily ``None`` because most events never
have one.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

from repro.exceptions import SimulationError


class EventState(enum.Enum):
    """Lifecycle of a :class:`SimEvent`."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


_PENDING = EventState.PENDING


class _TimerWait:
    """Sentinel for ``Process.waiting_on`` during a plain timeout sleep.

    A sleeping process has no event object to park on — the heap entry *is*
    the wait — so ``waiting_on`` holds this singleton instead.  Interrupting
    such a process invalidates the timer via its generation counter rather
    than by removing a callback.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<timer-wait>"


TIMER_WAIT = _TimerWait()


class Timeout:
    """A request to sleep for ``delay`` units of virtual time.

    Instances are immutable value objects; the engine interprets them when a
    process yields one (and caches them by delay — see ``Engine.timeout``).
    """

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts :attr:`~EventState.PENDING` and is settled exactly once,
    either with a value (:meth:`succeed`) or an exception (:meth:`fail`).
    Settling wakes every waiting process (scheduling its next step at the
    current instant, in park order) and then runs any registered callbacks;
    callbacks added after settling are invoked immediately.

    The class is deliberately tiny — no ``AnyOf``/``AllOf`` composition — the
    replication protocols only ever wait on single events.
    """

    __slots__ = ("state", "value", "exception", "_callbacks", "_waiters", "name")

    def __init__(self, name: str = ""):
        self.state = EventState.PENDING
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: Optional[List[Callable[["SimEvent"], None]]] = None
        self._waiters: Optional[list] = None  # parked Process objects
        self.name = name

    @property
    def pending(self) -> bool:
        return self.state is _PENDING

    @property
    def settled(self) -> bool:
        return self.state is not _PENDING

    def succeed(self, value: Any = None) -> "SimEvent":
        """Settle the event successfully, waking all waiters with ``value``."""
        if self.state is not _PENDING:
            raise SimulationError(f"event {self} already settled")
        self.state = EventState.SUCCEEDED
        self.value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Settle the event with an exception.

        Every waiting process receives ``exception`` at its ``yield``.
        """
        if self.state is not _PENDING:
            raise SimulationError(f"event {self} already settled")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.state = EventState.FAILED
        self.exception = exception
        self._dispatch()
        return self

    def add_waiter(self, process) -> None:
        """Park ``process`` on this event (engine use; event must be pending)."""
        waiters = self._waiters
        if waiters is None:
            self._waiters = [process]
        else:
            waiters.append(process)

    def remove_waiter(self, process) -> None:
        """Unpark ``process`` (interrupt path); missing waiters are ignored."""
        waiters = self._waiters
        if waiters is not None:
            try:
                waiters.remove(process)
            except ValueError:
                pass

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback`` to run when the event settles.

        If the event is already settled the callback runs immediately.
        """
        if self.state is not _PENDING:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Deregister a callback (used when an observer loses interest)."""
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def _dispatch(self) -> None:
        waiters, self._waiters = self._waiters, None
        if waiters:
            exception = self.exception
            if exception is not None:
                for process in waiters:
                    engine = process.engine
                    engine.schedule_now(engine._step, process, None, exception)
            else:
                value = self.value
                for process in waiters:
                    engine = process.engine
                    engine.schedule_now(engine._step, process, value, None)
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return f"<SimEvent{label} {self.state.value}>"
