"""Deterministic discrete-event simulation kernel.

The replication systems in this library run on a small, self-contained
discrete-event engine in the style of SimPy: simulation *processes* are plain
Python generators that ``yield`` the things they wait for — a
:class:`~repro.sim.events.Timeout`, a one-shot :class:`~repro.sim.events.SimEvent`,
or another :class:`~repro.sim.process.Process` — and the
:class:`~repro.sim.engine.Engine` advances virtual time between resumptions.

Determinism matters here: the paper's analytic claims are statistical, so the
benchmarks re-run the same seeded experiment and compare measured rates with
closed-form predictions.  All randomness flows through
:class:`~repro.sim.random_source.RandomSource` substreams seeded from a single
experiment seed.

Example::

    from repro.sim import Engine

    engine = Engine()

    def ping(name, period):
        while True:
            yield engine.timeout(period)
            print(f"{engine.now:.1f}: {name}")

    engine.process(ping("a", 1.0))
    engine.run(until=3.5)
"""

from repro.sim.engine import Engine
from repro.sim.events import SimEvent, Timeout
from repro.sim.process import Process
from repro.sim.protocol import CORE_ENGINE_MEMBERS, EngineProtocol
from repro.sim.random_source import RandomSource

__all__ = [
    "CORE_ENGINE_MEMBERS",
    "Engine",
    "EngineProtocol",
    "SimEvent",
    "Timeout",
    "Process",
    "RandomSource",
]
