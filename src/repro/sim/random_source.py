"""Seeded random-number substreams for reproducible experiments.

Each logical consumer (one workload generator per node, the network delay
model, ...) gets its own named substream derived deterministically from the
experiment seed.  Adding a new consumer therefore never perturbs the draws
seen by existing ones — essential when comparing strategies run-for-run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2 rather than ``hash()`` so results are stable across Python
    processes and versions (``PYTHONHASHSEED`` does not affect it).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomSource:
    """A collection of named, independently seeded random streams.

    Example::

        rng = RandomSource(seed=42)
        arrivals = rng.stream("node-0/arrivals")
        delay = arrivals.expovariate(10.0)
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child source whose streams are independent of this one's."""
        return RandomSource(derive_seed(self.seed, f"spawn:{name}"))

    # convenience draws on an implicit "default" stream ------------------- #

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival draw from the default stream."""
        return self.stream("default").expovariate(rate)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] from the default stream."""
        return self.stream("default").randint(low, high)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items from the default stream."""
        return self.stream("default").sample(population, k)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomSource(seed={self.seed}, streams={len(self._streams)})"
