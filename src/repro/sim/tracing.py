"""Structured event tracing for simulated systems.

A :class:`Tracer` collects timestamped, categorised events — transaction
lifecycle, lock waits, deadlocks, replica traffic — so a run can be
inspected after the fact (or streamed to stdout while debugging a
protocol).  Recording is cheap and optional; systems accept a tracer and
emit into it at the same points the metrics counters tick.

Example::

    tracer = Tracer(categories={"deadlock", "reconcile"})
    system = LazyGroupSystem(..., tracer=tracer)
    ...
    print(tracer.format_events())
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    category: str
    detail: Dict[str, Any]

    def format(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] {self.category:<12} {fields}"


class Tracer:
    """Collects :class:`TraceEvent` records, with category filtering.

    Args:
        categories: record only these categories (None = record all).
        echo: print each event as it happens (interactive debugging).
        limit: ring-buffer size; oldest events are dropped beyond it.
    """

    KNOWN_CATEGORIES = (
        "begin", "commit", "abort", "wait", "deadlock", "reconcile",
        "stale", "replica", "message", "tentative", "reject", "reconnect",
        "fault", "partition", "crash", "recover",
    )

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        echo: bool = False,
        limit: int = 100_000,
    ):
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.echo = echo
        self.limit = limit
        # deque(maxlen=...) evicts the oldest event in O(1); a plain list's
        # pop(0) is O(n) per event once the buffer is full
        self._events: Deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def emit(self, time: float, category: str, **detail: Any) -> None:
        """Record one event (no-op when the category is filtered out)."""
        if not self.wants(category):
            return
        event = TraceEvent(time=time, category=category, detail=detail)
        if len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(event)
        if self.echo:
            print(event.format())

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def count(self, category: str) -> int:
        return sum(1 for e in self._events if e.category == category)

    def timeline(self, txn_id: int) -> List[TraceEvent]:
        """Every event mentioning one transaction, in time order."""
        return [e for e in self._events if e.detail.get("txn") == txn_id]

    def format_events(self, category: Optional[str] = None) -> str:
        return "\n".join(e.format() for e in self.events(category))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tracer events={len(self._events)} dropped={self.dropped}>"
