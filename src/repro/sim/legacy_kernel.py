"""Frozen pre-refactor kernel: the perf-gate baseline.

This module is a self-contained, verbatim copy of the simulation kernel as
it stood *before* the hot-path refactor (slotted events, allocation-free
resume, timer-generation sleeps).  It exists for exactly one purpose: the
kernel benchmark (``repro bench`` and
``benchmarks/test_bench_kernel_hotpath.py``) runs the same microbenchmark
against both kernels **on the same machine** and records the speedup ratio
in ``BENCH_kernel.json``.  Comparing ratios instead of raw events/sec makes
the CI perf gate machine-independent.

Do not "fix" or modernise this file — its value is that it does not change.
Nothing outside the benchmark suite may import it.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.exceptions import ProcessKilled, SimulationError


class LegacyEventState(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class LegacyTimeout:
    """Pre-refactor Timeout (identical to the live one at freeze time)."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)


class LegacySimEvent:
    """Pre-refactor SimEvent: list of callback closures, no waiter fast path."""

    __slots__ = ("state", "value", "exception", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self.state = LegacyEventState.PENDING
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["LegacySimEvent"], None]] = []
        self.name = name

    @property
    def pending(self) -> bool:
        return self.state is LegacyEventState.PENDING

    @property
    def settled(self) -> bool:
        return self.state is not LegacyEventState.PENDING

    def succeed(self, value: Any = None) -> "LegacySimEvent":
        if self.settled:
            raise SimulationError(f"event {self} already settled")
        self.state = LegacyEventState.SUCCEEDED
        self.value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "LegacySimEvent":
        if self.settled:
            raise SimulationError(f"event {self} already settled")
        self.state = LegacyEventState.FAILED
        self.exception = exception
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["LegacySimEvent"], None]) -> None:
        if self.settled:
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["LegacySimEvent"], None]) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class LegacyTimerEvent(LegacySimEvent):
    """Pre-refactor timer wait: one heap-resident event object per sleep."""

    __slots__ = ("abandoned",)

    def __init__(self, name: str = "timeout"):
        super().__init__(name=name)
        self.abandoned = False


class LegacyProcess(LegacySimEvent):
    """Pre-refactor Process with the per-resume callback slot."""

    __slots__ = ("generator", "engine", "waiting_on", "_resume_callback")

    def __init__(self, engine, generator: Generator[Any, Any, Any], name: str = ""):
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.engine = engine
        self.waiting_on: Optional[LegacySimEvent] = None
        self._resume_callback = None

    @property
    def alive(self) -> bool:
        return self.pending

    def interrupt(self, exception: Optional[BaseException] = None) -> None:
        if self.settled:
            return
        if exception is None:
            exception = ProcessKilled(f"process {self.name!r} interrupted")
        if self.waiting_on is None:
            raise SimulationError(
                f"cannot interrupt process {self.name!r}: it is not waiting"
            )
        target = self.waiting_on
        callback = self._resume_callback
        self.waiting_on = None
        self._resume_callback = None
        if callback is not None:
            target.remove_callback(callback)
        if getattr(target, "abandoned", None) is False:
            target.abandoned = True
        self.engine.schedule_now(self.engine._step, self, None, exception)


class LegacyEngine:
    """The pre-refactor engine: closure-per-resume, TimerEvent-per-sleep.

    Verbatim copy (modulo class names) of ``repro.sim.engine.Engine`` at
    freeze time.  See the module docstring for why this exists.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, tuple]] = []
        self._sequence = itertools.count()
        self._running = False
        self._process_count = 0
        self.profiler = None

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), callback, args)
        )

    def schedule_now(self, callback: Callable, *args: Any) -> None:
        self.schedule(0.0, callback, *args)

    def timeout(self, delay: float) -> LegacyTimeout:
        return LegacyTimeout(delay)

    def event(self, name: str = "") -> LegacySimEvent:
        return LegacySimEvent(name=name)

    def process(self, generator: Generator, name: str = "") -> LegacyProcess:
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        proc = LegacyProcess(self, generator, name=name)
        self._process_count += 1
        self.schedule_now(self._step, proc, None, None)
        return proc

    def _step(
        self,
        process: LegacyProcess,
        send_value: Any,
        throw_exc: Optional[BaseException],
    ) -> None:
        if process.settled:
            return
        process.waiting_on = None
        process._resume_callback = None
        try:
            if throw_exc is not None:
                target = process.generator.throw(throw_exc)
            else:
                target = process.generator.send(send_value)
        except StopIteration as stop:
            process.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001
            process.fail(exc)
            return
        try:
            self._bind(process, target)
        except SimulationError as exc:
            process.generator.close()
            process.fail(exc)

    def _bind(self, process: LegacyProcess, target: Any) -> None:
        if isinstance(target, LegacyTimeout):
            event = LegacyTimerEvent()
            self.schedule(target.delay, self._fire_timeout, event)
            target = event
        if isinstance(target, LegacySimEvent):
            if target.settled:
                if target.exception is not None:
                    self.schedule_now(self._step, process, None, target.exception)
                else:
                    self.schedule_now(self._step, process, target.value, None)
                return

            def resume(event: LegacySimEvent, _process=process) -> None:
                if event.exception is not None:
                    self.schedule_now(self._step, _process, None, event.exception)
                else:
                    self.schedule_now(self._step, _process, event.value, None)

            process.waiting_on = target
            process._resume_callback = resume
            target.add_callback(resume)
            return
        raise SimulationError(
            f"process {process.name!r} yielded unsupported object {target!r}"
        )

    def _fire_timeout(self, event: LegacyTimerEvent) -> None:
        if event.pending and not event.abandoned:
            event.succeed()

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                at, _seq, callback, args = self._queue[0]
                if (
                    args
                    and isinstance(args[0], LegacyTimerEvent)
                    and args[0].abandoned
                ):
                    heapq.heappop(self._queue)
                    continue
                if until is not None and at > until:
                    break
                heapq.heappop(self._queue)
                if at < self.now:
                    raise SimulationError("event queue time went backwards")
                self.now = at
                if self.profiler is None:
                    callback(*args)
                else:
                    self.profiler.dispatch(callback, args)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def peek(self) -> Optional[float]:
        return self._queue[0][0] if self._queue else None

    @property
    def queued_events(self) -> int:
        return len(self._queue)
