"""Rendezvous-hashed partial replication.

Each object lives at the ``k`` nodes with the highest
highest-random-weight (HRW) score ``mix(seed, oid, node)``.  Properties
that make this the right default directory for a simulator:

* **deterministic & seedable** — the assignment is a pure function of
  ``(placement_seed, oid, node)``; no directory state to replicate, no
  coordination (the SCAR-style "cheap placement" argument).
* **O(1) memory** — nothing is stored per object; replica sets are
  recomputed (and memoised per bound directory) on demand.
* **balanced** — scores are i.i.d. uniform per (oid, node), so shard sizes
  concentrate tightly around ``k · db_size / N``.
* **minimal movement** — adding a node only claims the objects where the
  new node's score enters the top ``k`` (expected fraction ``k/(N+1)``);
  all other replica sets are untouched.

The mixer is a splitmix64-style finaliser over a linear combination of the
inputs — plain 64-bit integer arithmetic, stable across Python processes
(unlike the salted built-in ``hash``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.placement.base import BoundPlacement, Placement
from repro.specs import coerce_int

_MASK = (1 << 64) - 1


def _score(seed: int, oid: int, node: int) -> int:
    """HRW weight of ``node`` for ``oid`` — splitmix64 finaliser."""
    x = (
        seed * 0x9E3779B97F4A7C15
        + oid * 0xD1B54A32D192ED03
        + node * 0x8CB92BA72F3D8DD7
        + 0x2545F4914F6CDD1D
    ) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


@dataclass(frozen=True)
class HashShardPlacement(Placement):
    """Partial replication: each object at ``replication_factor`` nodes.

    Args:
        replication_factor: copies per object (Table 2's ``k``).  Clamped
            to the node count at bind time, so a node-axis sweep can keep
            ``k=3`` fixed while ``N`` passes through 1 and 2.
        placement_seed: reshuffles the assignment without touching any
            workload randomness (same contract as ``fault_seed``).
    """

    replication_factor: int = 3
    placement_seed: int = 0

    kind = "hash"

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ConfigurationError(
                "replication_factor must be >= 1, got "
                f"{self.replication_factor}"
            )
        if self.placement_seed < 0:
            raise ConfigurationError(
                f"placement_seed must be >= 0, got {self.placement_seed}"
            )

    def bind(self, num_nodes: int, db_size: int) -> "BoundHashShard":
        return BoundHashShard(self, num_nodes, db_size)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "hash",
            "replication_factor": self.replication_factor,
            "placement_seed": self.placement_seed,
        }

    @classmethod
    def _from_dict(cls, data: Dict[str, Any]) -> "HashShardPlacement":
        return cls(
            replication_factor=int(data.get("replication_factor", 3)),
            placement_seed=int(data.get("placement_seed", 0)),
        )

    @classmethod
    def _from_items(cls, items) -> "HashShardPlacement":
        kwargs: Dict[str, int] = {}
        for key, raw in items:
            if key in ("k", "replication_factor"):
                kwargs["replication_factor"] = coerce_int(key, raw)
            elif key in ("seed", "placement_seed"):
                kwargs["placement_seed"] = coerce_int(key, raw)
            else:
                raise ConfigurationError(
                    f"unknown placement spec key {key!r}; expected one of "
                    "['k', 'seed']"
                )
        return cls(**kwargs)

    def spec(self) -> str:
        text = f"hash:k={self.replication_factor}"
        if self.placement_seed:
            text += f",seed={self.placement_seed}"
        return text


class BoundHashShard(BoundPlacement):
    """HRW directory bound to a concrete system shape."""

    def __init__(self, spec: HashShardPlacement, num_nodes: int, db_size: int):
        super().__init__(spec, num_nodes, db_size)
        self._k = min(spec.replication_factor, num_nodes)
        self._seed = spec.placement_seed
        # k == N degenerates to full replication (every node holds every
        # object); flagging it lets strategies keep the classic paths
        self.is_full = self._k >= num_nodes
        self._cache: Dict[int, Tuple[int, ...]] = {}
        self._by_node: Optional[List[List[int]]] = None

    @property
    def replication_factor(self) -> int:
        return self._k

    def replicas(self, oid: int) -> Tuple[int, ...]:
        cached = self._cache.get(oid)
        if cached is None:
            seed = self._seed
            ranked = sorted(
                range(self.num_nodes),
                key=lambda node: (-_score(seed, oid, node), node),
            )
            cached = self._cache[oid] = tuple(ranked[: self._k])
        return cached

    def master(self, oid: int) -> int:
        return self.replicas(oid)[0]

    def is_replica(self, oid: int, node_id: int) -> bool:
        return node_id in self.replicas(oid)

    def objects_at(self, node_id: int) -> Optional[Sequence[int]]:
        if self.is_full:
            return None
        if self._by_node is None:
            by_node: List[List[int]] = [[] for _ in range(self.num_nodes)]
            for oid in range(self.db_size):
                for node in self.replicas(oid):
                    by_node[node].append(oid)
            self._by_node = by_node
        return self._by_node[node_id]
