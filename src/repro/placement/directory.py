"""Directory placement: an explicit, migratable shard map.

Where :class:`~repro.placement.hash_shard.HashShardPlacement` *computes*
each replica set as a pure function of ``(seed, oid, node)``, a directory
placement *stores* one: objects group into ``S`` shards, each shard is
assigned ``k`` nodes on a seeded ring, and per-object lookups consult the
map.  Holding an explicit map buys two things a computed placement cannot
express (Sutra & Shapiro's partial-replication playbook):

* **locality** — the default ``grouping="locality"`` maps contiguous
  object-id ranges to the same shard, so objects that transact together
  (checkbook pairs, TPC-B branch groups, Zipf-hot prefixes) co-locate on
  one replica set and a multi-object transaction touches one shard's
  nodes instead of scattering across the cluster.  ``grouping="hash"``
  scatters ids instead — the ablation baseline.
* **migration** — :meth:`BoundDirectory.move` rewrites a single object's
  replica set in place (master position preserved), which the system
  layer pairs with a record transfer through the normal propagation path.

Construction is deterministic and seeded: the node ring is a Fisher–Yates
permutation driven by the same splitmix64 mixer the hash placement uses,
so a map is reproducible from ``(placement_seed, num_nodes, db_size)``
alone and costs O(S·k) memory — 10k nodes × 1M objects binds in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.placement.base import BoundPlacement, Placement
from repro.placement.hash_shard import _score
from repro.specs import coerce_int

#: lane constants decorrelate the mixer's uses (ring, rotation, grouping)
_RING_LANE = 0x51
_ROT_LANE = 0xA5
_HASH_LANE = 0x0B

_GROUPINGS = ("locality", "hash")


@dataclass(frozen=True)
class DirectoryPlacement(Placement):
    """Explicit shard-map placement with locality grouping and migration.

    Args:
        replication_factor: copies per object (Table 2's ``k``), clamped
            to the node count at bind time.
        shards: shard count ``S``; ``0`` (default) picks
            ``min(num_nodes, db_size)`` at bind time.  Clamped to
            ``db_size`` so no shard is empty.
        grouping: ``"locality"`` maps contiguous oid ranges to one shard;
            ``"hash"`` scatters oids across shards (ablation baseline).
        placement_seed: reshuffles the node ring and shard rotations
            without touching any workload randomness.
    """

    replication_factor: int = 3
    shards: int = 0
    grouping: str = "locality"
    placement_seed: int = 0

    kind = "dir"

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ConfigurationError(
                "replication_factor must be >= 1, got "
                f"{self.replication_factor}"
            )
        if self.shards < 0:
            raise ConfigurationError(
                f"shards must be >= 0 (0 means auto), got {self.shards}"
            )
        if self.grouping not in _GROUPINGS:
            raise ConfigurationError(
                f"grouping must be one of {list(_GROUPINGS)}, got "
                f"{self.grouping!r}"
            )
        if self.placement_seed < 0:
            raise ConfigurationError(
                f"placement_seed must be >= 0, got {self.placement_seed}"
            )

    def bind(self, num_nodes: int, db_size: int) -> "BoundDirectory":
        return BoundDirectory(self, num_nodes, db_size)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "dir",
            "replication_factor": self.replication_factor,
            "shards": self.shards,
            "grouping": self.grouping,
            "placement_seed": self.placement_seed,
        }

    @classmethod
    def _from_dict(cls, data: Dict[str, Any]) -> "DirectoryPlacement":
        return cls(
            replication_factor=int(data.get("replication_factor", 3)),
            shards=int(data.get("shards", 0)),
            grouping=str(data.get("grouping", "locality")),
            placement_seed=int(data.get("placement_seed", 0)),
        )

    @classmethod
    def _from_items(cls, items) -> "DirectoryPlacement":
        kwargs: Dict[str, Any] = {}
        for key, raw in items:
            if key in ("k", "replication_factor"):
                kwargs["replication_factor"] = coerce_int(key, raw)
            elif key == "shards":
                kwargs["shards"] = coerce_int(key, raw)
            elif key in ("group", "grouping"):
                kwargs["grouping"] = raw
            elif key in ("seed", "placement_seed"):
                kwargs["placement_seed"] = coerce_int(key, raw)
            else:
                raise ConfigurationError(
                    f"unknown placement spec key {key!r}; expected one of "
                    "['k', 'shards', 'group', 'seed']"
                )
        return cls(**kwargs)

    def spec(self) -> str:
        text = f"dir:k={self.replication_factor}"
        if self.shards:
            text += f",shards={self.shards}"
        if self.grouping != "locality":
            text += f",group={self.grouping}"
        if self.placement_seed:
            text += f",seed={self.placement_seed}"
        return text


class BoundDirectory(BoundPlacement):
    """The directory proper: a shard map plus per-object move overrides.

    Lookups are O(1): ``oid → shard`` is arithmetic (locality) or one mix
    (hash), ``shard → replica set`` is a list index, and migrated objects
    sit in an override table consulted first.
    """

    def __init__(self, spec: DirectoryPlacement, num_nodes: int, db_size: int):
        super().__init__(spec, num_nodes, db_size)
        self._k = min(spec.replication_factor, num_nodes)
        self._seed = spec.placement_seed
        self._grouping = spec.grouping
        requested = spec.shards or min(num_nodes, db_size)
        self._shards = max(1, min(requested, db_size))
        self.is_full = self._k >= num_nodes
        # seeded ring: Fisher–Yates over node ids, splitmix-driven so the
        # permutation is stable across processes (no stdlib RNG semantics)
        ring = list(range(num_nodes))
        for i in range(num_nodes - 1, 0, -1):
            j = _score(self._seed, i, _RING_LANE) % (i + 1)
            ring[i], ring[j] = ring[j], ring[i]
        # shard s takes k consecutive ring slots starting at s·k; rotating
        # each window by a seeded offset spreads mastership over the window
        # (plain s·k starts would confine masters to gcd(k, N) residues)
        n, k = num_nodes, self._k
        shard_map: List[Tuple[int, ...]] = []
        for s in range(self._shards):
            start = (s * k) % n
            members = [ring[(start + j) % n] for j in range(k)]
            rot = _score(self._seed, s, _ROT_LANE) % k
            shard_map.append(tuple(members[rot:] + members[:rot]))
        self._map = shard_map
        self._overrides: Dict[int, Tuple[int, ...]] = {}
        self._shard_sizes: Optional[List[int]] = None

    # -- lookups ------------------------------------------------------- #

    @property
    def replication_factor(self) -> int:
        return self._k

    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def moved(self) -> int:
        """Objects whose replica set has been rewritten by :meth:`move`."""
        return len(self._overrides)

    def shard_of(self, oid: int) -> int:
        if self._grouping == "locality":
            return oid * self._shards // self.db_size
        return _score(self._seed, oid, _HASH_LANE) % self._shards

    def shard_members(self, shard: int) -> Tuple[int, ...]:
        return self._map[shard]

    def replicas(self, oid: int) -> Tuple[int, ...]:
        override = self._overrides.get(oid)
        if override is not None:
            return override
        return self._map[self.shard_of(oid)]

    def is_replica(self, oid: int, node_id: int) -> bool:
        return node_id in self.replicas(oid)

    def objects_at(self, node_id: int) -> Optional[Sequence[int]]:
        if self.is_full:
            return None
        return [
            oid for oid in range(self.db_size)
            if node_id in self.replicas(oid)
        ]

    def _base_shard_sizes(self) -> List[int]:
        if self._shard_sizes is None:
            if self._grouping == "locality":
                # shard_of floors oid*S/db, so shard s covers
                # [ceil(s*db/S), ceil((s+1)*db/S)) — the boundaries are
                # ceilings, not floors
                db, s_count = self.db_size, self._shards
                edges = [
                    -(-(s * db) // s_count) for s in range(s_count + 1)
                ]
                self._shard_sizes = [
                    edges[s + 1] - edges[s] for s in range(s_count)
                ]
            else:
                sizes = [0] * self._shards
                for oid in range(self.db_size):
                    sizes[self.shard_of(oid)] += 1
                self._shard_sizes = sizes
        return self._shard_sizes

    def resident_counts(self) -> List[int]:
        counts = [0] * self.num_nodes
        for shard, size in enumerate(self._base_shard_sizes()):
            for node in self._map[shard]:
                counts[node] += size
        for oid, override in self._overrides.items():
            base = self._map[self.shard_of(oid)]
            for node in base:
                if node not in override:
                    counts[node] -= 1
            for node in override:
                if node not in base:
                    counts[node] += 1
        return counts

    # -- migration ----------------------------------------------------- #

    def move(self, oid: int, src: int, dst: int) -> Tuple[int, ...]:
        """Rebind ``oid`` so ``dst`` replaces ``src`` in its replica set.

        Master position is preserved: moving the master makes ``dst`` the
        new master.  The caller (``ReplicatedSystem.migrate``) is
        responsible for shipping the record itself.
        """
        if not 0 <= oid < self.db_size:
            raise ConfigurationError(
                f"oid {oid} outside the database [0, {self.db_size})"
            )
        for label, node in (("src", src), ("dst", dst)):
            if not 0 <= node < self.num_nodes:
                raise ConfigurationError(
                    f"{label} node {node} outside the placement "
                    f"[0, {self.num_nodes})"
                )
        current = self.replicas(oid)
        if src not in current:
            raise ConfigurationError(
                f"node {src} does not hold object {oid} "
                f"(replicas {current})"
            )
        if dst in current:
            raise ConfigurationError(
                f"node {dst} already holds object {oid} "
                f"(replicas {current})"
            )
        moved = tuple(dst if node == src else node for node in current)
        self._overrides[oid] = moved
        return moved
