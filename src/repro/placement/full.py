"""Full replication: every node holds every object (the paper's model).

This is the default placement and reproduces the pre-placement behaviour
exactly — including the ``oid % num_nodes`` round-robin mastership that the
master strategies used as their default ownership map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.placement.base import BoundPlacement, Placement


@dataclass(frozen=True)
class FullReplication(Placement):
    """Every object at every node (Table 2's ``Nodes × DB_Size`` copies)."""

    kind = "full"

    def bind(self, num_nodes: int, db_size: int) -> "BoundFullReplication":
        return BoundFullReplication(self, num_nodes, db_size)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "full"}

    @classmethod
    def _from_dict(cls, data: Dict[str, Any]) -> "FullReplication":
        return cls()

    @classmethod
    def _from_items(cls, items) -> "FullReplication":
        if items:
            keys = sorted({key for key, _ in items})
            raise ConfigurationError(
                f"placement kind 'full' takes no parameters, got {keys}"
            )
        return cls()

    def spec(self) -> str:
        return "full"


class BoundFullReplication(BoundPlacement):
    """The trivial directory: all nodes, round-robin masters."""

    is_full = True

    def __init__(self, spec: Placement, num_nodes: int, db_size: int):
        super().__init__(spec, num_nodes, db_size)
        self._all_nodes: Tuple[int, ...] = tuple(range(num_nodes))

    @property
    def replication_factor(self) -> int:
        return self.num_nodes

    def replicas(self, oid: int) -> Tuple[int, ...]:
        return self._all_nodes

    def master(self, oid: int) -> int:
        # matches the classic round_robin_ownership default
        return oid % self.num_nodes

    def is_replica(self, oid: int, node_id: int) -> bool:
        return 0 <= node_id < self.num_nodes

    def objects_at(self, node_id: int) -> Optional[Sequence[int]]:
        return None
