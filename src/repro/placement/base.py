"""The Placement protocol: spec objects and their bound directories.

A placement comes in two forms:

* the **spec** (:class:`Placement`): a frozen dataclass carrying only
  configuration (replication factor, seed).  It serialises to strict JSON
  (:meth:`Placement.to_dict`), parses from the CLI's compact
  ``kind:key=value`` syntax (:meth:`Placement.from_spec`, the same grammar
  as ``--faults`` via :mod:`repro.specs`), and joins the campaign cache
  key untouched.
* the **bound directory** (:class:`BoundPlacement`): the spec applied to a
  concrete ``(num_nodes, db_size)``.  This is what the replication
  strategies query on the hot path; implementations memoise their replica
  sets so lookups are O(k) after the first.

The split keeps configs hashable/picklable while letting the directory
hold caches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.exceptions import ConfigurationError
from repro.specs import parse_prefixed_spec

#: registry kind -> spec class, populated by ``Placement.__init_subclass__``
_KINDS: Dict[str, Type["Placement"]] = {}


class Placement:
    """Pure-data recipe for object→replica-set assignment.

    Subclasses are frozen dataclasses defining a class attribute ``kind``
    (the spec prefix and the ``to_dict`` discriminator) and implementing
    :meth:`bind` plus the serialisation hooks.
    """

    kind: str = "abstract"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind != "abstract":
            _KINDS[cls.kind] = cls

    # ------------------------------------------------------------------ #
    # binding
    # ------------------------------------------------------------------ #

    def bind(self, num_nodes: int, db_size: int) -> "BoundPlacement":
        """Apply this spec to a concrete system shape."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # serialisation (canonical: joins the campaign cache key)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Strict-JSON canonical form; must round-trip via from_dict."""
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Placement":
        kind = data.get("kind")
        impl = _KINDS.get(kind)
        if impl is None:
            raise ConfigurationError(
                f"unknown placement kind {kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )
        return impl._from_dict(data)

    @classmethod
    def _from_dict(cls, data: Dict[str, Any]) -> "Placement":
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # CLI spec parsing (same grammar as FaultPlan.from_spec)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_spec(cls, spec: str) -> "Placement":
        """Parse a compact CLI spec.

        Syntax: ``kind`` or ``kind:key=value,...``.  Examples::

            full
            hash:k=3
            hash:k=3,seed=7
        """
        kind, items = parse_prefixed_spec(spec, what="placement")
        impl = _KINDS.get(kind)
        if impl is None:
            raise ConfigurationError(
                f"unknown placement kind {kind!r}; expected one of "
                f"{sorted(_KINDS)}"
            )
        return impl._from_items(items)

    @classmethod
    def _from_items(cls, items: Sequence[Tuple[str, str]]) -> "Placement":
        raise NotImplementedError

    def spec(self) -> str:
        """The compact spec string this placement parses from."""
        raise NotImplementedError


class BoundPlacement:
    """A placement applied to ``(num_nodes, db_size)`` — the directory.

    Attributes:
        spec: the :class:`Placement` this directory was bound from.
        num_nodes: nodes the placement spans.  For a two-tier system this
            is the *base* tier only; mobiles hold full replicas.
        db_size: object-id space.
        is_full: True when every node holds every object — strategies use
            this to keep the classic full-replication code paths (and their
            byte-identical determinism goldens).
        replication_factor: effective copies per object (``min(k, N)``).
    """

    is_full: bool = False

    def __init__(self, spec: Placement, num_nodes: int, db_size: int):
        if num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {num_nodes}"
            )
        if db_size <= 0:
            raise ConfigurationError(f"db_size must be positive, got {db_size}")
        self.spec = spec
        self.num_nodes = num_nodes
        self.db_size = db_size

    # -- queries ------------------------------------------------------- #

    @property
    def replication_factor(self) -> int:
        raise NotImplementedError

    def replicas(self, oid: int) -> Tuple[int, ...]:
        """Node ids holding ``oid``, master first.  Deterministic."""
        raise NotImplementedError

    def master(self, oid: int) -> int:
        """The owner node for ``oid`` (always a member of its replica set)."""
        return self.replicas(oid)[0]

    def is_replica(self, oid: int, node_id: int) -> bool:
        return node_id in self.replicas(oid)

    def objects_at(self, node_id: int) -> Optional[Sequence[int]]:
        """Object ids resident at ``node_id``; ``None`` means *all*."""
        raise NotImplementedError

    def resident_counts(self) -> List[int]:
        """Resident objects per node (index = node id)."""
        out: List[int] = []
        for node_id in range(self.num_nodes):
            resident = self.objects_at(node_id)
            out.append(self.db_size if resident is None else len(resident))
        return out

    # -- migration ----------------------------------------------------- #

    def move(self, oid: int, src: int, dst: int) -> Tuple[int, ...]:
        """Rebind ``oid``'s replica set, replacing ``src`` with ``dst``.

        Only directory-backed placements support live migration — a pure
        function of ``(seed, oid, node)`` has no map to rewrite.  Returns
        the new replica set (master position preserved).
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not support live migration; "
            "computed placements have no directory to rewrite — use "
            "DirectoryPlacement (spec 'dir:...')"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} nodes={self.num_nodes} "
            f"db={self.db_size} k={self.replication_factor}>"
        )
