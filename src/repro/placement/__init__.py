"""Placement: which nodes hold a copy of each object.

Full replication — every node holds every object — is what gives the paper
its cube-law danger: work and conflict grow as nodes × objects.  A
*placement* breaks that coupling by replicating each object at only ``k``
of ``N`` nodes (Sutra & Shapiro's fault-tolerant partial replication).

A :class:`~repro.placement.base.Placement` is a pure-data recipe
(serialisable, hashable, cache-key friendly); calling
:meth:`~repro.placement.base.Placement.bind` against a concrete
``(num_nodes, db_size)`` yields the directory object the system queries:
``replicas(oid)``, ``master(oid)``, ``objects_at(node_id)``.

Three implementations:

* :class:`~repro.placement.full.FullReplication` — today's behaviour and
  the default everywhere; every node materialises the whole database.
* :class:`~repro.placement.hash_shard.HashShardPlacement` — rendezvous
  (highest-random-weight) hashing: deterministic, seedable, O(1) directory
  state, balanced within a few percent, and replica sets move minimally
  when nodes are added.
* :class:`~repro.placement.directory.DirectoryPlacement` — an explicit
  shard map on a seeded node ring: locality-aware grouping (objects that
  transact together co-locate) and live per-object migration via
  ``move(oid, src, dst)``, at O(S·k) directory state.
"""

from repro.placement.base import BoundPlacement, Placement
from repro.placement.directory import DirectoryPlacement
from repro.placement.full import FullReplication
from repro.placement.hash_shard import HashShardPlacement

__all__ = [
    "BoundPlacement",
    "Placement",
    "DirectoryPlacement",
    "FullReplication",
    "HashShardPlacement",
]
