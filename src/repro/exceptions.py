"""Exception hierarchy for the replication library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class ProcessKilled(ReproError):
    """A simulation process was externally interrupted.

    Raised *inside* a process generator when another component interrupts it
    (for example the deadlock detector aborting a waiting transaction).
    """


class TransactionError(ReproError):
    """Base class for transaction-processing failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back and its effects undone.

    Attributes:
        reason: short machine-readable cause, e.g. ``"deadlock"``.
    """

    def __init__(self, message: str = "transaction aborted", reason: str = "unknown"):
        super().__init__(message)
        self.reason = reason


class DeadlockAbort(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""

    def __init__(self, message: str = "deadlock victim"):
        super().__init__(message, reason="deadlock")


class CrashAbort(DeadlockAbort):
    """The transaction's node crashed while the transaction was in flight.

    Subclasses :class:`DeadlockAbort` so every strategy's existing abort
    path — catch, WAL undo, release locks — handles a crash without new
    ``except`` clauses.  The distinct ``reason`` stops the harness's
    deadlock-retry loop from resubmitting work at a dead node.
    """

    def __init__(self, message: str = "node crashed"):
        super(DeadlockAbort, self).__init__(message, reason="crash")


class LockError(TransactionError):
    """Invalid lock-manager usage (double release, unknown holder, ...)."""


class InvalidStateError(TransactionError):
    """An operation was attempted in an illegal transaction state."""


class ReplicationError(ReproError):
    """Base class for replication-protocol failures."""


class ReconciliationRequired(ReplicationError):
    """A lazy replica update conflicts with a committed newer version.

    Carries enough context for a reconciliation rule to decide the outcome.
    """

    def __init__(self, oid, expected_ts, found_ts, message: str | None = None):
        super().__init__(
            message
            or f"replica update for object {oid!r} expected ts {expected_ts} "
            f"but found {found_ts}"
        )
        self.oid = oid
        self.expected_ts = expected_ts
        self.found_ts = found_ts


class MasterUnavailableError(ReplicationError):
    """An update needed its object's master node but the node is unreachable."""


class ScopeViolationError(ReplicationError):
    """A tentative transaction touched data outside its allowed scope.

    The two-tier scope rule (paper section 7): a tentative transaction may only
    involve objects mastered at base nodes or at the originating mobile node.
    """


class AcceptanceFailure(ReplicationError):
    """A re-executed base transaction failed its acceptance criterion."""

    def __init__(self, criterion_name: str, detail: str = ""):
        super().__init__(
            f"acceptance criterion {criterion_name!r} failed"
            + (f": {detail}" if detail else "")
        )
        self.criterion_name = criterion_name
        self.detail = detail


class DisconnectedError(ReplicationError):
    """A network send was attempted while the link is disconnected."""


class ConfigurationError(ReproError):
    """Invalid model or experiment parameters."""
