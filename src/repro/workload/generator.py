"""Open-loop workload driver: Poisson arrivals per node.

"Each node originates a fixed number of transactions per second" — modeled
as an independent Poisson process of rate ``tps`` at every node (the open
system matching the model's constant-arrival-rate assumption; see the
section-2 footnote about lightly loaded nodes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.replication.base import ReplicatedSystem
from repro.sim.process import Process
from repro.workload.profiles import TransactionProfile


class WorkloadGenerator:
    """Drives a replicated system with the Table-2 model workload.

    Example::

        system = LazyMasterSystem(num_nodes=4, db_size=200)
        profile = uniform_update_profile(actions=4, db_size=200)
        workload = WorkloadGenerator(system, profile, tps=5.0)
        workload.start(duration=100.0)
        system.run()
        print(system.metrics)
    """

    def __init__(
        self,
        system: ReplicatedSystem,
        profile: TransactionProfile,
        tps: float,
        node_ids: Optional[Sequence[int]] = None,
    ):
        if tps <= 0:
            raise ConfigurationError(f"tps must be positive, got {tps}")
        self.system = system
        self.profile = profile
        self.tps = tps
        self.node_ids = (
            list(node_ids) if node_ids is not None else list(range(system.num_nodes))
        )
        self.submitted = 0
        self.processes: List[Process] = []

    def start(self, duration: float) -> List[Process]:
        """Spawn one arrival process per node, generating for ``duration``.

        Transactions submitted near the end may still be running when the
        engine drains; run the engine to quiescence before reading final
        convergence state.
        """
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.processes = [
            self.system.engine.process(
                self._arrivals(node_id, duration), name=f"workload@{node_id}"
            )
            for node_id in self.node_ids
        ]
        return self.processes

    def _arrivals(self, node_id: int, duration: float):
        engine = self.system.engine
        arrival_rng = self.system.rng.stream(f"arrivals/{node_id}")
        op_rng = self.system.rng.stream(f"ops/{node_id}")
        deadline = engine.now + duration
        while True:
            gap = arrival_rng.expovariate(self.tps)
            if engine.now + gap >= deadline:
                return self.submitted
            yield engine.timeout(gap)
            ops = self.profile.build(op_rng)
            self.system.submit(node_id, ops)
            self.submitted += 1
