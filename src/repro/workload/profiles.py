"""Transaction profiles: how a workload builds each transaction.

A profile turns a random stream into a list of operations.  The model's
default is ``Actions`` blind writes to distinct uniformly-chosen objects;
variants switch the operation type (the commutativity ablation) or the
access skew (hotspot sensitivity, which the paper's uniform model excludes
by assumption).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.exceptions import ConfigurationError
from repro.txn.ops import IncrementOp, Operation, WriteOp

OpFactory = Callable[[int, random.Random], Operation]


def write_op_factory(oid: int, rng: random.Random) -> Operation:
    """Blind overwrite with a random token — the non-commuting default."""
    return WriteOp(oid, rng.randrange(1_000_000))


def increment_op_factory(oid: int, rng: random.Random) -> Operation:
    """Commutative increment — the section 6/7 'semantic trick'."""
    return IncrementOp(oid, rng.choice([1, 2, 5, -1, -2]))


@dataclass
class TransactionProfile:
    """Recipe for one transaction.

    Args:
        actions: updates per transaction (Table 2's Actions).
        db_size: object-id space to draw from.
        op_factory: builds the operation for a chosen object.
        hot_fraction / hot_weight: optional hotspot skew — a ``hot_fraction``
            of the database receives ``hot_weight`` times the uniform access
            probability.  Defaults reproduce the paper's no-hotspot
            assumption.
    """

    actions: int
    db_size: int
    op_factory: OpFactory = write_op_factory
    hot_fraction: float = 0.0
    hot_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.actions <= 0:
            raise ConfigurationError("actions must be positive")
        if self.db_size < self.actions:
            raise ConfigurationError(
                f"db_size ({self.db_size}) must be >= actions ({self.actions}) "
                "for distinct-object transactions"
            )
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1)")
        if self.hot_weight < 1.0:
            raise ConfigurationError("hot_weight must be >= 1")

    def choose_oids(self, rng: random.Random) -> List[int]:
        """Distinct object ids for one transaction."""
        if self.hot_fraction == 0.0 or self.hot_weight == 1.0:
            return rng.sample(range(self.db_size), self.actions)
        hot_count = max(1, int(self.db_size * self.hot_fraction))
        chosen: set[int] = set()
        while len(chosen) < self.actions:
            hot_mass = hot_count * self.hot_weight
            cold_mass = self.db_size - hot_count
            if rng.random() < hot_mass / (hot_mass + cold_mass):
                chosen.add(rng.randrange(hot_count))
            else:
                chosen.add(hot_count + rng.randrange(self.db_size - hot_count))
        return sorted(chosen, key=lambda _: rng.random())

    def build(self, rng: random.Random) -> List[Operation]:
        """Materialize one transaction's operation list."""
        return [self.op_factory(oid, rng) for oid in self.choose_oids(rng)]


def uniform_update_profile(
    actions: int, db_size: int, commutative: bool = False
) -> TransactionProfile:
    """The model workload: ``actions`` uniform updates, write or increment."""
    return TransactionProfile(
        actions=actions,
        db_size=db_size,
        op_factory=increment_op_factory if commutative else write_op_factory,
    )


class ZipfSampler:
    """Zipfian object sampler (the YCSB/Gray generator).

    Rank ``k`` (0-based) is drawn with probability proportional to
    ``1 / (k+1)**theta``.  Setup is O(n) (one zeta sum); each sample is
    O(1), so a million-object skewed workload streams without per-object
    state — the ROADMAP's O(1)-memory generator requirement.

    ``theta`` must be in (0, 1): 0.99 is the YCSB default ("hot" skew),
    smaller values flatten toward uniform.  The low ranks are the hot
    objects; callers wanting the hotspot spread across the id space can
    permute ranks themselves.
    """

    def __init__(self, n: int, theta: float = 0.99):
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not 0.0 < theta < 1.0:
            raise ConfigurationError(
                f"theta must be in (0, 1), got {theta}"
            )
        self.n = n
        self.theta = theta
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        zeta2 = 1.0 + 0.5 ** theta  # zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n >= 2:
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - zeta2 / self._zetan
            )
        else:
            self._eta = 0.0

    def sample(self, rng: random.Random) -> int:
        """One rank in ``[0, n)``; rank 0 is the hottest object."""
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return rank if rank < self.n else self.n - 1


class ZipfProfile(TransactionProfile):
    """A :class:`TransactionProfile` with Zipf-skewed object choice.

    Replaces the uniform/hotspot ``choose_oids`` with draws from a
    :class:`ZipfSampler`; duplicates are rejection-sampled away so each
    transaction still touches ``actions`` *distinct* objects.
    """

    def __init__(
        self,
        actions: int,
        db_size: int,
        theta: float = 0.99,
        op_factory: OpFactory = increment_op_factory,
    ):
        super().__init__(actions=actions, db_size=db_size,
                         op_factory=op_factory)
        self.theta = theta
        self._zipf = ZipfSampler(db_size, theta)

    def choose_oids(self, rng: random.Random) -> List[int]:
        chosen: List[int] = []
        seen: set = set()
        # bounded rejection sampling: with actions near db_size under
        # strong skew, the unbounded loop could spin pathologically long
        # re-drawing the same hot ranks (liveness, not correctness).  After
        # the attempt budget, fill the remaining slots deterministically
        # with the hottest not-yet-seen ranks — the closest ids to what
        # the sampler would eventually have produced.
        attempts = 8 * self.actions + 32
        while len(chosen) < self.actions and attempts > 0:
            attempts -= 1
            oid = self._zipf.sample(rng)
            if oid not in seen:
                seen.add(oid)
                chosen.append(oid)
        if len(chosen) < self.actions:
            for oid in range(self.db_size):
                if oid not in seen:
                    seen.add(oid)
                    chosen.append(oid)
                    if len(chosen) == self.actions:
                        break
        return chosen
