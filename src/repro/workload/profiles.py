"""Transaction profiles: how a workload builds each transaction.

A profile turns a random stream into a list of operations.  The model's
default is ``Actions`` blind writes to distinct uniformly-chosen objects;
variants switch the operation type (the commutativity ablation) or the
access skew (hotspot sensitivity, which the paper's uniform model excludes
by assumption).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.exceptions import ConfigurationError
from repro.txn.ops import IncrementOp, Operation, WriteOp

OpFactory = Callable[[int, random.Random], Operation]


def write_op_factory(oid: int, rng: random.Random) -> Operation:
    """Blind overwrite with a random token — the non-commuting default."""
    return WriteOp(oid, rng.randrange(1_000_000))


def increment_op_factory(oid: int, rng: random.Random) -> Operation:
    """Commutative increment — the section 6/7 'semantic trick'."""
    return IncrementOp(oid, rng.choice([1, 2, 5, -1, -2]))


@dataclass
class TransactionProfile:
    """Recipe for one transaction.

    Args:
        actions: updates per transaction (Table 2's Actions).
        db_size: object-id space to draw from.
        op_factory: builds the operation for a chosen object.
        hot_fraction / hot_weight: optional hotspot skew — a ``hot_fraction``
            of the database receives ``hot_weight`` times the uniform access
            probability.  Defaults reproduce the paper's no-hotspot
            assumption.
    """

    actions: int
    db_size: int
    op_factory: OpFactory = write_op_factory
    hot_fraction: float = 0.0
    hot_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.actions <= 0:
            raise ConfigurationError("actions must be positive")
        if self.db_size < self.actions:
            raise ConfigurationError(
                f"db_size ({self.db_size}) must be >= actions ({self.actions}) "
                "for distinct-object transactions"
            )
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1)")
        if self.hot_weight < 1.0:
            raise ConfigurationError("hot_weight must be >= 1")

    def choose_oids(self, rng: random.Random) -> List[int]:
        """Distinct object ids for one transaction."""
        if self.hot_fraction == 0.0 or self.hot_weight == 1.0:
            return rng.sample(range(self.db_size), self.actions)
        hot_count = max(1, int(self.db_size * self.hot_fraction))
        chosen: set[int] = set()
        while len(chosen) < self.actions:
            hot_mass = hot_count * self.hot_weight
            cold_mass = self.db_size - hot_count
            if rng.random() < hot_mass / (hot_mass + cold_mass):
                chosen.add(rng.randrange(hot_count))
            else:
                chosen.add(hot_count + rng.randrange(self.db_size - hot_count))
        return sorted(chosen, key=lambda _: rng.random())

    def build(self, rng: random.Random) -> List[Operation]:
        """Materialize one transaction's operation list."""
        return [self.op_factory(oid, rng) for oid in self.choose_oids(rng)]


def uniform_update_profile(
    actions: int, db_size: int, commutative: bool = False
) -> TransactionProfile:
    """The model workload: ``actions`` uniform updates, write or increment."""
    return TransactionProfile(
        actions=actions,
        db_size=db_size,
        op_factory=increment_op_factory if commutative else write_op_factory,
    )
