"""The travelling-salesman scenario (paper section 7).

"If the price of an item has increased by a large amount, if the item is out
of stock, or if aisle seats are no longer available, then the salesman's
price or delivery quote must be reconciled with the customer."

The database splits into three regions: item prices, item stock levels, and
seat assignments.  A disconnected salesman quotes prices (tentative reads +
order writes), reserves stock (commutative decrements, acceptance: stock not
negative), and books seats (acceptance: the assigned seat is an aisle seat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.acceptance import (
    NonNegativeOutputs,
    OnOutputs,
    PredicateCriterion,
    PriceNotAbove,
    combine,
)
from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.replication.base import SystemSpec
from repro.txn.ops import IncrementOp, WriteOp

AISLE_LETTERS = ("C", "D")


def is_aisle(seat: object) -> bool:
    """Seat values are ``(row, letter)`` tuples; C and D are aisle seats.

    Unassigned seats (the initial integer 0) are not aisle seats.
    """
    return (
        isinstance(seat, tuple)
        and len(seat) == 3
        and seat[1] in AISLE_LETTERS
    )


def aisle_seats_only() -> PredicateCriterion:
    """"The seats must be aisle seats." """
    return PredicateCriterion(
        is_aisle, name="aisle-seats", describe="seat is not an aisle seat"
    )


@dataclass
class SalesScenario:
    """A home office (base) plus travelling salesmen (mobiles).

    Object layout (``db_size = 3 * items + seats``):

    * ``[0, items)`` — unit prices,
    * ``[items, 2*items)`` — stock levels,
    * ``[2*items, 3*items)`` — order tallies (commutative counters),
    * ``[3*items, 3*items + seats)`` — seat assignments.
    """

    items: int = 20
    seats: int = 12
    salesmen: int = 2
    initial_price: float = 100.0
    initial_stock: int = 50
    seed: int = 0
    system: TwoTierSystem = field(init=False)

    def __post_init__(self) -> None:
        if self.items <= 0 or self.seats <= 0 or self.salesmen <= 0:
            raise ConfigurationError("items, seats and salesmen must be positive")
        self.system = TwoTierSystem(
            SystemSpec(
                num_nodes=1 + self.salesmen,
                db_size=3 * self.items + self.seats,
                action_time=0.001,
                seed=self.seed,
            ),
            num_base=1,
        )
        bank = self.system.nodes[0]
        for node in self.system.nodes:
            for item in range(self.items):
                node.store.write(
                    self.price_oid(item), self.initial_price, node.store.timestamp(0)
                )
                node.store.write(
                    self.stock_oid(item), self.initial_stock, node.store.timestamp(0)
                )
        del bank

    # object-id helpers ---------------------------------------------------- #

    def price_oid(self, item: int) -> int:
        return item

    def stock_oid(self, item: int) -> int:
        return self.items + item

    def orders_oid(self, item: int) -> int:
        return 2 * self.items + item

    def seat_oid(self, seat: int) -> int:
        return 3 * self.items + seat

    def salesman_node(self, index: int) -> int:
        return 1 + index

    # scenario actions ----------------------------------------------------- #

    def quote_and_order(self, salesman: int, item: int, quantity: int):
        """Tentatively sell ``quantity`` of ``item`` at the cached price.

        Acceptance: the base-time price must not exceed the quote, and stock
        must not go negative.
        """
        if quantity <= 0:
            raise ConfigurationError("quantity must be positive")
        mobile = self.system.mobile(self.salesman_node(salesman))
        ops = [
            # "re-quote" the price: a zero increment surfaces the *current*
            # committed price as this op's output without changing it — at
            # base-execution time the output is the head office's price,
            # tentatively it is the salesman's cached quote
            IncrementOp(self.price_oid(item), 0),
            IncrementOp(self.stock_oid(item), -quantity),
            IncrementOp(self.orders_oid(item), quantity),
        ]
        criterion = combine(
            OnOutputs(PriceNotAbove(), [0]),       # the quote holds
            OnOutputs(NonNegativeOutputs(), [1]),  # stock not oversold
        )
        return mobile.submit_tentative(
            ops, criterion, label=f"order[{salesman}] item={item} qty={quantity}"
        )

    def book_seat(self, salesman: int, seat: int, row: int, letter: str,
                  passenger: str = "customer"):
        """Tentatively assign a seat; acceptance demands an aisle seat."""
        mobile = self.system.mobile(self.salesman_node(salesman))
        ops = [WriteOp(self.seat_oid(seat), (row, letter, passenger))]
        return mobile.submit_tentative(
            ops, aisle_seats_only(), label=f"seat[{salesman}] {row}{letter}"
        )

    def reprice_at_base(self, item: int, new_price: float):
        """Head office changes a price (a base transaction at node 0)."""
        return self.system.submit(
            0, [WriteOp(self.price_oid(item), new_price)], label="reprice"
        )

    def restock_at_base(self, item: int, amount: int):
        return self.system.submit(
            0, [IncrementOp(self.stock_oid(item), amount)], label="restock"
        )

    # lifecycle ------------------------------------------------------------ #

    def send_salesmen_out(self) -> None:
        for index in range(self.salesmen):
            self.system.disconnect_mobile(self.salesman_node(index))

    def salesmen_return(self) -> List:
        processes = [
            self.system.reconnect_mobile(self.salesman_node(index))
            for index in range(self.salesmen)
        ]
        self.system.run()
        return processes

    # inspection ------------------------------------------------------------ #

    def stock_at_base(self, item: int) -> float:
        return self.system.nodes[0].store.value(self.stock_oid(item))

    def orders_at_base(self, item: int) -> float:
        return self.system.nodes[0].store.value(self.orders_oid(item))

    def rejections(self, salesman: int) -> List[Tuple[str, str]]:
        mobile = self.system.mobile(self.salesman_node(salesman))
        return [(t.label, t.diagnostic) for t in mobile.rejected_transactions]
