"""A TPC-B-style banking workload.

The paper invokes the TPC benchmarks when motivating the scaled-database
regime: "one might imagine that the database size grows with the number of
nodes (as in the checkbook example earlier, or in the TPC-A, TPC-B, and
TPC-C benchmarks). More nodes, and more transactions mean more data."

This generator reproduces TPC-B's shape: each transaction updates one
**account** (huge table, effectively uncontended), one **teller** (10 per
branch), one **branch** (one per configured branch — the classic hotspot),
and appends to a **history** object.  Scaling the system adds branches —
i.e. the database grows with the load, exactly the equation-13 regime —
while the per-branch contention structure stays fixed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.exceptions import ConfigurationError
from repro.txn.ops import AppendOp, IncrementOp, Operation

TELLERS_PER_BRANCH = 10
ACCOUNTS_PER_BRANCH = 1000


@dataclass(frozen=True)
class TpcbLayout:
    """Object-id layout for a TPC-B database of ``branches`` branches.

    Layout (contiguous ranges)::

        [0, B)                      branch balances
        [B, B + 10B)                teller balances
        [11B, 11B + 1000B)          account balances
        [1011B, 1012B)              per-branch history files
    """

    branches: int

    def __post_init__(self) -> None:
        if self.branches <= 0:
            raise ConfigurationError("branches must be positive")

    @property
    def db_size(self) -> int:
        return self.branches * (1 + TELLERS_PER_BRANCH + ACCOUNTS_PER_BRANCH + 1)

    def branch_oid(self, branch: int) -> int:
        self._check(branch)
        return branch

    def teller_oid(self, branch: int, teller: int) -> int:
        self._check(branch)
        if not 0 <= teller < TELLERS_PER_BRANCH:
            raise ConfigurationError(f"teller {teller} out of range")
        return self.branches + branch * TELLERS_PER_BRANCH + teller

    def account_oid(self, branch: int, account: int) -> int:
        self._check(branch)
        if not 0 <= account < ACCOUNTS_PER_BRANCH:
            raise ConfigurationError(f"account {account} out of range")
        return (
            self.branches * (1 + TELLERS_PER_BRANCH)
            + branch * ACCOUNTS_PER_BRANCH
            + account
        )

    def history_oid(self, branch: int) -> int:
        self._check(branch)
        return (
            self.branches * (1 + TELLERS_PER_BRANCH + ACCOUNTS_PER_BRANCH)
            + branch
        )

    def _check(self, branch: int) -> None:
        if not 0 <= branch < self.branches:
            raise ConfigurationError(
                f"branch {branch} out of range [0, {self.branches})"
            )


class TpcbProfile:
    """Builds TPC-B transactions against a :class:`TpcbLayout`.

    Each transaction (the TPC-B "deposit"):

    1. increments one uniformly chosen account by ``delta``,
    2. increments its teller by ``delta``,
    3. increments its branch by ``delta``  (the contention point),
    4. appends a history record.

    15 % of transactions (per the TPC-B remote-transaction rule) pick an
    account in a *different* branch than the teller — those are the
    cross-branch transactions that make distributed masters interesting.
    """

    actions = 4  # for Table-2 bookkeeping

    def __init__(self, layout: TpcbLayout, remote_fraction: float = 0.15):
        if not 0.0 <= remote_fraction <= 1.0:
            raise ConfigurationError("remote_fraction must be in [0, 1]")
        self.layout = layout
        self.remote_fraction = remote_fraction
        self.db_size = layout.db_size
        self._sequence = 0

    def build(self, rng: random.Random) -> List[Operation]:
        layout = self.layout
        home_branch = rng.randrange(layout.branches)
        teller = rng.randrange(TELLERS_PER_BRANCH)
        if layout.branches > 1 and rng.random() < self.remote_fraction:
            other = rng.randrange(layout.branches - 1)
            account_branch = other if other < home_branch else other + 1
        else:
            account_branch = home_branch
        account = rng.randrange(ACCOUNTS_PER_BRANCH)
        delta = rng.choice([10, 20, 50, -10, -20])
        self._sequence += 1
        return [
            IncrementOp(layout.account_oid(account_branch, account), delta),
            IncrementOp(layout.teller_oid(home_branch, teller), delta),
            IncrementOp(layout.branch_oid(home_branch), delta),
            AppendOp(layout.history_oid(home_branch),
                     (self._sequence, home_branch, teller, delta)),
        ]

    def choose_oids(self, rng: random.Random) -> List[int]:
        """Interface parity with TransactionProfile (object ids only)."""
        return [op.oid for op in self.build(rng)]


def branch_balance_invariant(store, layout: TpcbLayout) -> bool:
    """TPC-B consistency condition: each branch balance equals the sum of
    its tellers' balances (every delta hits account+teller+branch alike,
    so branch == sum(tellers) as long as no update was lost)."""
    for branch in range(layout.branches):
        teller_sum = sum(
            store.value(layout.teller_oid(branch, teller))
            for teller in range(TELLERS_PER_BRANCH)
        )
        if store.value(layout.branch_oid(branch)) != teller_sum:
            return False
    return True
