"""Disconnect schedules for arbitrary replicated systems.

The lazy-group mobile analysis (equations 15-18) needs plain nodes that go
dark while their workload keeps committing locally, then flush deferred
replica updates on reconnect.  :class:`DisconnectScheduler` drives that
cycle for any :class:`~repro.replication.base.ReplicatedSystem`; the
two-tier-specific cycle (tentative work + five-step exchange) lives in
:class:`~repro.workload.mobile_cycle.MobileCycleDriver`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.replication.base import ReplicatedSystem
from repro.sim.process import Process


class DisconnectScheduler:
    """Cycles nodes through disconnect/reconnect periods.

    Args:
        system: any replicated system.
        disconnect_time: how long each dark period lasts (Table 2's
            Disconnected_Time).
        connected_time: dwell time while connected between dark periods
            (Table 2's Time_Between_Disconnects; defaults to a brief sync
            window of one tenth of the disconnect time).
        node_ids: which nodes cycle (default: all).
        stagger: offset the first disconnect of node *i* by
            ``i * stagger`` so reconnect storms don't synchronize
            (default: evenly spread across one disconnect period).
    """

    def __init__(
        self,
        system: ReplicatedSystem,
        disconnect_time: float,
        connected_time: Optional[float] = None,
        node_ids: Optional[Sequence[int]] = None,
        stagger: Optional[float] = None,
    ):
        if disconnect_time <= 0:
            raise ConfigurationError("disconnect_time must be positive")
        self.system = system
        self.disconnect_time = disconnect_time
        self.connected_time = (
            connected_time if connected_time is not None else disconnect_time / 10
        )
        if self.connected_time < 0:
            raise ConfigurationError("connected_time must be >= 0")
        self.node_ids = (
            list(node_ids) if node_ids is not None else list(range(system.num_nodes))
        )
        self.stagger = (
            stagger
            if stagger is not None
            else disconnect_time / max(1, len(self.node_ids))
        )
        self.cycles = 0
        self.processes: List[Process] = []

    def start(self, duration: float) -> List[Process]:
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.processes = [
            self.system.engine.process(
                self._cycle(node_id, index, duration),
                name=f"disconnect-cycle@{node_id}",
            )
            for index, node_id in enumerate(self.node_ids)
        ]
        return self.processes

    def _cycle(self, node_id: int, index: int, duration: float):
        engine = self.system.engine
        deadline = engine.now + duration
        offset = index * self.stagger
        if offset > 0:
            yield engine.timeout(offset)
        while engine.now < deadline:
            self.system.network.disconnect(node_id)
            yield engine.timeout(self.disconnect_time)
            self.system.network.reconnect(node_id)
            self.cycles += 1
            if self.connected_time > 0:
                yield engine.timeout(self.connected_time)
        # leave the node connected so the system can drain and converge
        return self.cycles
