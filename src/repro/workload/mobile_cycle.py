"""The day-cycle mobile workload (paper section 4).

"Suppose that the typical node is disconnected most of the time. The node
accepts and applies transactions for a day. Then, at night it connects and
downloads them to the rest of the network. At that time it also accepts
replica updates."

:class:`MobileCycleDriver` runs that schedule against a
:class:`~repro.core.protocol.TwoTierSystem`: every mobile repeatedly goes
dark for ``disconnect_time``, originating tentative transactions at rate
``tps``, then reconnects (running the five-step exchange) and immediately
disconnects again.  It is the workload behind the equation 15-18 benchmark.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.acceptance import AcceptanceCriterion, IdenticalOutputs
from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.sim.process import Process
from repro.workload.profiles import TransactionProfile


class MobileCycleDriver:
    """Disconnect/work/reconnect cycles for every mobile node.

    Args:
        system: a two-tier system.
        profile: transaction shape for tentative work.
        tps: tentative transactions per second while disconnected.
        disconnect_time: duration of each dark period.
        connected_time: dwell time between reconnect and the next departure
            (default: a negligible instant — the paper's nightly sync).
        acceptance: criterion attached to each tentative transaction.
            Default :class:`IdenticalOutputs`, the strict test whose
            rejection rate mirrors the lazy-group collision analysis.
    """

    def __init__(
        self,
        system: TwoTierSystem,
        profile: TransactionProfile,
        tps: float,
        disconnect_time: float,
        connected_time: float = 0.0,
        acceptance: Optional[AcceptanceCriterion] = None,
    ):
        if tps <= 0 or disconnect_time <= 0:
            raise ConfigurationError("tps and disconnect_time must be positive")
        self.system = system
        self.profile = profile
        self.tps = tps
        self.disconnect_time = disconnect_time
        self.connected_time = connected_time
        self.acceptance = acceptance if acceptance is not None else IdenticalOutputs()
        self.cycles_completed = 0
        self.processes: List[Process] = []

    def start(self, duration: float) -> List[Process]:
        """Spawn one cycle process per mobile node."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self.processes = [
            self.system.engine.process(
                self._cycle(mobile_id, duration), name=f"cycle@{mobile_id}"
            )
            for mobile_id in self.system.mobiles
        ]
        return self.processes

    def _cycle(self, mobile_id: int, duration: float):
        engine = self.system.engine
        mobile = self.system.mobiles[mobile_id]
        arrival_rng = self.system.rng.stream(f"mobile-arrivals/{mobile_id}")
        op_rng = self.system.rng.stream(f"mobile-ops/{mobile_id}")
        deadline = engine.now + duration
        while engine.now < deadline:
            # go dark and work tentatively
            self.system.disconnect_mobile(mobile_id)
            dark_until = min(engine.now + self.disconnect_time, deadline)
            while True:
                gap = arrival_rng.expovariate(self.tps)
                if engine.now + gap >= dark_until:
                    remaining = dark_until - engine.now
                    if remaining > 0:
                        yield engine.timeout(remaining)
                    break
                yield engine.timeout(gap)
                ops = self.profile.build(op_rng)
                yield from mobile.run_tentative(ops, self.acceptance)
            # nightly sync: the five-step exchange
            yield self.system.reconnect_mobile(mobile_id)
            self.cycles_completed += 1
            if self.connected_time > 0:
                yield engine.timeout(self.connected_time)
        return self.cycles_completed
