"""The joint checking account — the paper's running example.

"Consider a joint checking account you share with your spouse. Suppose it
has $1,000 in it. This account is replicated in three places: your
checkbook, your spouse's checkbook, and the bank's ledger."

In two-tier terms: the bank is the base node mastering every account; each
spouse is a mobile node writing checks as tentative ``IncrementOp`` debits
guarded by the non-negative-balance acceptance criterion ("The bank does
that by rejecting updates that cause an overdraft").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.acceptance import NonNegativeOutputs
from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.replication.base import SystemSpec
from repro.txn.ops import IncrementOp


@dataclass
class CheckbookScenario:
    """A bank with ``accounts`` accounts and ``holders`` mobile checkbooks.

    Attributes:
        system: the two-tier system (1 base node = the bank).
        initial_balance: opening balance of every account.
    """

    accounts: int = 10
    holders: int = 2
    initial_balance: float = 1000.0
    action_time: float = 0.001
    seed: int = 0
    system: TwoTierSystem = field(init=False)

    def __post_init__(self) -> None:
        if self.accounts <= 0 or self.holders <= 0:
            raise ConfigurationError("accounts and holders must be positive")
        self.system = TwoTierSystem(
            SystemSpec(
                num_nodes=1 + self.holders,
                db_size=self.accounts,
                action_time=self.action_time,
                seed=self.seed,
                initial_value=self.initial_balance,
            ),
            num_base=1,
        )
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # scenario actions
    # ------------------------------------------------------------------ #

    def holder_id(self, index: int) -> int:
        """Node id of the ``index``-th checkbook holder."""
        return 1 + index

    def write_check(self, holder: int, account: int, amount: float):
        """A tentative debit: returns the mobile-node process.

        The check "is in fact a tentative update being sent to the bank. The
        bank either honors the check or rejects it."
        """
        if amount <= 0:
            raise ConfigurationError("check amount must be positive")
        mobile = self.system.mobile(self.holder_id(holder))
        return mobile.submit_tentative(
            [IncrementOp(account, -amount)],
            NonNegativeOutputs(),
            label=f"check[{holder}]-{amount}",
        )

    def deposit(self, holder: int, account: int, amount: float):
        """A tentative credit (always acceptable)."""
        if amount <= 0:
            raise ConfigurationError("deposit amount must be positive")
        mobile = self.system.mobile(self.holder_id(holder))
        return mobile.submit_tentative(
            [IncrementOp(account, amount)],
            NonNegativeOutputs(),
            label=f"deposit[{holder}]+{amount}",
        )

    def disconnect_all(self) -> None:
        for index in range(self.holders):
            self.system.disconnect_mobile(self.holder_id(index))

    def clear_checks(self) -> List:
        """Everyone reconnects; the bank clears (or bounces) the checks."""
        processes = [
            self.system.reconnect_mobile(self.holder_id(index))
            for index in range(self.holders)
        ]
        self.system.run()
        return processes

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def bank_balance(self, account: int) -> float:
        """The master version at the bank."""
        return self.system.nodes[0].store.value(account)

    def book_balance(self, holder: int, account: int) -> float:
        """What the holder's checkbook shows (tentative view)."""
        return self.system.mobile(self.holder_id(holder)).read(account)

    def bounced_checks(self) -> Dict[int, List[str]]:
        """Rejected tentative transactions per holder, with diagnostics."""
        out: Dict[int, List[str]] = {}
        for index in range(self.holders):
            mobile = self.system.mobile(self.holder_id(index))
            rejected = [
                f"{t.label}: {t.diagnostic}" for t in mobile.rejected_transactions
            ]
            if rejected:
                out[index] = rejected
        return out
