"""Workload generators.

The model workload (Table 2): each node originates ``TPS`` transactions per
second; each transaction performs ``Actions`` updates on objects "chosen
uniformly from the database" with "no hotspots".
:class:`~repro.workload.generator.WorkloadGenerator` produces exactly that as
an open Poisson arrival process per node.

Scenario workloads reproduce the paper's running examples:

* :mod:`~repro.workload.checkbook` — the joint checking account from the
  introduction (debits/credits, overdraft acceptance criterion);
* :mod:`~repro.workload.sales` — the travelling salesman of section 7
  (price quotes, stock, aisle seats);
* :mod:`~repro.workload.mobile_cycle` — the day-cycle disconnect schedule of
  section 4 ("The node accepts and applies transactions for a day. Then, at
  night it connects").
"""

from repro.workload.profiles import (
    TransactionProfile,
    ZipfProfile,
    ZipfSampler,
    uniform_update_profile,
)
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "TransactionProfile",
    "ZipfProfile",
    "ZipfSampler",
    "uniform_update_profile",
    "WorkloadGenerator",
]
