"""Shape analysis and ASCII figures for the benchmarks."""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.analytic.parameters import ModelParameters
from repro.analytic.scaling import safe_fit_exponent, sweep
from repro.metrics.report import format_series, growth_caption


def render_sweep(
    fn: Callable[[ModelParameters], float],
    base: ModelParameters,
    parameter: str,
    values: Sequence,
    y_label: str,
) -> str:
    """Evaluate an analytic curve and render it as a log-scale bar figure."""
    result = sweep(fn, base, parameter, values)
    figure = format_series(result.xs, result.ys, x_label=parameter,
                           y_label=y_label)
    exponent = safe_fit_exponent(result.xs, result.ys)
    caption = ("(exponent not defined)" if exponent is None
               else growth_caption(exponent, variable=parameter))
    return f"{figure}\n{caption}"


def shape_summary(
    xs: Sequence[float], ys: Sequence[float], variable: str = "N"
) -> Tuple[Optional[float], str]:
    """Fitted exponent plus a caption, tolerant of all-zero series."""
    exponent = safe_fit_exponent(xs, ys)
    if exponent is None:
        return None, f"no growth measurable in {variable}"
    return exponent, growth_caption(exponent, variable=variable)


def shapes_agree(
    analytic_exponent: float,
    measured_exponent: Optional[float],
    tolerance: float = 0.75,
) -> bool:
    """Loose agreement test for simulated growth orders.

    Simulated rates are noisy counts of rare events; the reproduction
    criterion is the paper's *shape* (cubic vs quadratic vs linear), so a
    generous tolerance on the fitted exponent is appropriate.
    """
    if measured_exponent is None:
        return False
    return abs(analytic_exponent - measured_exponent) <= tolerance
