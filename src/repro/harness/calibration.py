"""Automatic regime calibration for rare-event measurement.

The equations predict *rates of rare events* (deadlocks are "rare^2"), so a
measurable simulation needs its contention dialed in: too dilute and a run
observes nothing; too dense and the model's linearised forms no longer
apply.  The benchmark regimes in ``benchmarks/conftest.py`` were hand
calibrated; this module automates the search so new machines, horizons, or
workload shapes can re-derive regimes instead of inheriting stale ones.

The knob is ``db_size`` (contention scales as 1/DB for waits and 1/DB^2 for
deadlocks, monotonically), searched by bisection over short probe runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentConfig, ExperimentResult, run_experiment


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a regime search."""

    params: ModelParameters
    measured_rate: float
    target_rate: float
    probes: int

    @property
    def relative_error(self) -> float:
        if self.target_rate == 0:
            return 0.0
        return abs(self.measured_rate - self.target_rate) / self.target_rate


def measure_rate(
    params: ModelParameters,
    strategy: str,
    metric: Callable[[ExperimentResult], float],
    duration: float,
    seed: int,
) -> float:
    """One probe run, returning the chosen rate."""
    result = run_experiment(
        ExperimentConfig(strategy=strategy, params=params, duration=duration,
                         seed=seed)
    )
    return metric(result)


def calibrate_db_size(
    base: ModelParameters,
    target_rate: float,
    strategy: str = "eager-group",
    metric: Callable[[ExperimentResult], float] = (
        lambda r: r.rates.deadlock_rate
    ),
    duration: float = 60.0,
    seed: int = 0,
    min_db: Optional[int] = None,
    max_db: int = 1_000_000,
    tolerance: float = 0.5,
    max_probes: int = 12,
) -> CalibrationResult:
    """Find a ``db_size`` whose measured event rate is near ``target_rate``.

    Bisection on ``log(db_size)``: the rate is monotone decreasing in the
    database size, so the search converges in ~log2(range) probes.  The
    returned regime satisfies ``|measured - target| <= tolerance x target``
    or is the best point found within ``max_probes``.

    Raises :class:`ConfigurationError` when even the smallest database
    cannot reach the target (workload too light for the horizon).
    """
    if target_rate <= 0:
        raise ConfigurationError("target_rate must be positive")
    if not 0 < tolerance < 1:
        raise ConfigurationError("tolerance must be in (0, 1)")
    low = min_db if min_db is not None else max(base.actions, 8)
    high = max_db
    if low >= high:
        raise ConfigurationError("min_db must be below max_db")

    probes = 0

    def probe(db: int) -> float:
        nonlocal probes
        probes += 1
        return measure_rate(base.with_(db_size=db), strategy, metric,
                            duration, seed)

    # rate at the densest allowed regime bounds what is achievable
    best_db, best_rate = low, probe(low)
    if best_rate < target_rate * (1 - tolerance):
        raise ConfigurationError(
            f"target rate {target_rate}/s unreachable: even db_size={low} "
            f"measures only {best_rate:.4g}/s over {duration}s"
        )

    low_db, high_db = low, high
    while probes < max_probes:
        mid = int(round((low_db * high_db) ** 0.5))  # geometric midpoint
        if mid in (low_db, high_db):
            break
        rate = probe(mid)
        if abs(rate - target_rate) < abs(best_rate - target_rate):
            best_db, best_rate = mid, rate
        if abs(rate - target_rate) <= tolerance * target_rate:
            best_db, best_rate = mid, rate
            break
        if rate > target_rate:
            low_db = mid  # too contended: grow the database
        else:
            high_db = mid
    return CalibrationResult(
        params=base.with_(db_size=best_db),
        measured_rate=best_rate,
        target_rate=target_rate,
        probes=probes,
    )
