"""Parallel experiment campaigns: declarative grids of simulation runs.

The paper's evidence is multi-point — Figure 3's scaleup curves, the
eq-12/14/18/19 danger exponents, the section-8 strategy scorecard — so one
credible reproduction needs *grids* of (strategy × parameter × seed) runs,
not single experiments.  This module is the campaign layer on top of
:func:`~repro.harness.experiment.run_experiment`:

* :class:`Campaign` declares the grid (strategies, one swept Table-2
  parameter, seed replicas) and expands it into :class:`RunSpec` cells;
* :func:`run_campaign` fans the cells out over a ``multiprocessing`` worker
  pool with per-run timeouts and crash isolation (a worker that dies marks
  *that cell* failed instead of killing the campaign), or runs them inline
  with ``jobs=0``;
* a content-hash result cache makes re-running an unchanged spec a disk
  hit instead of a re-simulation (simulations are deterministic in their
  configuration, so the config *is* the result's identity);
* :meth:`CampaignResult.aggregate` folds seed replicas into mean ± 95% CI
  per cell and attaches the analytic model's prediction for the rate the
  paper models for that strategy, so every table is measured-vs-model.

Example::

    campaign = Campaign(
        strategies=("lazy-group",),
        base_params=ModelParameters(db_size=500, tps=5),
        axis="nodes", values=(1, 2, 4, 8), seeds=(0, 1, 2, 3, 4),
        duration=30.0,
    )
    outcome = run_campaign(campaign, jobs=4, cache_dir=".repro_cache")
    print(campaign_table(outcome.aggregate()))
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import time
from collections import deque
from multiprocessing import connection as mp_connection
from pathlib import Path
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analytic import eager, lazy_group, lazy_master, two_tier
from repro.analytic.parameters import ModelParameters
from repro.analytic.scaling import safe_fit_exponent
from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    STRATEGIES,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.harness.stats import RateEstimate, estimate
from repro.metrics.counters import Metrics
from repro.metrics.rates import RateSummary
from repro.metrics.report import format_mean_ci, format_table

# run outcome states
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"

# bump when the result payload schema changes, so stale cache entries miss
# (3: sample_interval joined the config hash, extras carry telemetry series;
#  4: engine_queue gauge joined the standard telemetry series;
#  5: placement joined the config hash, extras carry resident_objects;
#  6: model tracks joined the campaign layer — sim payloads are unchanged,
#     but the bump retires caches written before the aggregate/export split
#     so every cached cell replays under the new schema;
#  7: directory placements + lazy stores — resident_objects extras grew
#     materialized_* fields and propagation pruning re-timed partial runs)
CACHE_VERSION = 7

#: the selectable analytic tracks the campaign layer can judge cells with
MODEL_TRACKS: Tuple[str, ...] = ("closed-form", "markov")

# The rate the analytic model predicts for each strategy — the "danger"
# curve of cmd_danger, used for the measured-vs-model column and the fit
# exponents (eq 12 / 14 / 19 and the two-tier base rate).
ANALYTIC_REFERENCE: Dict[str, Tuple[str, Callable[[ModelParameters], float], str]] = {
    "eager-group": ("deadlock_rate", eager.total_deadlock_rate,
                    "deadlocks/s (eq 12)"),
    "eager-master": ("deadlock_rate", eager.total_deadlock_rate,
                     "deadlocks/s (eq 12)"),
    "lazy-group": ("reconciliation_rate", lazy_group.reconciliation_rate,
                   "reconciliations/s (eq 14)"),
    "lazy-master": ("deadlock_rate", lazy_master.deadlock_rate,
                    "deadlocks/s (eq 19)"),
    "two-tier": ("deadlock_rate", two_tier.base_deadlock_rate,
                 "base deadlocks/s"),
}


# --------------------------------------------------------------------- #
# grid declaration
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunSpec:
    """One campaign cell × seed: a fully-resolved, hashable experiment."""

    config: ExperimentConfig
    axis: str = "nodes"

    @property
    def axis_value(self) -> float:
        return getattr(self.config.params, self.axis)

    def cell(self) -> Tuple[str, float]:
        """Grouping key for seed replicas of the same grid cell."""
        return (self.config.strategy, self.axis_value)

    def key(self) -> str:
        """Content hash identifying this run's result.

        Simulations are deterministic functions of their configuration, so
        the canonical JSON of the config (plus a schema version) addresses
        the cached result.  Runtime-only fields (the tracer) are excluded
        by :func:`~repro.harness.export.config_to_dict`.
        """
        from repro.harness.export import config_to_dict

        canonical = json.dumps(
            {"cache": CACHE_VERSION, "config": config_to_dict(self.config)},
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        return (
            f"{self.config.strategy} {self.axis}={self.axis_value:g} "
            f"seed={self.config.seed}"
        )


@dataclass(frozen=True)
class Campaign:
    """A declarative grid: strategy × one swept parameter × seed replicas.

    Args:
        strategies: strategy names (see :data:`STRATEGIES`).
        base_params: Table-2 parameters every cell starts from.
        axis: the :class:`ModelParameters` field the campaign sweeps.
        values: axis values; empty means "just the base parameters".
        seeds: independent replica seeds per cell.
        duration / commutative / num_base / warmup: forwarded to every
            :class:`ExperimentConfig`.
        faults: optional fault spec string (``"drop=0.05,partition=2"``,
            see :meth:`~repro.faults.plan.FaultPlan.from_spec`) applied to
            every cell; the concrete plan is materialised per cell because
            partition halves and crash targets depend on the node count.
        fault_seed: selects the fault randomness stream (workload streams
            are unaffected — see the seeding contract in
            :mod:`repro.faults.plan`).
        sample_interval: telemetry sampling window forwarded to every cell
            (0 disables).  Each run's windowed series come back serialised
            in its payload's ``extra["series"]``, surviving the worker
            process boundary; ``repro sweep --series-out`` persists them.
        placement: optional placement spec string (``"hash:k=3"``, see
            :meth:`~repro.placement.Placement.from_spec`) applied to every
            cell.  ``None`` means full replication.  The parsed spec's
            canonical dictionary joins each cell's cache key.
        model: which analytic track judges the cells — ``"closed-form"``
            (the paper's equations, the default) or ``"markov"`` (the
            transaction-state chains of
            :mod:`repro.analytic.markov_strategies`).  The track only
            changes the predicted column and fits, never the simulation,
            so it deliberately stays out of each cell's cache key.
    """

    strategies: Tuple[str, ...]
    base_params: ModelParameters
    axis: str = "nodes"
    values: Tuple[float, ...] = ()
    seeds: Tuple[int, ...] = (0,)
    duration: float = 60.0
    commutative: bool = False
    num_base: int = 1
    warmup: float = 0.0
    faults: Optional[str] = None
    fault_seed: int = 0
    sample_interval: float = 0.0
    placement: Optional[str] = None
    model: str = "closed-form"

    def __post_init__(self) -> None:
        if not self.strategies:
            raise ConfigurationError("campaign needs at least one strategy")
        for strategy in self.strategies:
            if strategy not in STRATEGIES:
                raise ConfigurationError(
                    f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
                )
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError("campaign seeds must be distinct")
        if not hasattr(self.base_params, self.axis):
            raise ConfigurationError(f"unknown model parameter {self.axis!r}")
        if self.model not in MODEL_TRACKS:
            raise ConfigurationError(
                f"unknown model track {self.model!r}; "
                f"expected one of {MODEL_TRACKS}"
            )

    @property
    def total_runs(self) -> int:
        return len(self.strategies) * max(1, len(self.values)) * len(self.seeds)

    def specs(self) -> List[RunSpec]:
        """Expand the grid, in (strategy, value, seed) order."""
        base_value = getattr(self.base_params, self.axis)
        values = self.values or (base_value,)
        integral = isinstance(base_value, int)
        placement = self._parse_placement()
        specs: List[RunSpec] = []
        for strategy in self.strategies:
            for value in values:
                value = int(value) if integral else value
                params = self.base_params.with_(**{self.axis: value})
                plan = self._plan_for(strategy, params)
                for seed in self.seeds:
                    specs.append(
                        RunSpec(
                            config=ExperimentConfig(
                                strategy=strategy,
                                params=params,
                                duration=self.duration,
                                seed=seed,
                                commutative=self.commutative,
                                num_base=self.num_base,
                                warmup=self.warmup,
                                faults=plan,
                                sample_interval=self.sample_interval,
                                placement=placement,
                            ),
                            axis=self.axis,
                        )
                    )
        return specs

    def _parse_placement(self):
        """Parse the placement spec string once for the whole grid."""
        if not self.placement:
            return None
        from repro.placement import Placement

        return Placement.from_spec(self.placement)

    def _plan_for(self, strategy: str, params: ModelParameters):
        """Materialise the fault spec for one cell's actual topology."""
        if not self.faults:
            return None
        from repro.faults.plan import FaultPlan

        num_nodes = params.nodes
        if strategy == "two-tier":
            # network ids cover base tier + mobiles
            num_nodes += self.num_base
        return FaultPlan.from_spec(
            self.faults,
            num_nodes=num_nodes,
            duration=self.duration,
            fault_seed=self.fault_seed,
        )


# --------------------------------------------------------------------- #
# outcomes
# --------------------------------------------------------------------- #


@dataclass
class RunOutcome:
    """What happened to one :class:`RunSpec`."""

    spec: RunSpec
    status: str  # OK | FAILED | TIMEOUT
    payload: Optional[Dict[str, Any]] = None  # result_to_dict() shape
    error: str = ""
    cached: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def rates(self) -> Dict[str, float]:
        if not self.ok:
            return {}
        return dict(self.payload["rates"])

    def oracle_ok(self) -> Optional[bool]:
        """The run's invariant-oracle verdict (None for failed or pre-oracle
        cached payloads)."""
        if not self.ok:
            return None
        return self.payload.get("extra", {}).get("oracle_ok")

    def to_result(self) -> ExperimentResult:
        """Rebuild a full :class:`ExperimentResult` from the payload.

        The live system does not cross process or disk boundaries; the
        reconstructed result carries ``system=None``.
        """
        if not self.ok:
            raise ConfigurationError(
                f"no result for {self.spec.label()}: {self.status} {self.error}"
            )
        return result_from_dict(self.spec.config, self.payload)


def result_from_dict(config: ExperimentConfig,
                     payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`~repro.harness.export.result_to_dict`."""
    metrics = Metrics()
    for name, value in payload["counters"].items():
        metrics.bump(name, value)
    rates = RateSummary(**payload["rates"])
    return ExperimentResult(
        config=config,
        metrics=metrics,
        rates=rates,
        horizon=rates.horizon,
        divergence=payload["divergence"],
        end_time=payload["end_time"],
        extra=dict(payload.get("extra", {})),
    )


# --------------------------------------------------------------------- #
# result cache
# --------------------------------------------------------------------- #


class ResultCache:
    """Content-addressed result store: one JSON file per spec hash."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.key()}.json"

    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        try:
            with self.path(spec).open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("cache") != CACHE_VERSION:
            return None
        return entry.get("payload")

    def put(self, spec: RunSpec, payload: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path(spec)
        # write-then-rename so concurrent campaigns never read a torn file
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump({"cache": CACHE_VERSION, "payload": payload}, fh,
                      sort_keys=True)
        tmp.replace(target)


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #


def _campaign_worker(config: ExperimentConfig, conn) -> None:
    """Child-process entry: run one experiment, ship a plain dict back."""
    from repro.harness.export import result_to_dict

    try:
        payload = result_to_dict(run_experiment(config))
        conn.send((OK, payload))
    except BaseException as exc:  # isolate *any* worker failure
        try:
            conn.send((FAILED, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class CampaignResult:
    """Every outcome of one campaign execution, plus provenance."""

    outcomes: List[RunOutcome]
    elapsed: float
    jobs: int
    campaign: Optional[Campaign] = None

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return self.total - self.cache_hits

    def results(self) -> List[ExperimentResult]:
        """Reconstructed results of every successful run."""
        return [o.to_result() for o in self.outcomes if o.ok]

    def aggregate(self, model: Optional[str] = None) -> List["CellStats"]:
        """Cell summaries under ``model`` (default: the campaign's track)."""
        if model is None:
            model = (self.campaign.model if self.campaign is not None
                     else "closed-form")
        return aggregate(self.outcomes, model=model)

    def fits(self, model: Optional[str] = None) -> List["ExponentFit"]:
        return fit_exponents(self.aggregate(model=model))

    def describe(self) -> str:
        """One status line: runs, failures, cache economics, wall clock."""
        return (
            f"{self.total} runs ({self.ok_count} ok, "
            f"{self.total - self.ok_count} failed) | "
            f"cache: {self.cache_hits}/{self.total} hits | "
            f"wall {self.elapsed:.2f}s with jobs={self.jobs}"
        )


def run_campaign(
    campaign: Union[Campaign, Iterable[RunSpec]],
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[RunOutcome, int, int], None]] = None,
) -> CampaignResult:
    """Execute a campaign (or an explicit spec list).

    Args:
        jobs: worker processes.  ``jobs >= 1`` runs every cell in its own
            ``multiprocessing`` process (crash isolation + timeouts, at
            most ``jobs`` concurrently); ``jobs = 0`` runs inline in this
            process (deterministic debugging, no isolation).
        cache_dir: content-hash result cache directory (None disables).
        timeout: per-run wall-clock limit in seconds; an overrunning
            worker is terminated and its cell marked ``timeout``.
        progress: callback ``(outcome, done, total)`` fired per completion.
    """
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    source = campaign if isinstance(campaign, Campaign) else None
    specs = campaign.specs() if source is not None else list(campaign)
    cache = ResultCache(cache_dir) if cache_dir else None
    started = time.monotonic()

    outcomes: Dict[int, RunOutcome] = {}
    total = len(specs)

    def finish(index: int, outcome: RunOutcome) -> None:
        outcomes[index] = outcome
        if outcome.ok and not outcome.cached and cache is not None:
            cache.put(outcome.spec, outcome.payload)
        if progress is not None:
            progress(outcome, len(outcomes), total)

    pending = deque()
    for index, spec in enumerate(specs):
        payload = cache.get(spec) if cache is not None else None
        if payload is not None:
            finish(index, RunOutcome(spec, OK, payload, cached=True))
        else:
            pending.append((index, spec))

    if jobs == 0:
        for index, spec in pending:
            t0 = time.monotonic()
            try:
                from repro.harness.export import result_to_dict

                payload = result_to_dict(run_experiment(spec.config))
                outcome = RunOutcome(spec, OK, payload,
                                     elapsed=time.monotonic() - t0)
            except Exception as exc:
                outcome = RunOutcome(spec, FAILED,
                                     error=f"{type(exc).__name__}: {exc}",
                                     elapsed=time.monotonic() - t0)
            finish(index, outcome)
    else:
        _run_pool(pending, jobs, timeout, finish)

    return CampaignResult(
        outcomes=[outcomes[i] for i in range(total)],
        elapsed=time.monotonic() - started,
        jobs=jobs,
        campaign=source,
    )


def _run_pool(pending, jobs: int, timeout: Optional[float], finish) -> None:
    """Keep up to ``jobs`` single-run worker processes alive until done."""
    ctx = mp.get_context()
    running: Dict[Any, Tuple[int, RunSpec, Any, float]] = {}
    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, spec = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_campaign_worker,
                    args=(spec.config, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                running[parent_conn] = (index, spec, proc, time.monotonic())

            ready = mp_connection.wait(list(running), timeout=0.05)
            now = time.monotonic()
            for conn in ready:
                index, spec, proc, t0 = running.pop(conn)
                try:
                    status, body = conn.recv()
                except (EOFError, OSError):
                    # the worker died without reporting (segfault, OOM kill,
                    # os._exit): fail this cell, keep the campaign alive
                    proc.join()
                    status, body = FAILED, (
                        f"worker crashed (exit code {proc.exitcode})"
                    )
                conn.close()
                proc.join()
                elapsed = now - t0
                if status == OK:
                    finish(index, RunOutcome(spec, OK, body, elapsed=elapsed))
                else:
                    finish(index, RunOutcome(spec, FAILED, error=body,
                                             elapsed=elapsed))

            if timeout is not None:
                for conn in [
                    c for c, (_, _, _, t0) in running.items()
                    if now - t0 > timeout
                ]:
                    index, spec, proc, t0 = running.pop(conn)
                    proc.terminate()
                    proc.join()
                    conn.close()
                    finish(index, RunOutcome(
                        spec, TIMEOUT,
                        error=f"exceeded {timeout:g}s wall-clock limit",
                        elapsed=now - t0,
                    ))
    finally:
        for conn, (_, _, proc, _) in running.items():
            proc.terminate()
            proc.join()
            conn.close()


# --------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CellStats:
    """Seed replicas of one grid cell, folded into mean ± 95% CI."""

    strategy: str
    axis: str
    value: float
    params: ModelParameters
    n: int
    failures: int
    rates: Dict[str, RateEstimate]
    reference_rate: Optional[str]
    analytic: Optional[float]
    # conjunction of the member runs' invariant-oracle verdicts (None when
    # no member reported one, e.g. every replica failed outright)
    oracle_ok: Optional[bool] = None

    @property
    def measured(self) -> Optional[float]:
        if self.reference_rate is None:
            return None
        est = self.rates.get(self.reference_rate)
        return None if est is None else est.mean

    @property
    def model_ratio(self) -> Optional[float]:
        """Simulated / analytic for the modelled rate (None when undefined)."""
        if not self.analytic or self.measured is None:
            return None
        return self.measured / self.analytic


def _estimate(name: str, samples: Sequence[float]) -> RateEstimate:
    if len(samples) >= 2:
        return estimate(name, samples)
    value = float(samples[0])
    return RateEstimate(name=name, samples=(value,), mean=value, std=0.0,
                        ci95_half_width=0.0)


def model_reference(
    strategy: str,
    params: ModelParameters,
    k: Optional[int] = None,
    model: str = "closed-form",
) -> Tuple[Optional[str], Optional[float]]:
    """``(rate name, predicted value)`` for one cell under a model track.

    ``closed-form`` uses the paper's equations (with the partial-model
    ``k/N`` override under a placement); ``markov`` solves the strategy's
    transaction-state chain.  ``(None, None)`` when the track does not
    model the strategy's danger rate.
    """
    if model not in MODEL_TRACKS:
        raise ConfigurationError(
            f"unknown model track {model!r}; expected one of {MODEL_TRACKS}"
        )
    if model == "markov":
        from repro.analytic import markov_strategies

        ref = markov_strategies.MARKOV_REFERENCE.get(strategy)
        if ref is None:
            return None, None
        return ref[0], markov_strategies.reference_rate(strategy, params, k)
    reference = ANALYTIC_REFERENCE.get(strategy)
    if reference is None:
        return None, None
    analytic = reference[1](params)
    if k is not None:
        # partial placement: the danger laws soften by k/N — use the
        # partial model's prediction where the rate depends on fan-out
        from repro.analytic import partial as partial_model

        override = partial_model.reference_rate(strategy, params, k)
        if override is not None:
            analytic = override
    return reference[0], analytic


def aggregate(
    outcomes: Sequence[RunOutcome], model: str = "closed-form"
) -> List[CellStats]:
    """Group outcomes by (strategy, axis value); summarise each rate.

    ``model`` selects the analytic track attached to each cell's
    ``analytic`` column (see :func:`model_reference`).
    """
    order: List[Tuple[str, float]] = []
    grouped: Dict[Tuple[str, float], List[RunOutcome]] = {}
    for outcome in outcomes:
        cell = outcome.spec.cell()
        if cell not in grouped:
            grouped[cell] = []
            order.append(cell)
        grouped[cell].append(outcome)

    cells: List[CellStats] = []
    for cell in order:
        members = grouped[cell]
        spec = members[0].spec
        samples: Dict[str, List[float]] = {}
        for outcome in members:
            for name, value in outcome.rates().items():
                if name == "horizon":
                    continue
                samples.setdefault(name, []).append(value)
        placement = getattr(spec.config, "placement", None)
        k = getattr(placement, "replication_factor", None)
        rate_name, analytic = model_reference(
            spec.config.strategy, spec.config.params, k, model
        )
        verdicts = [v for v in (o.oracle_ok() for o in members)
                    if v is not None]
        cells.append(
            CellStats(
                strategy=spec.config.strategy,
                axis=spec.axis,
                value=spec.axis_value,
                params=spec.config.params,
                n=sum(1 for o in members if o.ok),
                failures=sum(1 for o in members if not o.ok),
                rates={name: _estimate(name, values)
                       for name, values in samples.items()},
                reference_rate=rate_name,
                analytic=analytic,
                oracle_ok=all(verdicts) if verdicts else None,
            )
        )
    return cells


@dataclass(frozen=True)
class ExponentFit:
    """Measured vs analytic growth order of one strategy's danger rate."""

    strategy: str
    rate: str
    measured: Optional[float]
    analytic: Optional[float]

    def describe(self) -> str:
        measured = "n/a" if self.measured is None else f"N^{self.measured:.1f}"
        analytic = "n/a" if self.analytic is None else f"N^{self.analytic:.1f}"
        return (f"{self.strategy} {self.rate}: measured {measured}, "
                f"analytic {analytic}")


def fit_exponents(cells: Sequence[CellStats]) -> List[ExponentFit]:
    """Fit the modelled rate's growth order along the axis, per strategy.

    Model-track agnostic: each cell already carries the reference rate and
    prediction its campaign's track assigned (see :func:`aggregate`).
    """
    by_strategy: Dict[str, List[CellStats]] = {}
    for cell in cells:
        by_strategy.setdefault(cell.strategy, []).append(cell)
    fits: List[ExponentFit] = []
    for strategy, group in by_strategy.items():
        rate_name = group[0].reference_rate
        if rate_name is None or len(group) < 2:
            continue
        xs = [cell.value for cell in group]
        measured = [cell.measured or 0.0 for cell in group]
        analytic = [cell.analytic or 0.0 for cell in group]
        fits.append(
            ExponentFit(
                strategy=strategy,
                rate=rate_name,
                measured=safe_fit_exponent(xs, measured),
                analytic=safe_fit_exponent(xs, analytic),
            )
        )
    return fits


# --------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------- #


def campaign_table(cells: Sequence[CellStats], title: str = "") -> str:
    """The campaign scorecard: one row per cell, mean ± CI, model delta."""
    rows: List[List[Any]] = []
    for cell in cells:
        commit = cell.rates.get("commit_rate")
        measured = (cell.rates.get(cell.reference_rate)
                    if cell.reference_rate else None)
        rows.append([
            cell.strategy,
            cell.value,
            cell.n,
            cell.failures,
            "-" if commit is None else format_mean_ci(
                commit.mean, commit.ci95_half_width),
            cell.reference_rate or "-",
            "-" if measured is None else format_mean_ci(
                measured.mean, measured.ci95_half_width),
            "-" if cell.analytic is None else cell.analytic,
            "-" if cell.model_ratio is None else f"{cell.model_ratio:.2f}",
            "-" if cell.oracle_ok is None else ("ok" if cell.oracle_ok
                                                else "FAIL"),
        ])
    axis = cells[0].axis if cells else "value"
    return format_table(
        ["strategy", axis, "n", "fail", "commit/s (±95% CI)",
         "modelled rate", "measured (±95% CI)", "analytic", "sim/model",
         "oracle"],
        rows,
        title=title,
    )
