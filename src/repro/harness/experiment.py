"""Declarative experiments: config in, measured rates out."""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Type

from repro.analytic.parameters import ModelParameters
from repro.core.acceptance import (
    AcceptanceCriterion,
    AlwaysAccept,
    IdenticalOutputs,
)
from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.faults.oracle import evaluate as evaluate_oracle
from repro.faults.plan import FaultPlan
from repro.metrics.counters import Metrics
from repro.metrics.rates import RateSummary, summarize
from repro.placement import Placement
from repro.replication.base import ReplicatedSystem, SystemSpec
from repro.replication.deferred_update import DeferredUpdateSystem
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.replication.scar import ScarSystem
from repro.replication.reconciliation import ReconciliationRule
from repro.workload.generator import WorkloadGenerator
from repro.workload.mobile_cycle import MobileCycleDriver
from repro.workload.profiles import uniform_update_profile
from repro.workload.schedule import DisconnectScheduler

# The single strategy registry: every place that needs "name -> system
# class" (the CLI, the campaign runner, the verifier) looks here instead of
# keeping a private map.
STRATEGY_CLASSES: Dict[str, Type[ReplicatedSystem]] = {
    "deferred-update": DeferredUpdateSystem,
    "eager-group": EagerGroupSystem,
    "eager-master": EagerMasterSystem,
    "lazy-group": LazyGroupSystem,
    "lazy-master": LazyMasterSystem,
    "scar": ScarSystem,
    "two-tier": TwoTierSystem,
}

#: strategies whose recorded histories are *expected* to serialize.  The
#: asynchronous strategies interleave replica installs with user reads, so
#: the conflict-graph check is informative but not an invariant for them.
SERIALIZABLE_STRATEGIES = frozenset(
    {"eager-group", "eager-master", "two-tier", "lazy-master"}
)

STRATEGIES = tuple(sorted(STRATEGY_CLASSES))


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation experiment.

    Args:
        strategy: one of :data:`STRATEGIES`.
        params: the Table-2 model parameters.  ``params.disconnect_time > 0``
            adds a disconnect schedule: every node cycles dark/connected
            (lazy-group), or every *mobile* node runs tentative day-cycles
            (two-tier).
        duration: workload generation horizon in virtual seconds.
        seed: master random seed.
        commutative: use increment operations instead of blind writes.
        num_base: base nodes for two-tier (mobiles = params.nodes).
        acceptance: two-tier acceptance criterion (defaults to the strict
            IdenticalOutputs for non-commutative work, AlwaysAccept for
            commutative).
        rule: lazy-group reconciliation rule override.
        warmup: virtual seconds of workload to run *before* measurement
            starts; counters accumulated during warmup are excluded from the
            reported rates, so transients (cold queues, empty lock tables)
            do not bias steady-state measurements.
        record_history: record every read/write into a
            :class:`~repro.verify.history.History` so the schedule can be
            certified afterwards (the result keeps the live system).
        retry_deadlocks: resubmit deadlock victims until they commit.
            ``None`` keeps each strategy's own default (two-tier bases
            retry, everything else surfaces deadlocks as failures).
        propagate_ops: lazy-group operation shipping override.  ``None``
            follows ``commutative``; an explicit value decouples the
            workload semantics from the propagation mode.
        faults: optional :class:`~repro.faults.plan.FaultPlan` executed by a
            :class:`~repro.faults.injector.FaultInjector` during the run.
            Fault randomness comes from a forked seed stream, so two
            configs differing only in ``faults`` offer identical load.
            Every run (faulted or not) ends with an invariant-oracle pass
            whose verdict lands in ``result.extra["oracle_ok"]``.
        tracer: optional :class:`~repro.sim.tracing.Tracer` threaded into
            the system (instrumentation only — excluded from provenance
            dictionaries and cache keys).
        sample_interval: telemetry sampling window in virtual seconds.
            ``0`` (the default) disables sampling entirely; when positive a
            :class:`~repro.obs.samplers.Telemetry` handle is created, probes
            registered by the system and its network/lock-manager/injector
            fire every window, and the resulting series land (serialised) in
            ``result.extra["series"]``.
        telemetry: pre-built telemetry handle to use instead of creating
            one; implies sampling even when ``sample_interval`` is 0 (the
            handle carries its own interval).  Instrumentation only, like
            ``tracer``.
        profiler: optional :class:`~repro.obs.profiler.Profiler` installed
            on the engine for the whole run (wall-clock hot-spot
            bucketing).  Instrumentation only, like ``tracer``.
        placement: optional :class:`~repro.placement.Placement` spec.
            ``None`` means full replication (the paper's model); a partial
            placement (``HashShardPlacement.from_spec("hash:k=3")``) shards
            every node's store to its replica set.  Joins the campaign
            cache key via its canonical ``to_dict``.  For two-tier the
            placement spans the base tier only.
        eager_stores: materialise every resident record up front under a
            partial placement instead of lazily on first touch (the
            pre-lazy behaviour).  Observationally identical to the lazy
            default — the parity tests pin byte-identical fingerprints —
            so this is a memory/allocation trade-off, not a semantic knob.
    """

    strategy: str
    params: ModelParameters
    duration: float = 100.0
    seed: int = 0
    commutative: bool = False
    num_base: int = 1
    acceptance: Optional[AcceptanceCriterion] = None
    rule: Optional[ReconciliationRule] = None
    warmup: float = 0.0
    record_history: bool = False
    retry_deadlocks: Optional[bool] = None
    propagate_ops: Optional[bool] = None
    faults: Optional[FaultPlan] = None
    tracer: Optional[Any] = None
    sample_interval: float = 0.0
    telemetry: Optional[Any] = None
    profiler: Optional[Any] = None
    placement: Optional[Placement] = None
    eager_stores: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.num_base <= 0:
            raise ConfigurationError("num_base must be positive")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be >= 0")
        if self.sample_interval < 0:
            raise ConfigurationError("sample_interval must be >= 0")
        if self.placement is not None and not isinstance(
            self.placement, Placement
        ):
            raise ConfigurationError(
                "placement must be a Placement spec "
                f"(e.g. Placement.from_spec('hash:k=3')), got {self.placement!r}"
            )


@dataclass
class ExperimentResult:
    """Everything measured from one run."""

    config: ExperimentConfig
    metrics: Metrics
    rates: RateSummary
    horizon: float
    divergence: int
    end_time: float
    extra: Dict[str, Any] = field(default_factory=dict)
    # The live system, for post-run inspection (history certification,
    # trace samples).  Dropped when results cross a process boundary.
    system: Optional[ReplicatedSystem] = field(
        default=None, repr=False, compare=False
    )

    @property
    def deadlock_rate(self) -> float:
        return self.rates.deadlock_rate

    @property
    def wait_rate(self) -> float:
        return self.rates.wait_rate

    @property
    def reconciliation_rate(self) -> float:
        return self.rates.reconciliation_rate


def _make_telemetry(config: ExperimentConfig):
    """The telemetry handle this config asks for, or None.

    An explicit ``config.telemetry`` wins; otherwise a fresh handle is
    created when ``sample_interval > 0``.  Imported lazily so the harness
    stays importable even if the obs subsystem is trimmed out.
    """
    if config.telemetry is not None:
        return config.telemetry
    if config.sample_interval > 0:
        from repro.obs.samplers import Telemetry

        return Telemetry(interval=config.sample_interval)
    return None


def build_system(
    config: ExperimentConfig, telemetry: Optional[Any] = None
) -> ReplicatedSystem:
    """Construct the configured replication system (without workload).

    ``telemetry`` overrides the config's handle (``run_experiment`` passes
    the one it created from ``sample_interval``).
    """
    p = config.params
    cls = STRATEGY_CLASSES[config.strategy]
    # two-tier counts p.nodes as mobiles on top of config.num_base base
    # nodes; everyone else runs p.nodes peers
    num_nodes = (
        config.num_base + p.nodes if config.strategy == "two-tier" else p.nodes
    )
    spec = SystemSpec(
        num_nodes=num_nodes,
        db_size=p.db_size,
        action_time=p.action_time,
        message_delay=p.message_delay,
        seed=config.seed,
        # tri-state: None lets two-tier default its base tier to retrying
        # while the peer strategies surface deadlocks
        retry_deadlocks=config.retry_deadlocks,
        record_history=config.record_history,
        tracer=config.tracer,
        telemetry=telemetry if telemetry is not None else _make_telemetry(config),
        placement=config.placement,
        faults=config.faults,
        eager_stores=config.eager_stores,
    )
    if config.strategy == "lazy-group":
        propagate = (
            config.commutative
            if config.propagate_ops is None
            else config.propagate_ops
        )
        return cls(spec, rule=config.rule, propagate_ops=propagate)
    if config.strategy == "two-tier":
        return cls(spec, num_base=config.num_base)
    return cls(spec)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build, drive, drain, and measure one experiment.

    The measurement horizon is the workload duration; the engine then runs
    to quiescence so that all lazy propagation lands before convergence is
    checked (rates still divide by the duration, matching the model's
    steady-state quantities).  With ``warmup > 0`` the workload runs for
    ``warmup + duration`` and the counters accumulated before the warmup
    deadline are subtracted from the reported metrics.
    """
    p = config.params
    telemetry = _make_telemetry(config)
    system = build_system(config, telemetry=telemetry)
    if config.profiler is not None:
        config.profiler.install(system.engine)

    # Two-tier always uses state-dependent increment operations: a blind
    # write's outputs are state-independent, which would make the strict
    # IdenticalOutputs acceptance test vacuously true.  The ``commutative``
    # flag then selects the *acceptance semantics*: transactions designed to
    # commute accept any base outcome (zero reconciliations, the paper's
    # claim); non-commuting semantics demand identical outputs, so base
    # rejections track the collision rate.
    profile = uniform_update_profile(
        actions=p.actions,
        db_size=p.db_size,
        commutative=config.commutative or config.strategy == "two-tier",
    )

    generation_horizon = config.warmup + config.duration

    driver: Any = None
    if config.strategy == "two-tier":
        acceptance = config.acceptance
        if acceptance is None:
            acceptance = AlwaysAccept() if config.commutative else IdenticalOutputs()
        if p.disconnect_time > 0:
            driver = MobileCycleDriver(
                system,
                profile,
                tps=p.tps,
                disconnect_time=p.disconnect_time,
                connected_time=p.time_between_disconnects,
                acceptance=acceptance,
            )
            driver.start(generation_horizon)
        else:
            # connected operation: mobiles submit base transactions directly
            driver = WorkloadGenerator(
                system, profile, tps=p.tps, node_ids=list(system.mobiles)
            )
            driver.start(generation_horizon)
    else:
        driver = WorkloadGenerator(system, profile, tps=p.tps)
        driver.start(generation_horizon)
        if p.disconnect_time > 0:
            if config.strategy != "lazy-group":
                raise ConfigurationError(
                    "disconnect schedules apply to lazy-group and two-tier "
                    f"strategies, not {config.strategy!r}"
                )
            scheduler = DisconnectScheduler(
                system,
                disconnect_time=p.disconnect_time,
                connected_time=p.time_between_disconnects or None,
            )
            scheduler.start(generation_horizon)

    if telemetry is not None:
        # bounded tick pre-schedule: a self-rescheduling tick would keep the
        # drain phase (run() with no horizon) alive forever
        telemetry.schedule(system.engine, generation_horizon)

    if config.warmup > 0:
        system.run(until=config.warmup)
        baseline = system.metrics.as_dict()
    else:
        baseline = None
    system.run()

    metrics = system.metrics
    if baseline is not None:
        steady = Metrics()
        for name, value in metrics.as_dict().items():
            steady.bump(name, value - baseline.get(name, 0))
        metrics = steady

    # every run — faulted or not — ends with the invariant-oracle pass, so
    # campaign cells can report correctness alongside their rates
    verdict = evaluate_oracle(
        system,
        plan=config.faults,
        expect_serializable=(
            config.record_history
            and config.strategy in SERIALIZABLE_STRATEGIES
        ),
    )

    extra: Dict[str, Any] = {
        "base_divergence": (
            system.base_divergence()
            if isinstance(system, TwoTierSystem)
            else None
        ),
        "oracle_ok": verdict.ok,
        "oracle_expected_convergence": verdict.expected_convergence,
        "oracle_failures": verdict.failures or None,
        "submitted": getattr(driver, "submitted", None),
    }
    # max/mean/total report the placement's *nominal* shard sizes (stable
    # across eager and lazy stores, pinned by the partial goldens); the
    # materialized_* fields count records the run actually allocated —
    # under lazy stores that is only what transactions touched
    resident = system.nominal_resident_counts()
    materialized = system.materialized_counts()
    extra["resident_objects"] = {
        "max": max(resident),
        "mean": sum(resident) / len(resident),
        "total": sum(resident),
        "materialized_max": max(materialized),
        "materialized_total": sum(materialized),
        "db_size": p.db_size,
        "replication_factor": system.placement.replication_factor,
    }
    if system.fault_injector is not None:
        extra["fault_stats"] = system.fault_injector.stats()
    if telemetry is not None:
        # serialised (not the live handle) so results survive the process
        # boundary the campaign pool sends them across
        extra["series"] = telemetry.to_dict()
    if config.tracer is not None and config.tracer.dropped > 0:
        extra["trace_dropped"] = config.tracer.dropped
        print(
            f"warning: tracer ring buffer overflowed; "
            f"{config.tracer.dropped} events dropped (raise Tracer(limit=...))",
            file=sys.stderr,
        )

    return ExperimentResult(
        config=config,
        metrics=metrics,
        rates=summarize(metrics, config.duration),
        horizon=config.duration,
        divergence=system.divergence(),
        end_time=system.engine.now,
        extra=extra,
        system=system,
    )
