"""Analytic-versus-simulated comparisons and the strategy scorecard."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytic.parameters import ModelParameters
from repro.harness.experiment import (
    STRATEGIES,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.metrics.report import format_table


@dataclass
class ComparisonRow:
    """One sweep point: the axis value, the model's rate, the measured rate."""

    x: float
    analytic: float
    simulated: float

    @property
    def ratio(self) -> Optional[float]:
        if self.analytic == 0:
            return None
        return self.simulated / self.analytic


def analytic_vs_simulated(
    strategy: str,
    base_params: ModelParameters,
    parameter: str,
    values: Sequence,
    analytic_fn: Callable[[ModelParameters], float],
    measure: Callable[[ExperimentResult], float],
    duration: float = 100.0,
    seed: int = 0,
    **config_kwargs,
) -> List[ComparisonRow]:
    """Sweep one Table-2 parameter, comparing a model curve to measurement.

    ``analytic_fn`` maps parameters to the model's predicted rate;
    ``measure`` extracts the corresponding measured rate from a result
    (e.g. ``lambda r: r.deadlock_rate``).
    """
    rows: List[ComparisonRow] = []
    for value in values:
        params = base_params.with_(**{parameter: value})
        predicted = analytic_fn(params)
        result = run_experiment(
            ExperimentConfig(
                strategy=strategy,
                params=params,
                duration=duration,
                seed=seed,
                **config_kwargs,
            )
        )
        rows.append(
            ComparisonRow(x=float(value), analytic=predicted,
                          simulated=measure(result))
        )
    return rows


def comparison_table(rows: Sequence[ComparisonRow], x_label: str,
                     rate_label: str, title: str = "") -> str:
    """Render comparison rows as the table a benchmark prints."""
    body = []
    for row in rows:
        body.append(
            [row.x, row.analytic, row.simulated,
             "-" if row.ratio is None else f"{row.ratio:.2f}"]
        )
    return format_table(
        [x_label, f"analytic {rate_label}", f"simulated {rate_label}",
         "sim/analytic"],
        body,
        title=title,
    )


def strategy_comparison(
    params: ModelParameters,
    strategies: Optional[Sequence[str]] = None,
    duration: float = 100.0,
    seed: int = 0,
    commutative: bool = False,
    jobs: int = 0,
    cache_dir=None,
) -> Dict[str, ExperimentResult]:
    """Run every strategy at identical load — the section 8 summary,
    quantified.  Returns strategy -> result.

    ``strategies`` defaults to the whole registry
    (:data:`~repro.harness.experiment.STRATEGIES`), so newly registered
    strategies join the scorecard automatically.

    Runs through the campaign runner: ``jobs`` worker processes fan the
    strategies out (0 = inline), ``cache_dir`` enables the content-hash
    result cache.  Results are identical either way — each run is a
    deterministic function of its configuration.
    """
    from repro.harness.campaign import Campaign, run_campaign

    campaign = Campaign(
        strategies=tuple(strategies) if strategies is not None else STRATEGIES,
        base_params=params,
        seeds=(seed,),
        duration=duration,
        commutative=commutative,
    )
    outcome = run_campaign(campaign, jobs=jobs, cache_dir=cache_dir)
    results: Dict[str, ExperimentResult] = {}
    for run in outcome.outcomes:
        if not run.ok:
            raise RuntimeError(
                f"strategy comparison run failed: {run.spec.label()}: "
                f"{run.error}"
            )
        results[run.spec.config.strategy] = run.to_result()
    return results


def strategy_table(results: Dict[str, ExperimentResult]) -> str:
    """Render the cross-strategy scorecard."""
    rows: List[List] = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.metrics.commits,
                result.rates.wait_rate,
                result.rates.deadlock_rate,
                result.rates.reconciliation_rate,
                result.metrics.tentative_rejected,
                result.divergence,
            ]
        )
    return format_table(
        ["strategy", "commits", "waits/s", "deadlocks/s", "reconcile/s",
         "rejects", "diverged"],
        rows,
        title="Strategy comparison at identical load",
    )
