"""Kernel hot-path benchmarks: the repo's perf trajectory baseline.

Two measurements, both recorded in ``BENCH_kernel.json``:

* **Engine microbench** — a pure scheduling churn (processes ping-ponging
  through timeouts) run against *both* the live kernel and the frozen
  pre-refactor copy in :mod:`repro.sim.legacy_kernel`, on the same machine
  in the same process.  The ``speedup`` ratio is machine-independent, which
  is what the CI perf gate compares: raw events/sec on a cold CI runner
  says nothing, but "the refactored kernel is no longer 2× the frozen one"
  is a real regression wherever it is measured.
* **Workload benches** — one canonical eager-group and one two-tier
  experiment, reporting wall-clock events/sec (engine callbacks dispatched
  per second) and committed txns/sec.  These track end-to-end cost, where
  the lock manager, detector, network, and metrics layers all show up.

Used by the ``repro bench`` CLI verb and
``benchmarks/test_bench_kernel_hotpath.py``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analytic.parameters import ModelParameters
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.sim.engine import Engine
from repro.sim.legacy_kernel import LegacyEngine

#: default event count for one microbench round
MICRO_EVENTS = 200_000

#: canonical workload benches (small enough for a CI smoke, contended
#: enough that storage and network layers dominate like they do at scale)
_WORKLOAD_PARAMS = ModelParameters(
    db_size=100, nodes=3, tps=40.0, actions=4, action_time=0.002,
    message_delay=0.001,
)
_WORKLOAD_DURATION = 30.0
_WORKLOAD_SEED = 7


def _churn(engine: Any, events: int, procs: int = 10):
    """Spawn ``procs`` processes that together schedule ``events`` callbacks.

    Each yield costs two heap entries (the timer and the resume step), so a
    process performs ``events / (2 * procs)`` sleeps.
    """
    sleeps = events // (2 * procs)

    def worker():
        for _ in range(sleeps):
            yield engine.timeout(0.001)

    for _ in range(procs):
        engine.process(worker())


def run_engine_micro(
    engine_factory, events: int = MICRO_EVENTS, repeats: int = 3
) -> float:
    """Best-of-``repeats`` events/sec for one kernel's scheduling churn."""
    best = 0.0
    for _ in range(repeats):
        engine = engine_factory()
        _churn(engine, events)
        start = time.perf_counter()
        engine.run()
        rate = events / (time.perf_counter() - start)
        if rate > best:
            best = rate
    return best


def run_workload_bench(strategy: str) -> Dict[str, Any]:
    """One canonical workload run, measured wall-clock."""
    params = _WORKLOAD_PARAMS
    if strategy == "two-tier":
        params = params.with_(disconnect_time=5.0, time_between_disconnects=5.0)
    config = ExperimentConfig(
        strategy=strategy,
        params=params,
        duration=_WORKLOAD_DURATION,
        seed=_WORKLOAD_SEED,
    )
    start = time.perf_counter()
    result = run_experiment(config)
    wall = time.perf_counter() - start
    events = result.system.engine.events_scheduled
    commits = result.metrics.commits + result.metrics.tentative_committed
    return {
        "strategy": strategy,
        "duration": _WORKLOAD_DURATION,
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "commits": commits,
        "txns_per_sec": round(commits / wall, 1),
    }


def collect(
    events: int = MICRO_EVENTS,
    repeats: int = 3,
    workloads: bool = True,
) -> Dict[str, Any]:
    """Run the full kernel benchmark and return the BENCH_kernel payload."""
    current = run_engine_micro(Engine, events=events, repeats=repeats)
    legacy = run_engine_micro(LegacyEngine, events=events, repeats=repeats)
    payload: Dict[str, Any] = {
        "benchmark": "kernel-hotpath",
        "engine_micro": {
            "events": events,
            "repeats": repeats,
            "current_events_per_sec": round(current, 1),
            "legacy_events_per_sec": round(legacy, 1),
            "speedup": round(current / legacy, 3),
        },
        "workloads": {},
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if workloads:
        for strategy in ("eager-group", "two-tier"):
            payload["workloads"][strategy] = run_workload_bench(strategy)
    return payload


def check_regression(
    payload: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.20,
) -> List[str]:
    """Compare a fresh payload against a committed baseline.

    Only the machine-independent ``speedup`` ratio gates: a fresh run whose
    current/legacy ratio fell more than ``max_regression`` below the
    baseline's ratio means the live kernel got slower relative to the same
    frozen reference.  Raw events/sec are reported for context but never
    compared across machines.
    """
    failures: List[str] = []
    base_ratio = baseline.get("engine_micro", {}).get("speedup")
    fresh_ratio = payload.get("engine_micro", {}).get("speedup")
    if base_ratio is None or fresh_ratio is None:
        failures.append("baseline or fresh payload lacks engine_micro.speedup")
        return failures
    floor = base_ratio * (1.0 - max_regression)
    if fresh_ratio < floor:
        failures.append(
            f"engine speedup regressed: {fresh_ratio:.3f}x vs baseline "
            f"{base_ratio:.3f}x (floor {floor:.3f}x at "
            f"{max_regression:.0%} tolerance)"
        )
    return failures


def load(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with Path(path).open(encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def write(path: Path, payload: Dict[str, Any]) -> None:
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
