"""Multi-seed replication statistics: means and confidence intervals.

A single seeded run is a point estimate of a stochastic rate; credible
measurement reports dispersion.  :func:`repeat_experiment` runs the same
configuration under independent seeds and summarises each rate with its
sample mean, standard deviation, and Student-t 95% confidence interval —
the standard discrete-event-simulation methodology.

scipy provides the t quantile when available; a small built-in table covers
the common sample sizes otherwise, so the module works in minimal installs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentConfig, run_experiment

# two-sided 95% t quantiles by degrees of freedom (fallback when scipy is
# absent); beyond the table the normal quantile is close enough
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131, 20: 2.086,
    30: 2.042,
}


def t_quantile_95(dof: int) -> float:
    """Two-sided 95% Student-t quantile for ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ConfigurationError("need at least two samples for an interval")
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.975, dof))
    except Exception:  # scipy unavailable: table + normal tail
        if dof in _T95:
            return _T95[dof]
        for known in sorted(_T95, reverse=True):
            if dof > known:
                return _T95[known] if dof < 60 else 1.96
        return _T95[1]


@dataclass(frozen=True)
class RateEstimate:
    """Mean, dispersion, and 95% CI of one rate across seeds."""

    name: str
    samples: tuple
    mean: float
    std: float
    ci95_half_width: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci95_half_width

    @property
    def hi(self) -> float:
        return self.mean + self.ci95_half_width

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def format(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_half_width:.2g} (95% CI)"


def estimate(name: str, samples: Sequence[float]) -> RateEstimate:
    """Summarise one rate's samples."""
    n = len(samples)
    if n < 2:
        raise ConfigurationError("need >= 2 samples to estimate dispersion")
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    half_width = t_quantile_95(n - 1) * std / math.sqrt(n)
    return RateEstimate(
        name=name, samples=tuple(samples), mean=mean, std=std,
        ci95_half_width=half_width,
    )


@dataclass(frozen=True)
class SeedStats:
    """All rate estimates for one configuration across seeds."""

    config: ExperimentConfig
    seeds: tuple
    rates: Dict[str, RateEstimate]

    def __getitem__(self, name: str) -> RateEstimate:
        return self.rates[name]

    def table_rows(self) -> List[List]:
        return [
            [name, est.mean, est.std, est.ci95_half_width]
            for name, est in sorted(self.rates.items())
        ]


def repeat_experiment(config: ExperimentConfig,
                      seeds: Sequence[int]) -> SeedStats:
    """Run ``config`` under each seed and summarise every rate.

    The configuration's own ``seed`` field is ignored; each run uses one of
    ``seeds``.
    """
    if len(seeds) < 2:
        raise ConfigurationError("repeat_experiment needs >= 2 seeds")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError("seeds must be distinct")
    per_rate: Dict[str, List[float]] = {}
    for seed in seeds:
        result = run_experiment(replace(config, seed=seed))
        for name, value in result.rates.as_dict().items():
            if name == "horizon":
                continue
            per_rate.setdefault(name, []).append(value)
    return SeedStats(
        config=config,
        seeds=tuple(seeds),
        rates={name: estimate(name, values)
               for name, values in per_rate.items()},
    )
