"""Machine-readable result export.

Downstream users replot reproduction results with their own tools; these
helpers serialise experiment results, sweeps, and multi-seed statistics to
plain JSON-compatible dictionaries (and to files), keeping the provenance —
configuration, seeds, horizon — attached to every number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.harness.comparison import ComparisonRow
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.stats import SeedStats


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    p = config.params
    return {
        "strategy": config.strategy,
        "duration": config.duration,
        "seed": config.seed,
        "commutative": config.commutative,
        "num_base": config.num_base,
        "warmup": config.warmup,
        "record_history": config.record_history,
        "retry_deadlocks": config.retry_deadlocks,
        "propagate_ops": config.propagate_ops,
        "sample_interval": config.sample_interval,
        "acceptance": getattr(config.acceptance, "name", None),
        "rule": getattr(config.rule, "name", None),
        "faults": config.faults.to_dict() if config.faults is not None else None,
        "placement": (
            config.placement.to_dict() if config.placement is not None else None
        ),
        "params": {
            "db_size": p.db_size,
            "nodes": p.nodes,
            "tps": p.tps,
            "actions": p.actions,
            "action_time": p.action_time,
            "disconnect_time": p.disconnect_time,
            "time_between_disconnects": p.time_between_disconnects,
            "message_delay": p.message_delay,
        },
    }


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """One experiment result with full provenance."""
    return {
        "config": config_to_dict(result.config),
        "rates": result.rates.as_dict(),
        "counters": result.metrics.as_dict(),
        "divergence": result.divergence,
        "end_time": result.end_time,
        "extra": {k: v for k, v in result.extra.items() if v is not None},
    }


def stats_to_dict(stats: SeedStats) -> Dict[str, Any]:
    """Multi-seed statistics with per-rate CI."""
    return {
        "config": config_to_dict(stats.config),
        "seeds": list(stats.seeds),
        "rates": {
            name: {
                "mean": est.mean,
                "std": est.std,
                "ci95_half_width": est.ci95_half_width,
                "samples": list(est.samples),
            }
            for name, est in stats.rates.items()
        },
    }


def comparison_to_dict(rows: Sequence[ComparisonRow], x_label: str,
                       rate_label: str) -> Dict[str, Any]:
    """An analytic-vs-simulated sweep."""
    return {
        "x_label": x_label,
        "rate_label": rate_label,
        "points": [
            {
                "x": row.x,
                "analytic": row.analytic,
                "simulated": row.simulated,
                "ratio": row.ratio,
            }
            for row in rows
        ],
    }


def campaign_to_dict(outcome) -> Dict[str, Any]:
    """A whole :class:`~repro.harness.campaign.CampaignResult`.

    Every run's provenance (config + status + cache origin) plus the
    per-cell aggregates and fit exponents, one JSON document.
    """
    cells = outcome.aggregate()
    campaign = getattr(outcome, "campaign", None)
    return {
        "summary": {
            "runs": outcome.total,
            "ok": outcome.ok_count,
            "failed": outcome.total - outcome.ok_count,
            "cache_hits": outcome.cache_hits,
            "elapsed_seconds": outcome.elapsed,
            "jobs": outcome.jobs,
            "model": getattr(campaign, "model", "closed-form"),
        },
        "runs": [
            {
                "config": config_to_dict(o.spec.config),
                "status": o.status,
                "cached": o.cached,
                "error": o.error or None,
                "rates": o.rates() or None,
                "extra": (o.payload or {}).get("extra") or None,
            }
            for o in outcome.outcomes
        ],
        "cells": [
            {
                "strategy": cell.strategy,
                "axis": cell.axis,
                "value": cell.value,
                "n": cell.n,
                "failures": cell.failures,
                "oracle_ok": cell.oracle_ok,
                "analytic": cell.analytic,
                "reference_rate": cell.reference_rate,
                "rates": {
                    name: {
                        "mean": est.mean,
                        "std": est.std,
                        "ci95_half_width": est.ci95_half_width,
                        "samples": list(est.samples),
                    }
                    for name, est in cell.rates.items()
                },
            }
            for cell in cells
        ],
        "fits": [
            {
                "strategy": fit.strategy,
                "rate": fit.rate,
                "measured_exponent": fit.measured,
                "analytic_exponent": fit.analytic,
            }
            for fit in outcome.fits()
        ],
    }


def write_campaign_series(outcome, directory: Union[str, Path]) -> List[Path]:
    """Persist each cell's telemetry time-series to its own JSON file.

    One file per (strategy, axis value) cell, named
    ``<strategy>_<axis><value>.json``, each holding every successful seed
    replica's serialised series (the run's ``extra["series"]`` payload) plus
    provenance.  Runs sampled with ``sample_interval=0`` carry no series and
    are skipped; the return lists the files actually written.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    by_cell: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for o in outcome.outcomes:
        series = (o.payload or {}).get("extra", {}).get("series")
        if not o.ok or series is None:
            continue
        cell = o.spec.cell()
        if cell not in by_cell:
            by_cell[cell] = []
            order.append(cell)
        by_cell[cell].append(o)
    written: List[Path] = []
    for cell in order:
        members = by_cell[cell]
        strategy, value = cell
        axis = members[0].spec.axis
        doc = {
            "strategy": strategy,
            "axis": axis,
            "value": value,
            "runs": [
                {
                    "seed": o.spec.config.seed,
                    "series": o.payload["extra"]["series"],
                }
                for o in members
            ],
        }
        value_text = f"{value:g}".replace(".", "p")
        target = root / f"{strategy}_{axis}{value_text}.json"
        with target.open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(target)
    return written


def write_campaign_csv(outcome, path: Union[str, Path]) -> Path:
    """Flatten a campaign's cell aggregates to CSV (one row per rate)."""
    import csv

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "strategy", "axis", "value", "rate", "n", "mean", "std",
            "ci95_half_width", "analytic",
        ])
        for cell in outcome.aggregate():
            for name, est in sorted(cell.rates.items()):
                writer.writerow([
                    cell.strategy, cell.axis, cell.value, name, cell.n,
                    est.mean, est.std, est.ci95_half_width,
                    cell.analytic if name == cell.reference_rate else "",
                ])
    return target


Exportable = Union[ExperimentResult, SeedStats, Dict[str, Any]]


def to_dict(obj: Exportable) -> Dict[str, Any]:
    """Dispatch helper for the supported result types."""
    from repro.harness.campaign import CampaignResult

    if isinstance(obj, ExperimentResult):
        return result_to_dict(obj)
    if isinstance(obj, SeedStats):
        return stats_to_dict(obj)
    if isinstance(obj, CampaignResult):
        return campaign_to_dict(obj)
    if isinstance(obj, dict):
        return obj
    raise TypeError(f"cannot export {type(obj).__name__}")


def write_json(obj: Exportable, path: Union[str, Path]) -> Path:
    """Serialise ``obj`` to ``path`` (pretty-printed, stable key order)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(to_dict(obj), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return target


def read_json(path: Union[str, Path]) -> Dict[str, Any]:
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
