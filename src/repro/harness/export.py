"""Machine-readable result export.

Downstream users replot reproduction results with their own tools; these
helpers serialise experiment results, sweeps, and multi-seed statistics to
plain JSON-compatible dictionaries (and to files), keeping the provenance —
configuration, seeds, horizon — attached to every number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.harness.comparison import ComparisonRow
from repro.harness.experiment import ExperimentConfig, ExperimentResult
from repro.harness.stats import SeedStats


def config_to_dict(config: ExperimentConfig) -> Dict[str, Any]:
    p = config.params
    return {
        "strategy": config.strategy,
        "duration": config.duration,
        "seed": config.seed,
        "commutative": config.commutative,
        "num_base": config.num_base,
        "warmup": config.warmup,
        "acceptance": getattr(config.acceptance, "name", None),
        "rule": getattr(config.rule, "name", None),
        "params": {
            "db_size": p.db_size,
            "nodes": p.nodes,
            "tps": p.tps,
            "actions": p.actions,
            "action_time": p.action_time,
            "disconnect_time": p.disconnect_time,
            "time_between_disconnects": p.time_between_disconnects,
            "message_delay": p.message_delay,
        },
    }


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """One experiment result with full provenance."""
    return {
        "config": config_to_dict(result.config),
        "rates": result.rates.as_dict(),
        "counters": result.metrics.as_dict(),
        "divergence": result.divergence,
        "end_time": result.end_time,
        "extra": {k: v for k, v in result.extra.items() if v is not None},
    }


def stats_to_dict(stats: SeedStats) -> Dict[str, Any]:
    """Multi-seed statistics with per-rate CI."""
    return {
        "config": config_to_dict(stats.config),
        "seeds": list(stats.seeds),
        "rates": {
            name: {
                "mean": est.mean,
                "std": est.std,
                "ci95_half_width": est.ci95_half_width,
                "samples": list(est.samples),
            }
            for name, est in stats.rates.items()
        },
    }


def comparison_to_dict(rows: Sequence[ComparisonRow], x_label: str,
                       rate_label: str) -> Dict[str, Any]:
    """An analytic-vs-simulated sweep."""
    return {
        "x_label": x_label,
        "rate_label": rate_label,
        "points": [
            {
                "x": row.x,
                "analytic": row.analytic,
                "simulated": row.simulated,
                "ratio": row.ratio,
            }
            for row in rows
        ],
    }


Exportable = Union[ExperimentResult, SeedStats, Dict[str, Any]]


def to_dict(obj: Exportable) -> Dict[str, Any]:
    """Dispatch helper for the supported result types."""
    if isinstance(obj, ExperimentResult):
        return result_to_dict(obj)
    if isinstance(obj, SeedStats):
        return stats_to_dict(obj)
    if isinstance(obj, dict):
        return obj
    raise TypeError(f"cannot export {type(obj).__name__}")


def write_json(obj: Exportable, path: Union[str, Path]) -> Path:
    """Serialise ``obj`` to ``path`` (pretty-printed, stable key order)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(to_dict(obj), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return target


def read_json(path: Union[str, Path]) -> Dict[str, Any]:
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
