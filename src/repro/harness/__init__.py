"""Experiment harness: configure, simulate, measure, compare to the model.

:func:`~repro.harness.experiment.run_experiment` is the single entry point
the benchmarks use: a declarative
:class:`~repro.harness.experiment.ExperimentConfig` names a strategy and the
Table-2 parameters; the harness builds the system, drives the model workload
(plus disconnect schedules when configured), runs to quiescence, and returns
measured counters, rates, and convergence state.

:mod:`~repro.harness.comparison` runs analytic-versus-simulated sweeps and
produces the rows each benchmark prints; :mod:`~repro.harness.figures` fits
growth exponents and renders ASCII curves.
"""

from repro.harness.experiment import (
    STRATEGIES,
    STRATEGY_CLASSES,
    ExperimentConfig,
    ExperimentResult,
    build_system,
    run_experiment,
)
from repro.harness.comparison import analytic_vs_simulated, strategy_comparison
from repro.harness.export import result_to_dict, write_json
from repro.harness.figures import render_sweep, shape_summary
from repro.harness.stats import RateEstimate, SeedStats, repeat_experiment
from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    CellStats,
    RunOutcome,
    RunSpec,
    campaign_table,
    run_campaign,
)

__all__ = [
    "STRATEGIES",
    "STRATEGY_CLASSES",
    "ExperimentConfig",
    "ExperimentResult",
    "build_system",
    "run_experiment",
    "analytic_vs_simulated",
    "strategy_comparison",
    "render_sweep",
    "shape_summary",
    "repeat_experiment",
    "SeedStats",
    "RateEstimate",
    "result_to_dict",
    "write_json",
    "Campaign",
    "CampaignResult",
    "CellStats",
    "RunOutcome",
    "RunSpec",
    "campaign_table",
    "run_campaign",
]
