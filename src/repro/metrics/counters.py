"""Raw event counters collected during a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, FrozenSet


@dataclass(slots=True)
class Metrics:
    """System-wide counters for one simulation run.

    Counter semantics (all counts, not rates):

    * ``waits`` — lock requests that blocked (the paper's PW events).
    * ``deadlocks`` — victims aborted by the deadlock detector.
    * ``reconciliations`` — lazy-group replica updates rejected by the
      timestamp check (Figure 4: "dangerous" updates needing reconciliation).
    * ``stale_updates`` — lazy-master replica updates skipped because the
      replica already had a newer timestamp (harmless, by design).
    * ``commits`` / ``aborts`` — user transactions (replica-update
      housekeeping transactions are tracked separately).
    * ``replica_updates`` — replica-update transactions applied.
    * ``tentative_committed`` — tentative transactions committed at a mobile
      node while disconnected (two-tier).
    * ``tentative_accepted`` / ``tentative_rejected`` — outcomes of base
      re-execution of tentative transactions (two-tier).
    * ``actions`` — individual update actions performed anywhere (eq. 8's
      action rate).
    * ``restarts`` — deadlock victims resubmitted.
    """

    #: ``extra`` names the simulator itself uses; the whitelist strict mode
    #: checks ad-hoc bumps against.
    KNOWN_EXTRAS: ClassVar[FrozenSet[str]] = frozenset(
        {
            "rejected_node_down", "crashes", "recoveries", "migrations",
            # certification/validation aborts (deferred-update, scar): a
            # transaction whose read/write set went stale before the
            # decision point — aborted cleanly, never a lost update
            "cert_aborts",
        }
    )
    #: declared counter field names, cached so :meth:`bump` is a frozenset
    #: membership test plus one attribute store (filled in after the class
    #: body, once the dataclass fields exist)
    COUNTER_NAMES: ClassVar[FrozenSet[str]] = frozenset()

    waits: int = 0
    deadlocks: int = 0
    reconciliations: int = 0
    stale_updates: int = 0
    commits: int = 0
    aborts: int = 0
    replica_updates: int = 0
    tentative_committed: int = 0
    tentative_accepted: int = 0
    tentative_rejected: int = 0
    actions: int = 0
    restarts: int = 0
    messages: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: When True, :meth:`bump` rejects names that are neither dataclass
    #: counters nor in :data:`KNOWN_EXTRAS` — a typo'd ``bump("comits")``
    #: raises instead of silently growing ``extra``.  Off by default so
    #: exploratory extensions stay cheap.
    strict: bool = False

    def bump(self, name: str, amount: float = 1) -> None:
        """Increment a counter by name (supports ad-hoc ``extra`` counters)."""
        if name in self.COUNTER_NAMES:
            setattr(self, name, getattr(self, name) + amount)
            return
        if self.strict and name not in self.KNOWN_EXTRAS:
            raise KeyError(
                f"unknown counter {name!r} (strict mode); declared counters: "
                f"{sorted(self.as_dict())} plus extras {sorted(self.KNOWN_EXTRAS)}"
            )
        self.extra[name] = self.extra.get(name, 0) + amount

    def as_dict(self) -> Dict[str, float]:
        """Flat name -> count mapping, including extras."""
        out = {
            "waits": self.waits,
            "deadlocks": self.deadlocks,
            "reconciliations": self.reconciliations,
            "stale_updates": self.stale_updates,
            "commits": self.commits,
            "aborts": self.aborts,
            "replica_updates": self.replica_updates,
            "tentative_committed": self.tentative_committed,
            "tentative_accepted": self.tentative_accepted,
            "tentative_rejected": self.tentative_rejected,
            "actions": self.actions,
            "restarts": self.restarts,
            "messages": self.messages,
        }
        out.update(self.extra)
        return out

    def merged_with(self, other: "Metrics") -> "Metrics":
        """Element-wise sum (for aggregating repeated runs)."""
        merged = Metrics()
        for name, value in self.as_dict().items():
            merged.bump(name, value)
        for name, value in other.as_dict().items():
            merged.bump(name, value)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        busy = {k: v for k, v in self.as_dict().items() if v}
        return f"Metrics({busy})"


Metrics.COUNTER_NAMES = frozenset(
    f.name for f in fields(Metrics) if f.name not in ("extra", "strict")
)
