"""Plain-text table and series rendering for the benchmark harness.

The paper's "figures" are curves of rate versus scale; with no plotting
dependency available we render aligned tables and simple log-scale ASCII
sparklines that make growth shapes (linear / quadratic / cubic) visible in
benchmark output.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Example::

        print(format_table(["nodes", "rate"], [(1, 0.1), (10, 100.0)]))
    """
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_mean_ci(mean: float, half_width: float) -> str:
    """Render ``mean ± half-width`` with the table's number formatting.

    A zero half-width (single sample) renders as the bare mean.
    """
    if half_width:
        return f"{_fmt(mean)} ± {_fmt(half_width)}"
    return _fmt(mean)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Render a horizontal-bar sparkline of ``ys`` against ``xs``.

    With ``log_scale`` (the default) bar length is proportional to
    ``log10(y)``, so polynomial growth appears as evenly stepped bars whose
    step size reveals the exponent.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    positive = [y for y in ys if y > 0]
    lines = [f"{y_label} vs {x_label}"]
    if not positive:
        for x, y in zip(xs, ys):
            lines.append(f"{_fmt(x):>10} | {_fmt(y)}")
        return "\n".join(lines)
    if log_scale:
        lo = math.log10(min(positive))
        hi = math.log10(max(positive))
    else:
        lo, hi = 0.0, max(positive)
    span = (hi - lo) or 1.0
    for x, y in zip(xs, ys):
        if y <= 0:
            bar = ""
        else:
            level = (math.log10(y) - lo) / span if log_scale else (y - lo) / span
            bar = "#" * max(1, int(round(level * width)))
        lines.append(f"{_fmt(x):>10} | {bar:<{width}} {_fmt(y)}")
    return "\n".join(lines)


def growth_caption(exponent: float, variable: str = "N") -> str:
    """Human-readable growth-order caption, e.g. 'cubic in N (fit 2.97)'."""
    names = {1: "linear", 2: "quadratic", 3: "cubic", 4: "quartic", 5: "quintic"}
    nearest = round(exponent)
    name = names.get(nearest, f"order-{nearest}")
    return f"{name} in {variable} (fitted exponent {exponent:.2f})"
