"""Turning counters into the per-second rates the paper reasons about."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.metrics.counters import Metrics


@dataclass(frozen=True)
class RateSummary:
    """Per-second rates over a measurement horizon.

    These mirror the paper's left-hand sides: ``wait_rate`` ~ equation 10,
    ``deadlock_rate`` ~ equations 5/12/19, ``reconciliation_rate`` ~
    equations 14/18, ``action_rate`` ~ equation 8.
    """

    horizon: float
    wait_rate: float
    deadlock_rate: float
    reconciliation_rate: float
    commit_rate: float
    abort_rate: float
    action_rate: float
    tentative_reject_rate: float

    def as_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "wait_rate": self.wait_rate,
            "deadlock_rate": self.deadlock_rate,
            "reconciliation_rate": self.reconciliation_rate,
            "commit_rate": self.commit_rate,
            "abort_rate": self.abort_rate,
            "action_rate": self.action_rate,
            "tentative_reject_rate": self.tentative_reject_rate,
        }


def summarize(metrics: Metrics, horizon: float) -> RateSummary:
    """Compute rates for ``metrics`` gathered over ``horizon`` seconds."""
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    return RateSummary(
        horizon=horizon,
        wait_rate=metrics.waits / horizon,
        deadlock_rate=metrics.deadlocks / horizon,
        reconciliation_rate=metrics.reconciliations / horizon,
        commit_rate=metrics.commits / horizon,
        abort_rate=metrics.aborts / horizon,
        action_rate=metrics.actions / horizon,
        tentative_reject_rate=metrics.tentative_rejected / horizon,
    )
