"""Measurement: counters, rate computation, and report formatting.

The paper's quantities of interest are *rates* — waits per second, deadlocks
per second, reconciliations per second — measured system-wide.  A
:class:`~repro.metrics.counters.Metrics` object accumulates raw counts during
a simulation; :mod:`repro.metrics.rates` turns counts into rates over the
measured horizon; :mod:`repro.metrics.report` renders aligned ASCII tables
used by the benchmark harness.
"""

from repro.metrics.counters import Metrics
from repro.metrics.rates import RateSummary, summarize
from repro.metrics.report import format_table, format_series

__all__ = ["Metrics", "RateSummary", "summarize", "format_table", "format_series"]
