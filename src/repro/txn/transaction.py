"""Transaction objects and lifecycle.

A :class:`Transaction` is a passive record of one execution attempt: its
identity, origin node, state, and the update records accumulated as its
operations run.  The update records carry the before/after timestamps that
lazy replication ships to replicas (Figure 4 of the paper).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.exceptions import InvalidStateError
from repro.storage.versioning import Timestamp
from repro.txn.ops import Operation

_txn_ids = itertools.count(1)


def reset_txn_ids() -> None:
    """Restart the global transaction id counter (test isolation only)."""
    global _txn_ids
    _txn_ids = itertools.count(1)


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class UpdateRecord:
    """One committed-to-be write, with the versioning data replicas need.

    ``old_ts`` is the timestamp the root transaction saw before its write —
    exactly the "old time" field of Figure 4's lazy update message.
    """

    oid: int
    op: Operation
    old_value: Any
    old_ts: Timestamp
    new_value: Any
    new_ts: Timestamp


class Transaction:
    """One execution attempt of a sequence of operations.

    Attributes:
        txn_id: globally unique, monotonically increasing (used by the
            youngest-victim deadlock policy).
        origin_node: node where the transaction was submitted.
        start_time: virtual time of ``begin``.
        updates: ordered :class:`UpdateRecord` list for replication.
        reads: values observed by read operations, in order.
    """

    def __init__(self, origin_node: int, start_time: float, label: str = ""):
        self.txn_id: int = next(_txn_ids)
        self.origin_node = origin_node
        self.start_time = start_time
        self.label = label
        self.state = TxnState.ACTIVE
        self.updates: List[UpdateRecord] = []
        self.reads: List[Any] = []
        self.end_time: Optional[float] = None
        self.abort_reason: Optional[str] = None
        self.restarts: int = 0

    # ------------------------------------------------------------------ #
    # state predicates & transitions
    # ------------------------------------------------------------------ #

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidStateError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    def mark_committed(self, now: float) -> None:
        self.require_active()
        self.state = TxnState.COMMITTED
        self.end_time = now

    def mark_aborted(self, now: float, reason: str = "unknown") -> None:
        self.require_active()
        self.state = TxnState.ABORTED
        self.end_time = now
        self.abort_reason = reason

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def record_update(self, record: UpdateRecord) -> None:
        self.updates.append(record)

    def record_read(self, value: Any) -> None:
        self.reads.append(value)

    @property
    def write_set(self) -> List[int]:
        """Object ids written, in order, without duplicates."""
        seen: set[int] = set()
        out: List[int] = []
        for update in self.updates:
            if update.oid not in seen:
                seen.add(update.oid)
                out.append(update.oid)
        return out

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" {self.label!r}" if self.label else ""
        return (
            f"<Txn {self.txn_id}{tag} node={self.origin_node} "
            f"{self.state.value} updates={len(self.updates)}>"
        )
