"""Per-node transaction manager.

Runs operations under strict two-phase locking against the node's store and
write-ahead log.  Methods that may block (anything that takes a lock) are
generators to be driven with ``yield from`` inside a simulation process;
they raise :class:`~repro.exceptions.DeadlockAbort` at the ``yield`` if the
transaction is chosen as a deadlock victim while waiting.

Each action costs ``Action_Time`` of virtual time, per Table 2 of the paper
("Action_Time: time to perform an action") — this is what makes transaction
*duration* grow with transaction *size*, the mechanism behind the eager
scheme's N-times-longer transactions (equation 6).

Distributed usage: an eager transaction executes against several nodes'
managers.  The replication strategy coordinates, calling
:meth:`finish_commit_local` / :meth:`finish_abort_local` on every involved
manager; single-node callers can use the convenience :meth:`commit` /
:meth:`abort` that also flip the transaction state.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.exceptions import InvalidStateError
from repro.sim.protocol import EngineProtocol
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp, TimestampGenerator
from repro.storage.wal import WriteAheadLog
from repro.txn.ops import Operation
from repro.txn.transaction import Transaction, UpdateRecord


class TransactionManager:
    """Executes transactions at one node.

    Args:
        engine: simulation engine.
        node_id: this node's id.
        store: the node's object store.
        locks: the node's lock manager.
        wal: the node's undo log.
        clock: the node's Lamport timestamp generator.
        action_time: virtual seconds consumed per action (Table 2).
        lock_reads: when True, reads take shared locks (full serializability);
            when False, reads are committed-read as the paper's model assumes
            ("a weak multi-version form of committed-read serialization").
    """

    def __init__(
        self,
        engine: EngineProtocol,
        node_id: int,
        store: ObjectStore,
        locks: LockManager,
        wal: WriteAheadLog,
        clock: TimestampGenerator,
        action_time: float = 0.01,
        lock_reads: bool = False,
        history=None,
    ):
        self.engine = engine
        self.node_id = node_id
        self.store = store
        self.locks = locks
        self.wal = wal
        self.clock = clock
        self.action_time = action_time
        self.lock_reads = lock_reads
        self.history = history  # optional repro.verify.History
        self.begun = 0
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def begin(self, label: str = "") -> Transaction:
        """Start a new transaction originating at this node."""
        self.begun += 1
        return Transaction(
            origin_node=self.node_id, start_time=self.engine.now, label=label
        )

    def commit(self, txn: Transaction) -> None:
        """Single-node commit: flip state and release local resources."""
        txn.mark_committed(self.engine.now)
        self.finish_commit_local(txn)

    def abort(self, txn: Transaction, reason: str = "unknown") -> None:
        """Single-node abort: undo, flip state, release local resources."""
        txn.mark_aborted(self.engine.now, reason=reason)
        self.finish_abort_local(txn)

    def finish_commit_local(self, txn: Transaction) -> None:
        """Release this node's share of a committing transaction."""
        self.wal.forget(txn.txn_id)
        self.locks.release_all(txn)
        if txn.origin_node == self.node_id:
            self.committed += 1

    def finish_abort_local(self, txn: Transaction) -> None:
        """Undo this node's share of an aborting transaction."""
        self.wal.undo(txn.txn_id, self.store)
        self.locks.release_all(txn)
        if txn.origin_node == self.node_id:
            self.aborted += 1

    # ------------------------------------------------------------------ #
    # operation execution (generators)
    # ------------------------------------------------------------------ #

    def execute(self, txn: Transaction, op: Operation) -> Generator[Any, Any, Any]:
        """Run one operation for ``txn`` at this node.

        Yields while waiting for locks or consuming action time.  Returns the
        value read (for reads) or written (for updates).
        """
        txn.require_active()
        if op.is_read:
            return (yield from self._execute_read(txn, op))
        return (yield from self._execute_update(txn, op))

    def _execute_read(self, txn: Transaction, op: Operation):
        if self.lock_reads:
            yield from self._lock(txn, op.oid, LockMode.SHARED)
        value = self.store.value(op.oid)
        txn.record_read(value)
        if self.history is not None:
            self.history.record_read(self.node_id, txn.txn_id, op.oid)
        return value

    def _execute_update(self, txn: Transaction, op: Operation):
        yield from self._lock(txn, op.oid, LockMode.EXCLUSIVE)
        if self.action_time > 0:
            yield self.engine.timeout(self.action_time)
        txn.require_active()
        record = self.store.read(op.oid)
        old_value, old_ts = record.value, record.ts
        new_ts = self.clock.tick()
        new_value = op.apply(old_value)
        self.wal.record(txn.txn_id, op.oid, old_value, old_ts, new_value, new_ts)
        self.store.write(op.oid, new_value, new_ts)
        txn.record_update(
            UpdateRecord(
                oid=op.oid,
                op=op,
                old_value=old_value,
                old_ts=old_ts,
                new_value=new_value,
                new_ts=new_ts,
            )
        )
        if self.history is not None:
            if op.reads_state:
                # an increment is a read-modify-write; the verifier needs
                # the implicit read to reconstruct conflicts faithfully
                self.history.record_read(self.node_id, txn.txn_id, op.oid)
            self.history.record_write(self.node_id, txn.txn_id, op.oid)
        return new_value

    def execute_install(
        self,
        txn: Transaction,
        oid: int,
        value: Any,
        new_ts: Timestamp,
        root_txn_id: Optional[int] = None,
    ) -> Generator[Any, Any, Any]:
        """Install a shipped replica value (lazy propagation, Figure 1/4).

        The value arrives with the *root* transaction's timestamp so that all
        replicas converge to identical (value, ts) pairs; the local Lamport
        clock witnesses the foreign timestamp.  When a history is being
        recorded, the install is attributed to ``root_txn_id`` — it is the
        root transaction's write, carried to this replica.
        """
        txn.require_active()
        yield from self._lock(txn, oid, LockMode.EXCLUSIVE)
        if self.action_time > 0:
            yield self.engine.timeout(self.action_time)
        txn.require_active()
        record = self.store.read(oid)
        self.wal.record(txn.txn_id, oid, record.value, record.ts, value, new_ts)
        self.store.write(oid, value, new_ts)
        self.clock.witness(new_ts)
        if self.history is not None:
            self.history.record_write(
                self.node_id,
                root_txn_id if root_txn_id is not None else txn.txn_id,
                oid,
            )
        return value

    def execute_transform(
        self,
        txn: Transaction,
        op: Operation,
        new_ts: Timestamp,
        root_txn_id: Optional[int] = None,
    ) -> Generator[Any, Any, Any]:
        """Apply a shipped *commutative* operation to the local replica.

        Used by convergent schemes that propagate transformations rather than
        values (section 6).  The replica timestamp becomes the max of the
        current and shipped timestamps, so replicas agree on the final
        timestamp regardless of application order.
        """
        txn.require_active()
        yield from self._lock(txn, op.oid, LockMode.EXCLUSIVE)
        if self.action_time > 0:
            yield self.engine.timeout(self.action_time)
        txn.require_active()
        record = self.store.read(op.oid)
        final_ts = max(record.ts, new_ts)
        new_value = op.apply(record.value)
        self.wal.record(
            txn.txn_id, op.oid, record.value, record.ts, new_value, final_ts
        )
        self.store.write(op.oid, new_value, final_ts)
        self.clock.witness(new_ts)
        if self.history is not None:
            self.history.record_write(
                self.node_id,
                root_txn_id if root_txn_id is not None else txn.txn_id,
                op.oid,
            )
        return new_value

    def _lock(self, txn: Transaction, oid: int, mode: LockMode):
        event = self.locks.acquire(txn, oid, mode)
        if event is not None:
            yield event  # may raise DeadlockAbort
            txn.require_active()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def assert_quiescent(self) -> None:
        """Raise unless no transaction holds locks or pending undo here."""
        self.wal.assert_quiescent()
        if self.locks._held_by_txn:
            raise InvalidStateError(
                f"node {self.node_id}: {len(self.locks._held_by_txn)} "
                "transactions still hold locks"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TransactionManager node={self.node_id} begun={self.begun} "
            f"committed={self.committed} aborted={self.aborted}>"
        )
