"""The operation vocabulary.

Section 6 of the paper observes that real replicated systems express updates
as "transactional transformations such as 'Debit the account by $50' instead
of 'change account from $200 to $150'", and that *commutative* transformations
can be applied in any order at every replica with the same final state.

Each operation is a small immutable object with:

* ``oid`` — the object it touches,
* ``apply(value)`` — the pure transformation of the object's value,
* ``commutative`` — whether it commutes with every other commutative op,
* ``is_read`` — reads take locks (optionally) but do not transform.

``WriteOp`` (blind overwrite) is the dangerous, non-commutative primitive the
paper's instability analysis assumes; ``IncrementOp``/``AppendOp`` are the
semantic tricks that make two-tier replication stable.
"""

from __future__ import annotations

from typing import Any, Tuple


class Operation:
    """Base class for operations.  Subclasses are immutable value objects."""

    __slots__ = ("oid",)

    commutative: bool = False
    is_read: bool = False
    #: True when the transformation depends on the current value (an
    #: increment is semantically a read-modify-write); used by the history
    #: verifier to record the implicit read.
    reads_state: bool = False

    def __init__(self, oid: int):
        self.oid = oid

    def apply(self, value: Any) -> Any:
        """Return the new object value given the current one."""
        raise NotImplementedError

    def _key(self) -> Tuple:
        return (type(self).__name__, self.oid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        name = type(self).__name__
        fields = self._key()[1:]
        return f"{name}({', '.join(repr(f) for f in fields)})"


class ReadOp(Operation):
    """Read the current committed value (no transformation)."""

    __slots__ = ()
    is_read = True
    commutative = True  # reads trivially commute with each other

    def apply(self, value: Any) -> Any:
        return value


class WriteOp(Operation):
    """Blind overwrite: ``value := new_value``.  Does not commute."""

    __slots__ = ("new_value",)
    commutative = False

    def __init__(self, oid: int, new_value: Any):
        super().__init__(oid)
        self.new_value = new_value

    def apply(self, value: Any) -> Any:
        return self.new_value

    def _key(self) -> Tuple:
        return ("WriteOp", self.oid, self.new_value)


class IncrementOp(Operation):
    """Add a constant: ``value := value + delta``.  Commutes.

    The paper's checkbook debit/credit: "Debit the account by $50".
    """

    __slots__ = ("delta",)
    commutative = True
    reads_state = True

    def __init__(self, oid: int, delta: float):
        super().__init__(oid)
        self.delta = delta

    def apply(self, value: Any) -> Any:
        return value + self.delta

    def _key(self) -> Tuple:
        return ("IncrementOp", self.oid, self.delta)


class MultiplyOp(Operation):
    """Scale by a constant: ``value := value * factor``.

    Commutes with other multiplies but **not** with increments; it is marked
    non-commutative so the conservative commutativity test stays sound.
    Included for the acceptance-criteria examples (price adjustments).
    """

    __slots__ = ("factor",)
    commutative = False
    reads_state = True

    def __init__(self, oid: int, factor: float):
        super().__init__(oid)
        self.factor = factor

    def apply(self, value: Any) -> Any:
        return value * self.factor

    def _key(self) -> Tuple:
        return ("MultiplyOp", self.oid, self.factor)


class AppendOp(Operation):
    """Timestamped append (Lotus Notes style): add an item to a tuple.

    The object's value must be a tuple; the final *set* of appended items is
    order-independent, which is what makes the Notes append scheme converge.
    Readers that need a canonical order sort by the items themselves.
    """

    __slots__ = ("item",)
    commutative = True
    reads_state = True

    def __init__(self, oid: int, item: Any):
        super().__init__(oid)
        self.item = item

    def apply(self, value: Any) -> Any:
        if value == 0:  # default initial store value; treat as empty file
            value = ()
        return tuple(sorted(value + (self.item,)))

    def _key(self) -> Tuple:
        return ("AppendOp", self.oid, self.item)


def all_commute(operations) -> bool:
    """Conservative test: every operation in every transaction commutes.

    Section 7: "If all transactions commute, there are no reconciliations."
    """
    return all(op.commutative for op in operations)
