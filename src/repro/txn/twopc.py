"""Two-phase commit for distributed (eager) transactions.

Eager replication "updates all replicas of an object as part of the original
transaction" (Figure 1), which requires atomic commitment across the
participating nodes.  This module provides a classic presumed-abort 2PC
coordinator:

* **Phase 1 (prepare):** the coordinator asks every participant to prepare;
  each forces its log (modeled as ``log_force_time`` of virtual time) and
  votes YES or NO.
* **Phase 2 (decide):** unanimous YES ⇒ commit everywhere; any NO ⇒ abort
  everywhere.

The paper's analytic model deliberately ignores message and commit-protocol
costs ("These delays and extra processing are ignored"), so the eager
strategy in :mod:`repro.replication.eager_group` uses a zero-cost
instantiation; the protocol itself is exercised and tested independently, and
can be configured with nonzero costs to measure how protocol latency worsens
the wait rates (the paper: "If message delays were added ... transactions
would be more likely to collide").
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Sequence

from repro.sim.protocol import EngineProtocol
from repro.txn.transaction import Transaction


class Vote(enum.Enum):
    YES = "yes"
    NO = "no"


class Participant:
    """Adapter making a :class:`TransactionManager` a 2PC participant.

    Subclass or pass a custom ``can_commit`` to inject votes (used by the
    failure-injection tests).
    """

    def __init__(self, manager, log_force_time: float = 0.0):
        self.manager = manager
        self.log_force_time = log_force_time
        self.prepared: set[int] = set()

    def prepare(self, txn: Transaction) -> Generator[Any, Any, Vote]:
        """Force the log and vote."""
        if self.log_force_time > 0:
            yield self.manager.engine.timeout(self.log_force_time)
        if not txn.active:
            return Vote.NO
        self.prepared.add(txn.txn_id)
        return Vote.YES
        yield  # pragma: no cover - makes this a generator even when skipped

    def commit(self, txn: Transaction) -> Generator[Any, Any, None]:
        if self.log_force_time > 0:
            yield self.manager.engine.timeout(self.log_force_time)
        self.prepared.discard(txn.txn_id)
        self.manager.finish_commit_local(txn)
        return
        yield  # pragma: no cover

    def abort(self, txn: Transaction) -> Generator[Any, Any, None]:
        if self.log_force_time > 0:
            yield self.manager.engine.timeout(self.log_force_time)
        self.prepared.discard(txn.txn_id)
        self.manager.finish_abort_local(txn)
        return
        yield  # pragma: no cover


class TwoPhaseCommit:
    """Presumed-abort two-phase-commit coordinator."""

    def __init__(self, engine: EngineProtocol):
        self.engine = engine
        self.commits = 0
        self.aborts = 0

    def run(
        self, txn: Transaction, participants: Sequence[Participant]
    ) -> Generator[Any, Any, bool]:
        """Coordinate commitment of ``txn`` across ``participants``.

        Returns True when the transaction committed, False when it aborted.
        Prepare requests are issued concurrently (each as its own process);
        the decision waits for all votes.
        """
        vote_processes = [
            self.engine.process(p.prepare(txn), name=f"prepare-{txn.txn_id}")
            for p in participants
        ]
        votes: List[Vote] = []
        for proc in vote_processes:
            vote = yield proc
            votes.append(vote)

        decision_commit = txn.active and all(v is Vote.YES for v in votes)

        if decision_commit:
            txn.mark_committed(self.engine.now)
            for participant in participants:
                yield from participant.commit(txn)
            self.commits += 1
            return True

        if txn.active:
            txn.mark_aborted(self.engine.now, reason="2pc-no-vote")
        for participant in participants:
            yield from participant.abort(txn)
        self.aborts += 1
        return False
