"""Transaction substrate: operations, lifecycle, manager, atomic commit.

A transaction here is a sequence of *operations* over objects.  Operations
carry their own semantics — overwrite, increment, append — and declare
whether they **commute** (section 6 of the paper: "adding and subtracting
constants from an integer value" commutes; overwrites do not).  The two-tier
scheme's headline property (zero reconciliations when all transactions
commute) falls directly out of this vocabulary.

The :class:`~repro.txn.manager.TransactionManager` runs operations under
strict two-phase locking with the per-node storage substrate; the
:class:`~repro.txn.twopc.TwoPhaseCommit` coordinator provides atomic
commitment across nodes for eager replication.
"""

from repro.txn.ops import (
    AppendOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    WriteOp,
)
from repro.txn.transaction import Transaction, TxnState, UpdateRecord
from repro.txn.manager import TransactionManager
from repro.txn.twopc import TwoPhaseCommit, Participant, Vote

__all__ = [
    "AppendOp",
    "IncrementOp",
    "MultiplyOp",
    "Operation",
    "ReadOp",
    "WriteOp",
    "Transaction",
    "TxnState",
    "UpdateRecord",
    "TransactionManager",
    "TwoPhaseCommit",
    "Participant",
    "Vote",
]
