"""Reconciliation rules for lazy-group conflicts.

"Oracle 7 provides a choice of twelve reconciliation rules to merge
conflicting updates. In addition, users can program their own reconciliation
rules. These rules give priority [to] certain sites, or time priority, or
value priority, or they merge commutative updates." (section 6)

A rule decides what happens when a replica update arrives whose ``old_ts``
does not match the replica's current timestamp (Figure 4's "dangerous"
case).  Outcomes:

* ``APPLY`` — install the incoming version anyway,
* ``DISCARD`` — keep the local version, drop the incoming one,
* ``MERGE`` — reapply the incoming *operation* on top of the local value
  (only sound for commutative operations),
* ``DEFER`` — leave the conflict unresolved for a human; the replica keeps
  its value and the system diverges — this is the path to system delusion.

Every conflict is counted as a reconciliation regardless of outcome; the
rules differ in whether the database still converges and whether updates are
lost.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional

from repro.replication.base import ReplicaUpdate
from repro.storage.record import Record
from repro.storage.versioning import Timestamp


class Outcome(enum.Enum):
    APPLY = "apply"
    DISCARD = "discard"
    MERGE = "merge"
    DEFER = "defer"


class ReconciliationRule:
    """Base class: decide the fate of a conflicting replica update."""

    name = "abstract"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        raise NotImplementedError


class LatestTimestampWins(ReconciliationRule):
    """Time priority: the newer timestamp wins (Lotus Notes replace).

    Converges, but loses updates — "Timestamp schemes are vulnerable to lost
    updates" — which the lost-update benchmark quantifies.
    """

    name = "latest-timestamp-wins"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return Outcome.APPLY if update.new_ts > local.ts else Outcome.DISCARD


class SitePriorityWins(ReconciliationRule):
    """Site priority: the update from the higher-priority node wins ties.

    ``priorities`` maps node id -> rank (higher rank wins).  Falls back to
    timestamp order between equal-priority sites so the rule is total.
    """

    name = "site-priority"

    def __init__(self, priorities: Dict[int, int]):
        self.priorities = dict(priorities)

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        local_rank = self.priorities.get(local.ts.node_id, 0)
        update_rank = self.priorities.get(update.new_ts.node_id, 0)
        if update_rank != local_rank:
            return Outcome.APPLY if update_rank > local_rank else Outcome.DISCARD
        return (
            Outcome.APPLY if update.new_ts > local.ts else Outcome.DISCARD
        )


class ValuePriorityWins(ReconciliationRule):
    """Value priority: keep whichever version has the larger key.

    ``key`` extracts a comparable from the value (default: identity) —
    e.g. keep the highest bid, the latest sequence number.
    """

    name = "value-priority"

    def __init__(self, key: Callable[[Any], Any] = lambda v: v):
        self.key = key

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        try:
            if self.key(update.new_value) > self.key(local.value):
                return Outcome.APPLY
            return Outcome.DISCARD
        except TypeError:
            # incomparable values: fall back to time priority
            return (
                Outcome.APPLY if update.new_ts > local.ts else Outcome.DISCARD
            )


class MergeCommutative(ReconciliationRule):
    """Merge rule: reapply commutative operations instead of values.

    "they merge commutative updates" — sound only when the shipped operation
    commutes; otherwise falls back to time priority.
    """

    name = "merge-commutative"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        if update.op is not None and update.op.commutative:
            return Outcome.MERGE
        return Outcome.APPLY if update.new_ts > local.ts else Outcome.DISCARD


class EarliestTimestampWins(ReconciliationRule):
    """First-writer-wins: the *older* committed version is kept.

    Oracle's "earliest timestamp" rule — appropriate when the first booking,
    first bid, or first registration should stand.  Converges because both
    replicas resolve any pair the same way.
    """

    name = "earliest-timestamp-wins"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        if local.ts == Timestamp.ZERO:
            # never-written local value: the incoming committed write stands
            return Outcome.APPLY
        return Outcome.DISCARD if local.ts < update.new_ts else Outcome.APPLY


class AdditiveDifference(ReconciliationRule):
    """Oracle's additive rule: apply the update's *delta*, not its value.

    The incoming message carries the root's before/after images; the
    difference ``new - old`` is re-applied to the current local value, so
    concurrent numeric updates merge instead of clobbering.  Falls back to
    time priority for non-numeric values.
    """

    name = "additive-difference"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return Outcome.MERGE  # LazyGroupSystem merges via op when possible


class MinimumWins(ReconciliationRule):
    """Value rule: the smaller value survives (e.g. lowest quoted price)."""

    name = "minimum-wins"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        try:
            if update.new_value < local.value:
                return Outcome.APPLY
            return Outcome.DISCARD
        except TypeError:
            return Outcome.APPLY if update.new_ts > local.ts else Outcome.DISCARD


class MaximumWins(ValuePriorityWins):
    """Alias with an explicit name: the larger value survives."""

    name = "maximum-wins"


class DiscardIncoming(ReconciliationRule):
    """Local always wins; the incoming conflicting update is dropped.

    Unlike :class:`ManualReconciliation` this is a *decision*, not a
    deferral — but because the two replicas each keep their own version, it
    does **not** converge on its own; it suits a designated-primary replica
    whose peers overwrite (pair with :class:`OverwriteIncoming` there).
    """

    name = "discard-incoming"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return Outcome.DISCARD


class OverwriteIncoming(ReconciliationRule):
    """Remote always wins; the local conflicting version is overwritten."""

    name = "overwrite-incoming"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return Outcome.APPLY


class ManualReconciliation(ReconciliationRule):
    """No automatic rule: conflicts pile up for a person to fix.

    This models the paper's grim default — "a program or person must
    reconcile conflicting transactions" — and, at scale, produces the
    divergence the paper calls system delusion.
    """

    name = "manual"

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return Outcome.DEFER


class CustomRule(ReconciliationRule):
    """User-programmed rule (Oracle 7's escape hatch): any callable
    ``(local_record, update) -> Outcome``."""

    name = "custom"

    def __init__(self, fn: Callable[[Record, ReplicaUpdate], Outcome],
                 name: Optional[str] = None):
        self.fn = fn
        if name:
            self.name = name

    def resolve(self, local: Record, update: ReplicaUpdate) -> Outcome:
        return self.fn(local, update)


def default_rule() -> ReconciliationRule:
    """The convergent default used by LazyGroupSystem."""
    return LatestTimestampWins()
