"""Anti-entropy gossip scheduling for convergent replicas.

Section 6's systems converge by *exchanging* state: "These version vectors
are exchanged on demand or periodically."  :class:`GossipDriver` runs that
periodic exchange inside the discrete-event engine: every ``period`` each
replica syncs with one partner (chosen round-robin or at random), so
convergence lag and anti-entropy traffic can be measured like any other
protocol cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.replication.convergent import ConvergentReplica, diverged_objects, exchange
from repro.sim.process import Process
from repro.sim.protocol import EngineProtocol
from repro.sim.random_source import RandomSource


class GossipDriver:
    """Periodic pairwise anti-entropy over a set of convergent replicas.

    Args:
        engine: the simulation engine.
        replicas: the replicas to keep in sync.
        period: virtual time between one replica's successive exchanges.
        random_partners: pick partners uniformly at random (seeded) instead
            of round-robin.
        seed: randomness seed for partner selection.
    """

    def __init__(
        self,
        engine: EngineProtocol,
        replicas: Sequence[ConvergentReplica],
        period: float,
        random_partners: bool = False,
        seed: int = 0,
    ):
        if len(replicas) < 2:
            raise ConfigurationError("gossip needs at least two replicas")
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.engine = engine
        self.replicas = list(replicas)
        self.period = period
        self.random_partners = random_partners
        self.rng = RandomSource(seed)
        self.exchanges = 0
        self.processes: List[Process] = []

    def start(self, duration: float) -> List[Process]:
        """Spawn one gossip loop per replica, staggered across one period."""
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        stagger = self.period / len(self.replicas)
        self.processes = [
            self.engine.process(
                self._loop(index, index * stagger, duration),
                name=f"gossip@{self.replicas[index].node_id}",
            )
            for index in range(len(self.replicas))
        ]
        return self.processes

    def _loop(self, index: int, offset: float, duration: float):
        engine = self.engine
        deadline = engine.now + duration
        stream = self.rng.stream(f"partners/{index}")
        if offset > 0:
            yield engine.timeout(offset)
        round_number = 0
        while engine.now + self.period <= deadline:
            yield engine.timeout(self.period)
            partner_index = self._pick_partner(index, round_number, stream)
            exchange(self.replicas[index], self.replicas[partner_index])
            self.exchanges += 1
            round_number += 1
        return self.exchanges

    def _pick_partner(self, index: int, round_number: int, stream) -> int:
        n = len(self.replicas)
        if self.random_partners:
            partner = stream.randrange(n - 1)
            return partner if partner < index else partner + 1
        # round-robin over everyone else: offset cycles through 1..n-1
        offset = 1 + (round_number % (n - 1))
        return (index + offset) % n

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #

    def divergence(self) -> int:
        return diverged_objects(self.replicas)

    def converged(self) -> bool:
        return self.divergence() == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GossipDriver replicas={len(self.replicas)} "
            f"period={self.period} exchanges={self.exchanges}>"
        )
