"""The commit-protocol pipeline: a transaction's lifecycle as named phases.

Every replication strategy is a composition of a small vocabulary of
phases — the decomposition that makes post-1996 protocols cheap to add:

* ``admission``    — reachability / quorum checks, ``begin``;
* ``execute``      — run the operations (locally, at masters, or at every
  replica, depending on the strategy);
* ``certify``      — validate the transaction's read/write set against a
  version table or logical timestamps (no-op for the 1996 strategies,
  which rely on locking instead);
* ``commit``       — flip the transaction state and release resources at
  every involved node;
* ``propagate``    — ship committed updates to the replicas that were not
  written synchronously (lazy streams, quorum catch-up).

A strategy declares its composition as a ``PHASES`` tuple of names; for
each name ``p`` the class provides a ``_phase_<p>`` method taking the
:class:`TxnContext`.  Phase methods may be plain functions (instantaneous
bookkeeping) or generators (anything that waits on locks, timeouts or
messages); the driver in :meth:`ReplicatedSystem._run` interleaves them
without adding any engine interaction of its own, which is what lets the
five legacy strategies keep byte-identical determinism fingerprints after
the refactor.

A phase ends the transaction early — admission failure, deadlock abort,
certification abort — by setting ``ctx.finished = True``; the driver then
skips the remaining phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.txn.ops import Operation
from repro.txn.transaction import Transaction

#: the phase vocabulary, in canonical lifecycle order
PHASE_ORDER: Tuple[str, ...] = (
    "admission", "execute", "certify", "commit", "propagate"
)


@dataclass
class TxnContext:
    """Mutable per-attempt state threaded through the pipeline phases.

    One context is built per attempt of one user transaction; phases
    communicate through it instead of through local variables, so a
    strategy's lifecycle can be recomposed without rewriting its logic.

    Attributes:
        origin: submitting node id.
        ops: the transaction's operations.
        label: workload label for traces.
        txn: the live :class:`Transaction` (set by ``admission``/``execute``).
        touched: nodes that acquired locks / wrote WAL entries for this
            transaction — the release set for commit/abort.
        finished: set by a phase to short-circuit the remaining phases
            (the transaction reached a terminal state early).
        scratch: strategy-private storage (quorum participants, buffered
            write sets, certification verdicts, ...).
    """

    origin: int
    ops: List[Operation]
    label: str
    txn: Optional[Transaction] = None
    touched: List[Any] = field(default_factory=list)
    finished: bool = False
    scratch: Dict[str, Any] = field(default_factory=dict)


def describe_pipeline(system_cls) -> Tuple[str, ...]:
    """The phase composition a strategy class declares (for docs/CLI)."""
    return tuple(getattr(system_cls, "PHASES", ()))
