"""Replication strategies — the paper's Table 1, executable.

Four baseline strategies span the taxonomy:

* :class:`~repro.replication.eager_group.EagerGroupSystem` — update anywhere,
  all replicas updated inside the originating transaction (one distributed
  transaction, N object owners).
* :class:`~repro.replication.eager_master.EagerMasterSystem` — updates go to
  each object's master first, still inside one transaction.
* :class:`~repro.replication.lazy_group.LazyGroupSystem` — update anywhere,
  commit locally, propagate asynchronously; timestamp mismatches at replicas
  are *reconciliations* (Figure 4).
* :class:`~repro.replication.lazy_master.LazyMasterSystem` — updates execute
  at object masters, then propagate to read-only slaves; stale propagations
  are suppressed by timestamp, never reconciled.

Supporting modules: :mod:`~repro.replication.reconciliation` (the Oracle-7
style rule library for resolving lazy-group conflicts),
:mod:`~repro.replication.quorum` (Gifford weighted voting, used by eager
systems for availability), and :mod:`~repro.replication.convergent`
(section 6's Lotus Notes / Microsoft Access convergence schemes).

The proposed two-tier scheme lives in :mod:`repro.core`.
"""

from repro.replication.base import (
    NodeContext,
    ReplicatedSystem,
    ReplicaUpdate,
    SystemSpec,
)
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem

__all__ = [
    "NodeContext",
    "ReplicatedSystem",
    "ReplicaUpdate",
    "SystemSpec",
    "EagerGroupSystem",
    "EagerMasterSystem",
    "LazyGroupSystem",
    "LazyMasterSystem",
]
