"""Replication strategies — the paper's Table 1 and beyond, executable.

Every strategy expresses its transaction lifecycle as a **commit-protocol
pipeline** — an ordered subset of the phases ``admission, execute,
certify, commit, propagate`` (see :mod:`~repro.replication.pipeline`).

Four baseline strategies span the paper's taxonomy:

* :class:`~repro.replication.eager_group.EagerGroupSystem` — update anywhere,
  all replicas updated inside the originating transaction (one distributed
  transaction, N object owners).
* :class:`~repro.replication.eager_master.EagerMasterSystem` — updates go to
  each object's master first, still inside one transaction.
* :class:`~repro.replication.lazy_group.LazyGroupSystem` — update anywhere,
  commit locally, propagate asynchronously; timestamp mismatches at replicas
  are *reconciliations* (Figure 4).
* :class:`~repro.replication.lazy_master.LazyMasterSystem` — updates execute
  at object masters, then propagate to read-only slaves; stale propagations
  are suppressed by timestamp, never reconciled.

Two certification-based strategies probe the design space the paper's
taxonomy leaves open — trading distributed locking for clean commit-time
aborts:

* :class:`~repro.replication.deferred_update.DeferredUpdateSystem` —
  lock-free local execution, write-sets certified by a sequencer node,
  certified updates applied at every replica (Pacheco/Sciascia/Pedone).
* :class:`~repro.replication.scar.ScarSystem` — stale-tolerant local
  reads, commit-time logical-timestamp validation at the master copies,
  asynchronous replica refresh (Lu/Yu/Madden).

Supporting modules: :mod:`~repro.replication.reconciliation` (the Oracle-7
style rule library for resolving lazy-group conflicts),
:mod:`~repro.replication.quorum` (Gifford weighted voting, used by eager
systems for availability), and :mod:`~repro.replication.convergent`
(section 6's Lotus Notes / Microsoft Access convergence schemes).

The proposed two-tier scheme lives in :mod:`repro.core`.  The canonical
name -> class registry is ``repro.harness.experiment.STRATEGY_CLASSES``;
the CLI, docs, and comparison harness all derive their strategy lists
from it.
"""

from repro.replication.base import (
    NodeContext,
    ReplicatedSystem,
    ReplicaUpdate,
    SystemSpec,
)
from repro.replication.deferred_update import DeferredUpdateSystem
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.replication.pipeline import PHASE_ORDER, describe_pipeline
from repro.replication.scar import ScarSystem

__all__ = [
    "NodeContext",
    "PHASE_ORDER",
    "ReplicatedSystem",
    "ReplicaUpdate",
    "SystemSpec",
    "DeferredUpdateSystem",
    "EagerGroupSystem",
    "EagerMasterSystem",
    "LazyGroupSystem",
    "LazyMasterSystem",
    "ScarSystem",
    "describe_pipeline",
]
