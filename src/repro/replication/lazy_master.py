"""Lazy master replication: masters serialize, slaves follow.

Section 5: "Master replication assigns an owner to each object... Updates
are first done by the owner and then propagated to other replicas."  The
root transaction executes against *master copies* (an RPC per remote-owned
object), commits, and then "the node originating the transaction broadcasts
the replica updates to all the slave replicas".

Slave updates are timestamped so replicas converge: "If the record timestamp
is newer than a replica update timestamp, the update is 'stale' and can be
ignored."  Lazy master therefore has **no reconciliations** — conflicts
surface as waits/deadlocks on the master copies (equation 19) and stale
propagations are silently suppressed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import DeadlockAbort, MasterUnavailableError, ReplicationError
from repro.network.message import Message
from repro.replication.base import NodeContext, ReplicatedSystem, ReplicaUpdate
from repro.replication.eager_master import round_robin_ownership
from repro.replication.pipeline import TxnContext
from repro.storage.lock_manager import LockMode
from repro.txn.ops import Operation


class LazyMasterSystem(ReplicatedSystem):
    """Master-owned lazy replication (Table 1: lazy / master).

    Args:
        ownership: map oid -> master node id (default round-robin).
        require_connected_masters: when True (default), a transaction whose
            object masters are unreachable aborts immediately — "A node
            wanting to update an object must be connected to the object
            owner" — which is exactly why lazy master alone cannot serve
            mobile nodes.
        master_broadcasts: choose between the paper's two propagation
            designs.  False (default): "the node originating the transaction
            broadcasts the replica updates to all the slave replicas after
            the master transaction commits."  True: "Alternatively, each
            master node sends replica updates to slaves in sequential commit
            order" — each owner ships the updates for the objects it
            masters, so one FIFO stream per master guarantees in-order
            arrival and no stale suppressions on that stream.
    """

    name = "lazy-master"
    #: execute against master copies, commit, then lazy slave streams;
    #: stale suppression at the slaves plays the certification role
    PHASES = ("admission", "execute", "commit", "propagate")

    def __init__(
        self,
        *args,
        ownership: Optional[Dict[int, int]] = None,
        require_connected_masters: bool = True,
        master_broadcasts: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.ownership = (
            dict(ownership)
            if ownership is not None
            # placement default: round-robin under full replication, the
            # HRW winner of each object's replica set under partial
            else {
                oid: self.placement.master(oid)
                for oid in range(self.db_size)
            }
        )
        if not self.placement.is_full:
            for oid, master in self.ownership.items():
                if not self._node_holds(oid, master):
                    raise MasterUnavailableError(
                        f"object {oid} is mastered at node {master}, which "
                        "holds no replica of it under the configured "
                        "placement"
                    )
        self.require_connected_masters = require_connected_masters
        self.master_broadcasts = master_broadcasts
        self.blocked_by_disconnect = 0

    def _register_probes(self, telemetry) -> None:
        super()._register_probes(telemetry)
        # stale propagated updates suppressed at replicas: the lazy-master
        # analogue of lazy-group's reconciliations
        telemetry.counter_rate("stale_rate", lambda: self.metrics.stale_updates)

    def master_of(self, oid: int) -> NodeContext:
        return self.nodes[self.ownership[oid]]

    # ------------------------------------------------------------------ #
    # root (master) transaction
    # ------------------------------------------------------------------ #

    def _phase_admission(self, ctx: TxnContext) -> None:
        masters_needed = {
            self.ownership[op.oid] for op in ctx.ops if not op.is_read
        }
        if self.require_connected_masters and not self._reachable(
            ctx.origin, masters_needed
        ):
            self.blocked_by_disconnect += 1
            ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
            self._abort_everywhere(ctx.txn, [], reason="master-unreachable")
            ctx.finished = True
            return
        ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
        # unlike the group strategies the release set starts empty: a
        # committed-read origin that masters nothing holds nothing
        ctx.touched = []

    def _phase_execute(self, ctx: TxnContext):
        origin, txn, involved = ctx.origin, ctx.txn, ctx.touched
        try:
            for op in ctx.ops:
                master = self.master_of(op.oid)
                if op.is_read:
                    # committed-read at the local replica unless read locks
                    # are on, in which case the read-lock RPC goes to the
                    # master ("a read action should send read-lock RPCs to
                    # the masters of any objects it reads").  A node holding
                    # no replica of the object reads at the master too.
                    if self.nodes[origin].tm.lock_reads:
                        target = master
                        if target not in involved:
                            involved.append(target)  # S locks need releasing
                    elif self._node_holds(op.oid, origin):
                        target = self.nodes[origin]
                    else:
                        target = master
                    yield from target.tm.execute(txn, op)
                    continue
                if (
                    master.node_id != origin
                    and self.network.message_delay > 0
                ):
                    # RPC round to the owner
                    yield self.engine.timeout(self.network.message_delay)
                if master not in involved:
                    involved.append(master)
                yield from master.tm.execute(txn, op)
                self.metrics.actions += 1
        except DeadlockAbort as exc:
            self._abort_everywhere(txn, involved, reason=exc.reason)
            ctx.finished = True

    def _phase_commit(self, ctx: TxnContext) -> None:
        self._commit_everywhere(ctx.txn, ctx.touched)

    def _phase_propagate(self, ctx: TxnContext) -> None:
        self._propagate_to_slaves(ctx.origin, ctx.txn)

    def _reachable(self, origin: int, masters: set) -> bool:
        if not self.network.is_connected(origin):
            return False
        return all(self.network.is_connected(m) for m in masters)

    def _propagate_to_slaves(self, origin: int, txn) -> None:
        """Ship committed master updates to every other replica.

        Default: one broadcast from the originator per destination.  With
        ``master_broadcasts``: each object's master sends its own slice, so
        every (master, slave) pair is a FIFO commit-order stream.
        """
        if not txn.updates:
            return
        updates = [
            ReplicaUpdate(
                oid=u.oid,
                old_ts=u.old_ts,
                new_ts=u.new_ts,
                new_value=u.new_value,
                op=u.op,
                root_txn_id=txn.txn_id,
            )
            for u in txn.updates
        ]
        if self.placement.is_full:
            recipient_ids = range(self.num_nodes)
        else:
            # a partial placement prunes the broadcast: recipients come
            # from the updates' replica sets plus any nodes outside the
            # placement scope (two-tier mobiles hold full replicas), not
            # a scan over all N nodes — ascending order keeps delivery
            # deterministic
            holders = set(range(self.placement.num_nodes, self.num_nodes))
            for u in updates:
                holders.update(self.placement.replicas(u.oid))
            recipient_ids = sorted(holders)
        for node_id in recipient_ids:
            # a node that masters every written object is already current;
            # everyone else (including the originator, for remote-mastered
            # objects) gets a slave refresh — N transactions total (Table 1).
            needed = [
                u for u in updates
                if self.ownership[u.oid] != node_id
                and self._node_holds(u.oid, node_id)
            ]
            if not needed:
                continue
            if self.master_broadcasts:
                by_master: Dict[int, List[ReplicaUpdate]] = {}
                for update in needed:
                    by_master.setdefault(
                        self.ownership[update.oid], []
                    ).append(update)
                for master_id, slice_updates in by_master.items():
                    self.network.send(
                        master_id, node_id, "slave-update",
                        (slice_updates, 0),
                    )
            else:
                self.network.send(
                    origin, node_id, "slave-update", (needed, 0)
                )

    # ------------------------------------------------------------------ #
    # slave application
    # ------------------------------------------------------------------ #

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind != "slave-update":
            raise ReplicationError(f"lazy-master got unexpected {msg.kind}")
        updates, attempt = msg.payload
        return self._apply_slave_updates(node, updates, attempt)

    def _apply_slave_updates(
        self, node: NodeContext, updates: List[ReplicaUpdate], attempt: int
    ):
        txn = node.tm.begin(label="slave-update")
        try:
            for update in updates:
                if self.ownership[update.oid] == node.node_id:
                    continue  # master copy is the source of truth already
                if not self.placement.is_full and not self._node_holds(
                    update.oid, node.node_id
                ):
                    # migrated away while the update was in flight; the
                    # record travelled to its new holder at move time
                    continue
                event = node.locks.acquire(txn, update.oid, LockMode.EXCLUSIVE)
                if event is not None:
                    yield event
                    txn.require_active()
                local = node.store.read(update.oid)
                if local.ts >= update.new_ts:
                    if local.ts != update.new_ts:
                        self.metrics.stale_updates += 1
                    continue
                yield from node.tm.execute_install(
                    txn, update.oid, update.new_value, update.new_ts,
                    root_txn_id=(
                        update.root_txn_id if update.root_txn_id >= 0 else None
                    ),
                )
                self.metrics.actions += 1
            node.tm.commit(txn)
            self.metrics.replica_updates += 1
        except DeadlockAbort as exc:
            node.tm.abort(txn, reason=exc.reason)
            if attempt < self.max_retries:
                self.metrics.restarts += 1
                self.network.send(
                    node.node_id, node.node_id, "slave-update",
                    (updates, attempt + 1),
                )
