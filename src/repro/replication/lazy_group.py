"""Lazy group replication: update anywhere, propagate asynchronously.

Figure 1's "three-node lazy transaction (actually 3 transactions)": the root
transaction commits locally, then one replica-update transaction per remote
node carries the new values, each tagged with the *old* object timestamp the
root saw (Figure 4).  A receiver whose replica timestamp no longer matches
has detected two transactions racing — that update is "dangerous" and counts
as a **reconciliation**, resolved by a pluggable
:class:`~repro.replication.reconciliation.ReconciliationRule`.

Modes:

* default — ship values; conflicts resolved by the rule (timestamp wins by
  default: converges but loses updates);
* ``propagate_ops=True`` — ship the operations themselves so commutative
  workloads merge instead of losing updates (the section 6 "commutative
  updates" transaction form).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import DeadlockAbort, ReplicationError
from repro.network.message import Message
from repro.replication.base import NodeContext, ReplicatedSystem, ReplicaUpdate
from repro.replication.pipeline import TxnContext
from repro.replication.reconciliation import (
    Outcome,
    ReconciliationRule,
    default_rule,
)
from repro.storage.lock_manager import LockMode
from repro.txn.ops import Operation


class LazyGroupSystem(ReplicatedSystem):
    """Update-anywhere lazy replication (Table 1: lazy / group)."""

    name = "lazy-group"
    #: local execution, local commit, asynchronous propagation; conflicts
    #: are certified *after the fact* by the Figure 4 timestamp test at
    #: each receiving replica, not by a pre-commit phase
    PHASES = ("execute", "commit", "propagate")

    def __init__(
        self,
        *args,
        rule: Optional[ReconciliationRule] = None,
        propagate_ops: bool = False,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.rule = rule if rule is not None else default_rule()
        self.propagate_ops = propagate_ops
        self.replica_updates_dropped = 0

    def _register_probes(self, telemetry) -> None:
        super()._register_probes(telemetry)
        # the lazy-group danger signals: replica-update application rate
        # and updates abandoned after exhausting deadlock retries
        telemetry.counter_rate(
            "replica_update_rate", lambda: self.metrics.replica_updates
        )
        telemetry.gauge(
            "replica_updates_dropped", lambda: self.replica_updates_dropped
        )

    # ------------------------------------------------------------------ #
    # root transaction
    # ------------------------------------------------------------------ #

    def _phase_execute(self, ctx: TxnContext):
        origin = ctx.origin
        node = self.nodes[origin]
        txn = ctx.txn = node.tm.begin(label=ctx.label)
        # the origin is always in the release set; under a partial
        # placement ops on non-resident objects execute at the object's
        # master replica, which then joins the set
        touched = ctx.touched = [node]
        try:
            if self.placement.is_full:
                yield from self._execute_local(node, txn, ctx.ops)
            else:
                for op in ctx.ops:
                    if self._node_holds(op.oid, origin):
                        site = node
                    else:
                        site = self.nodes[self.placement.master(op.oid)]
                        if site not in touched:
                            touched.append(site)
                        if self.network.message_delay > 0:
                            # RPC round to the remote replica (same cost
                            # model as lazy-master's remote-owner writes)
                            yield self.engine.timeout(
                                self.network.message_delay
                            )
                    yield from site.tm.execute(txn, op)
                    if not op.is_read:
                        self.metrics.actions += 1
        except DeadlockAbort as exc:
            # local-only undo, in site order (predates _abort_everywhere's
            # mark-first ordering; kept verbatim — goldens pin the traces)
            for site in touched:
                site.tm.finish_abort_local(txn)
            txn.mark_aborted(self.engine.now, reason=exc.reason)
            self.metrics.aborts += 1
            self._trace("abort", txn=txn.txn_id, reason=exc.reason,
                        node=txn.origin_node, start=txn.start_time)
            ctx.finished = True

    def _phase_commit(self, ctx: TxnContext) -> None:
        self._commit_everywhere(ctx.txn, ctx.touched)

    def _phase_propagate(self, ctx: TxnContext) -> None:
        self._propagate(ctx.origin, ctx.txn)

    def _propagate(self, origin: int, txn) -> None:
        """One lazy replica-update transaction per remote node (Figure 1).

        Under a partial placement each update travels only to the other
        members of its object's replica set; nodes holding none of the
        written objects receive nothing.
        """
        if not txn.updates:
            return
        updates = [
            ReplicaUpdate(
                oid=u.oid,
                old_ts=u.old_ts,
                new_ts=u.new_ts,
                new_value=u.new_value,
                op=u.op,
                root_txn_id=txn.txn_id,
            )
            for u in txn.updates
        ]
        if self.placement.is_full:
            for node in self.nodes:
                if node.node_id == origin:
                    continue
                self.network.send(
                    origin, node.node_id, "replica-update", (updates, 0)
                )
            return
        # where did the root execute each update?  that replica is already
        # current and must not receive a redundant (and reconciliation-
        # counting) copy.  Recipients come from the updates' replica sets
        # (O(updates·k)) rather than a scan over all N nodes, so a commit
        # in a 10k-node system costs what its replica sets cost — sends
        # stay in ascending node order to keep delivery deterministic.
        placement = self.placement
        extra_holders = range(placement.num_nodes, self.num_nodes)
        needed_by_node: dict = {}
        for u in updates:
            executed_at = (
                origin if self._node_holds(u.oid, origin)
                else placement.master(u.oid)
            )
            holders = placement.replicas(u.oid)
            for node_id in (
                holders if not extra_holders
                else list(holders) + list(extra_holders)
            ):
                if node_id != executed_at:
                    needed_by_node.setdefault(node_id, []).append(u)
        for node_id in sorted(needed_by_node):
            self.network.send(
                origin, node_id, "replica-update", (needed_by_node[node_id], 0)
            )

    # ------------------------------------------------------------------ #
    # replica application
    # ------------------------------------------------------------------ #

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind != "replica-update":
            raise ReplicationError(f"lazy-group got unexpected {msg.kind}")
        updates, attempt = msg.payload
        return self._apply_replica_updates(node, updates, attempt)

    def _apply_replica_updates(
        self, node: NodeContext, updates: List[ReplicaUpdate], attempt: int
    ):
        """Apply one replica-update transaction, counting reconciliations.

        Figure 4's test: if the local replica's timestamp equals the update's
        old timestamp, the update is safe; otherwise it is dangerous and the
        reconciliation rule decides its fate.
        """
        txn = node.tm.begin(label="replica-update")
        try:
            for update in updates:
                if not self.placement.is_full and not self._node_holds(
                    update.oid, node.node_id
                ):
                    # the object migrated away while this update was in
                    # flight; the record travelled to its new holder at
                    # move time, so applying here would resurrect a copy
                    # the directory no longer routes to
                    continue
                event = node.locks.acquire(txn, update.oid, LockMode.EXCLUSIVE)
                if event is not None:
                    yield event
                    txn.require_active()
                local = node.store.read(update.oid)
                if local.ts == update.new_ts:
                    continue  # duplicate delivery; already applied
                if local.ts == update.old_ts:
                    # safe: replica exactly at the version the root saw
                    yield from self._apply(node, txn, update, merge=False)
                    continue
                self.metrics.reconciliations += 1
                outcome = self.rule.resolve(local, update)
                self._trace(
                    "reconcile", node=node.node_id, oid=update.oid,
                    txn=update.root_txn_id, outcome=outcome.value,
                )
                if outcome is Outcome.APPLY:
                    yield from self._apply(node, txn, update, merge=False)
                elif outcome is Outcome.MERGE:
                    yield from self._apply(node, txn, update, merge=True)
                else:
                    # DISCARD and DEFER keep the local version; DEFER
                    # represents an unresolved conflict awaiting a human
                    # (system delusion shows up as divergence in the
                    # end-state check).  Either way the rejection itself is
                    # recorded as precedence evidence for the verifier.
                    if self.history is not None and update.root_txn_id >= 0:
                        self.history.record_conflict(
                            node.node_id, update.root_txn_id, update.oid
                        )
            node.tm.commit(txn)
            self.metrics.replica_updates += 1
        except DeadlockAbort as exc:
            node.tm.abort(txn, reason=exc.reason)
            if attempt < self.max_retries:
                self.metrics.restarts += 1
                self.network.send(
                    node.node_id, node.node_id, "replica-update",
                    (updates, attempt + 1),
                )
            else:
                self.replica_updates_dropped += 1

    def _apply(self, node: NodeContext, txn, update: ReplicaUpdate, merge: bool):
        root = update.root_txn_id if update.root_txn_id >= 0 else None
        wants_transform = merge or (
            self.propagate_ops
            and update.op is not None
            and update.op.commutative
        )
        if wants_transform and update.op is not None:
            yield from node.tm.execute_transform(
                txn, update.op, update.new_ts, root_txn_id=root
            )
        else:
            yield from node.tm.execute_install(
                txn, update.oid, update.new_value, update.new_ts,
                root_txn_id=root,
            )
        self.metrics.actions += 1
