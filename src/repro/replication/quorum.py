"""Weighted voting / quorum consensus (Gifford 1979).

Section 3: "For high availability, eager replication systems allow updates
among members of the quorum or cluster [Gifford], [Garcia-Molina]."  This
module implements the vote arithmetic those schemes rest on:

* every replica holds a number of *votes*;
* a read needs a read quorum ``r``, a write needs a write quorum ``w``;
* correctness requires ``r + w > V`` (every read quorum intersects every
  write quorum) and ``w > V/2`` (two write quorums always intersect).

:class:`QuorumConfig` validates those invariants, answers "is this set of
live replicas a quorum?", and computes the availability probability of a
configuration given independent node up-probabilities — useful for the
availability-versus-consistency trade-off experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, Sequence, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class QuorumConfig:
    """A weighted-voting configuration.

    Attributes:
        votes: votes held by each replica, indexed by node id.
        read_quorum: votes needed to read (``r``).
        write_quorum: votes needed to write (``w``).
    """

    votes: Tuple[int, ...]
    read_quorum: int
    write_quorum: int

    def __post_init__(self) -> None:
        if not self.votes:
            raise ConfigurationError("quorum needs at least one replica")
        if any(v < 0 for v in self.votes):
            raise ConfigurationError("votes must be non-negative")
        total = self.total_votes
        if total <= 0:
            raise ConfigurationError("total votes must be positive")
        if self.read_quorum + self.write_quorum <= total:
            raise ConfigurationError(
                f"r + w must exceed V: {self.read_quorum} + "
                f"{self.write_quorum} <= {total}"
            )
        if 2 * self.write_quorum <= total:
            raise ConfigurationError(
                f"2w must exceed V: 2*{self.write_quorum} <= {total}"
            )
        if not (0 < self.read_quorum <= total and 0 < self.write_quorum <= total):
            raise ConfigurationError("quorums must be in (0, V]")

    @property
    def total_votes(self) -> int:
        return sum(self.votes)

    @classmethod
    def majority(cls, num_nodes: int) -> "QuorumConfig":
        """One vote per node, read and write both require a strict majority."""
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        quorum = num_nodes // 2 + 1
        return cls(votes=tuple([1] * num_nodes), read_quorum=quorum,
                   write_quorum=quorum)

    @classmethod
    def read_one_write_all(cls, num_nodes: int) -> "QuorumConfig":
        """ROWA: reads touch any single replica, writes touch all."""
        if num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        return cls(votes=tuple([1] * num_nodes), read_quorum=1,
                   write_quorum=num_nodes)

    # ------------------------------------------------------------------ #
    # quorum membership
    # ------------------------------------------------------------------ #

    def votes_of(self, nodes: Iterable[int]) -> int:
        return sum(self.votes[n] for n in nodes)

    def is_read_quorum(self, live: int | Iterable[int]) -> bool:
        """``live`` is either a vote count (uniform votes) or a node set."""
        return self._count(live) >= self.read_quorum

    def is_write_quorum(self, live: int | Iterable[int]) -> bool:
        return self._count(live) >= self.write_quorum

    def _count(self, live: int | Iterable[int]) -> int:
        if isinstance(live, int):
            return live
        return self.votes_of(live)

    # ------------------------------------------------------------------ #
    # availability analysis
    # ------------------------------------------------------------------ #

    def write_availability(self, up_probability: float) -> float:
        """Probability a write quorum exists with i.i.d. node availability.

        Exact enumeration over up/down subsets — configurations here are
        small (the paper's experiments use <= ~32 nodes, enumeration over
        subsets of distinct vote weights stays tractable because uniform
        votes reduce to a binomial sum).
        """
        if not 0.0 <= up_probability <= 1.0:
            raise ConfigurationError("up_probability must be in [0, 1]")
        if len(set(self.votes)) == 1:
            return self._uniform_availability(up_probability, self.write_quorum)
        return self._subset_availability(up_probability, self.write_quorum)

    def read_availability(self, up_probability: float) -> float:
        """Probability a read quorum exists with i.i.d. node availability."""
        if not 0.0 <= up_probability <= 1.0:
            raise ConfigurationError("up_probability must be in [0, 1]")
        if len(set(self.votes)) == 1:
            return self._uniform_availability(up_probability, self.read_quorum)
        return self._subset_availability(up_probability, self.read_quorum)

    def _uniform_availability(self, p: float, quorum: int) -> float:
        from math import comb

        n = len(self.votes)
        weight = self.votes[0]
        needed = -(-quorum // weight)  # ceil division: nodes needed
        return sum(
            comb(n, k) * p**k * (1 - p) ** (n - k) for k in range(needed, n + 1)
        )

    def _subset_availability(self, p: float, quorum: int) -> float:
        n = len(self.votes)
        total = 0.0
        for k in range(n + 1):
            for subset in combinations(range(n), k):
                if self.votes_of(subset) >= quorum:
                    total += p**k * (1 - p) ** (n - k)
        return total


def best_majority_votes(weights: Sequence[float]) -> Dict[int, int]:
    """Gifford-style vote assignment proportional to replica reliability.

    A pragmatic heuristic: scale reliabilities to small integer votes (most
    reliable node gets the most votes), guaranteeing a positive total.
    """
    if not weights:
        raise ConfigurationError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ConfigurationError("weights must be non-negative")
    top = max(weights)
    if top == 0:
        return {i: 1 for i in range(len(weights))}
    return {i: max(1, round(3 * w / top)) for i, w in enumerate(weights)}
