"""Non-transactional convergent replication — the paper's section 6.

"One strategy is to abandon serializability for the convergence property: if
no new transactions arrive, and if all the nodes are connected together,
they will all converge to the same replicated state after exchanging replica
updates. The resulting state contains the committed appends, and the most
recent replacements, but updates may be lost."

Three update forms are implemented, mirroring Lotus Notes plus the
commutative third form the paper proposes:

1. **Timestamped append** — notes accumulate in timestamp order; converges
   and loses nothing (the set union of appends is order-independent).
2. **Timestamped replace** — last timestamp wins; converges but **loses
   updates** (the checkbook lost-update problem).
3. **Commutative increment** — transformations applied in any order;
   converges without losing effects.

Replicas synchronize pairwise on demand (Microsoft Access style: "These
version vectors are exchanged on demand or periodically. The most recent
update wins each pairwise exchange. Rejected updates are reported."), with
version vectors distinguishing genuinely concurrent replaces (a *conflict*,
one side's update lost) from stale echoes (harmless).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.storage.versioning import Timestamp, VersionVector


@dataclass(frozen=True)
class Note:
    """An appended item (Lotus Notes append form).  Ordered by timestamp."""

    ts: Timestamp
    body: Any


@dataclass
class ConvergentRecord:
    """One object's state at one replica."""

    oid: int
    value: Any = 0
    ts: Timestamp = Timestamp.ZERO
    vector: VersionVector = field(default_factory=VersionVector)
    notes: Tuple[Note, ...] = ()
    increments: Dict[Timestamp, float] = field(default_factory=dict)

    def materialized(self) -> Any:
        """Replace-value plus the sum of all witnessed increments.

        Objects that never received an increment keep their raw value, so
        non-numeric values (titles, tuples) pass through untouched.
        """
        if not self.increments:
            return self.value
        return self.value + sum(self.increments.values())


class ConvergentReplica:
    """One replica in a section-6 style convergent system."""

    def __init__(self, node_id: int, db_size: int, initial_value: Any = 0):
        if db_size <= 0:
            raise ConfigurationError("db_size must be positive")
        self.node_id = node_id
        self.db_size = db_size
        self._counter = itertools.count(1)
        self.records: Dict[int, ConvergentRecord] = {
            oid: ConvergentRecord(oid=oid, value=initial_value)
            for oid in range(db_size)
        }
        self.lost_updates = 0
        self.conflicts_reported: List[Tuple[int, Timestamp, Timestamp]] = []

    def _tick(self) -> Timestamp:
        return Timestamp(next(self._counter), self.node_id)

    def _witness(self, ts: Timestamp) -> None:
        current = next(self._counter)
        if ts.counter >= current:
            self._counter = itertools.count(ts.counter + 1)
        else:
            self._counter = itertools.count(current)

    # ------------------------------------------------------------------ #
    # local update forms
    # ------------------------------------------------------------------ #

    def replace(self, oid: int, value: Any) -> Timestamp:
        """Form 2: timestamped replace."""
        record = self.records[oid]
        ts = self._tick()
        record.value = value
        record.ts = ts
        record.vector = record.vector.bump(self.node_id)
        return ts

    def append(self, oid: int, body: Any) -> Timestamp:
        """Form 1: timestamped append (notes stored in timestamp order)."""
        record = self.records[oid]
        ts = self._tick()
        record.notes = tuple(sorted(record.notes + (Note(ts, body),),
                                    key=lambda n: n.ts))
        record.vector = record.vector.bump(self.node_id)
        return ts

    def increment(self, oid: int, delta: float) -> Timestamp:
        """Form 3: commutative increment, keyed by unique timestamp so
        re-delivery is idempotent."""
        record = self.records[oid]
        ts = self._tick()
        record.increments[ts] = delta
        record.vector = record.vector.bump(self.node_id)
        return ts

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def value(self, oid: int) -> Any:
        return self.records[oid].materialized()

    def notes(self, oid: int) -> Tuple[Note, ...]:
        return self.records[oid].notes

    # ------------------------------------------------------------------ #
    # pairwise synchronization
    # ------------------------------------------------------------------ #

    def sync_from(self, other: "ConvergentReplica") -> int:
        """Pull ``other``'s state into this replica (one direction).

        Returns the number of objects whose state changed here.  Concurrent
        replaces (version vectors incomparable) are resolved by timestamp —
        the losing side's update is *lost* and counted/reported, exactly the
        behaviour the paper criticises in pure-timestamp schemes.
        """
        changed = 0
        for oid, theirs in other.records.items():
            mine = self.records[oid]
            before = (mine.value, mine.ts, mine.notes, dict(mine.increments))

            # appends and increments: pure unions, never conflict
            merged_notes = {note.ts: note for note in mine.notes}
            for note in theirs.notes:
                merged_notes.setdefault(note.ts, note)
            mine.notes = tuple(sorted(merged_notes.values(), key=lambda n: n.ts))
            for ts, delta in theirs.increments.items():
                mine.increments.setdefault(ts, delta)

            # replace: most recent timestamp wins the pairwise exchange
            if theirs.ts > mine.ts:
                concurrent = mine.vector.concurrent_with(theirs.vector)
                if concurrent and mine.ts != Timestamp.ZERO:
                    # my committed replace is overwritten: lost update
                    self.lost_updates += 1
                    self.conflicts_reported.append((oid, mine.ts, theirs.ts))
                mine.value = theirs.value
                mine.ts = theirs.ts
                self._witness(theirs.ts)
            mine.vector = mine.vector.merge(theirs.vector)

            after = (mine.value, mine.ts, mine.notes, dict(mine.increments))
            if after != before:
                changed += 1
        return changed

    def snapshot(self) -> Dict[int, Any]:
        return {oid: rec.materialized() for oid, rec in self.records.items()}


def exchange(a: ConvergentReplica, b: ConvergentReplica) -> None:
    """One bidirectional Access-style exchange between two replicas."""
    a.sync_from(b)
    b.sync_from(a)


def fully_sync(replicas: List[ConvergentReplica], rounds: Optional[int] = None) -> int:
    """Gossip every pair until quiescent (or for a fixed number of rounds).

    Returns the number of rounds performed.  With all nodes connected this
    converges — the paper's convergence property — in at most
    ``ceil(log2(len(replicas)))`` all-pairs rounds; we just iterate until a
    full round changes nothing.
    """
    if rounds is not None:
        for _ in range(rounds):
            for a, b in itertools.combinations(replicas, 2):
                exchange(a, b)
        return rounds
    performed = 0
    while True:
        performed += 1
        changed = 0
        for a, b in itertools.combinations(replicas, 2):
            changed += a.sync_from(b)
            changed += b.sync_from(a)
        if changed == 0:
            return performed


def diverged_objects(replicas: List[ConvergentReplica]) -> int:
    """Objects whose materialized value differs across replicas."""
    if len(replicas) < 2:
        return 0
    first = replicas[0].snapshot()
    rest = [r.snapshot() for r in replicas[1:]]
    return sum(
        1
        for oid, val in first.items()
        if any(snap[oid] != val for snap in rest)
    )
