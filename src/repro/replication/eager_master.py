"""Eager master replication: synchronous updates routed through owners.

"Having a master for each object helps eager replication avoid deadlocks.
Suppose each object has an owner node. Updates go to this node first and are
then applied to the replicas. If each transaction updated a single replica,
the object-master approach would eliminate all deadlocks." (section 3)

The mechanism: all writers of object ``o`` must first lock ``o`` at its
master, so per-object conflicts serialize at a single node; only
multi-object transactions can still deadlock (through inconsistent lock
orders across different masters).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exceptions import DeadlockAbort, MasterUnavailableError
from repro.replication.base import NodeContext, ReplicatedSystem
from repro.replication.pipeline import TxnContext
from repro.txn.ops import Operation


def round_robin_ownership(db_size: int, num_nodes: int) -> Dict[int, int]:
    """Default ownership map: object ``oid`` is mastered at ``oid % nodes``."""
    return {oid: oid % num_nodes for oid in range(db_size)}


def single_master_ownership(db_size: int, master: int = 0) -> Dict[int, int]:
    """Every object mastered at one node — the Data Cycle architecture
    [Herman] the paper compares two-tier against."""
    return {oid: master for oid in range(db_size)}


class EagerMasterSystem(ReplicatedSystem):
    """Master-owned eager replication (Table 1: eager / master).

    Args:
        ownership: map oid -> master node id.  Defaults to round-robin,
            spreading mastership evenly, which is the fair comparison point
            for the group variant.
    """

    name = "eager-master"
    #: master-first locking *is* the certification; no post-commit traffic
    PHASES = ("admission", "execute", "commit")

    def __init__(self, *args, ownership: Optional[Dict[int, int]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.ownership = (
            dict(ownership)
            if ownership is not None
            else self._placement_ownership()
        )
        self._validate_ownership()

    def _placement_ownership(self) -> Dict[int, int]:
        """Default ownership from the placement directory.

        Full replication yields the classic round-robin ``oid % nodes``;
        a partial placement masters each object at the first node of its
        replica set (the HRW winner), so the owner always holds a copy.
        """
        return {
            oid: self.placement.master(oid) for oid in range(self.db_size)
        }

    def _validate_ownership(self) -> None:
        for oid in range(self.db_size):
            master = self.ownership.get(oid)
            if master is None or not 0 <= master < self.num_nodes:
                raise MasterUnavailableError(
                    f"object {oid} has no valid master (got {master!r})"
                )
            if not self._node_holds(oid, master):
                raise MasterUnavailableError(
                    f"object {oid} is mastered at node {master}, which holds "
                    "no replica of it under the configured placement"
                )

    def master_of(self, oid: int) -> NodeContext:
        return self.nodes[self.ownership[oid]]

    # ------------------------------------------------------------------ #
    # transaction execution
    # ------------------------------------------------------------------ #

    def _phase_admission(self, ctx: TxnContext) -> None:
        if not self._all_masters_reachable(ctx.origin, ctx.ops):
            ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
            self._abort_everywhere(ctx.txn, [], reason="master-unreachable")
            ctx.finished = True
            return
        ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
        # the origin is always in the release set: serializable reads take
        # shared locks there even when the transaction writes elsewhere
        ctx.touched = [self.nodes[ctx.origin]]

    def _phase_execute(self, ctx: TxnContext):
        origin, txn, touched = ctx.origin, ctx.txn, ctx.touched
        try:
            for op in ctx.ops:
                if op.is_read:
                    site = (
                        self.nodes[origin]
                        if self._node_holds(op.oid, origin)
                        else self.master_of(op.oid)
                    )
                    yield from site.tm.execute(txn, op)
                    continue
                # master first — the deadlock-avoidance mechanism — then the
                # remaining replicas, all inside this transaction.  Under a
                # partial placement "the remaining replicas" is the object's
                # replica set, not the whole system.
                master = self.master_of(op.oid)
                replicas = [master] + [
                    n for n in self._replica_nodes(op.oid)
                    if n.node_id != master.node_id
                ]
                for node in replicas:
                    if node not in touched:
                        touched.append(node)
                    yield from node.tm.execute(txn, op)
                    self.metrics.actions += 1
        except DeadlockAbort as exc:
            self._abort_everywhere(txn, touched, reason=exc.reason)
            ctx.finished = True

    def _phase_commit(self, ctx: TxnContext) -> None:
        self._commit_everywhere(ctx.txn, ctx.touched)

    def _replica_nodes(self, oid: int) -> List[NodeContext]:
        """The nodes holding ``oid``, in node-id order."""
        if self.placement.is_full:
            return self.nodes
        return [
            self.nodes[node_id]
            for node_id in sorted(self.placement.replicas(oid))
        ]

    def _all_masters_reachable(self, origin: int, ops: Sequence[Operation]) -> bool:
        """Eager master needs every replica up (no quorum variant here):
        the transaction writes all replicas synchronously.  A partial
        placement narrows "every replica" to the replica sets of the
        objects this transaction writes."""
        if not self.network.is_connected(origin):
            return False
        if self.placement.is_full:
            return all(
                self.network.is_connected(node.node_id) for node in self.nodes
            )
        return all(
            self.network.is_connected(node_id)
            for op in ops
            if not op.is_read
            for node_id in self.placement.replicas(op.oid)
        )

    def handle_message(self, node: NodeContext, msg):  # pragma: no cover
        raise MasterUnavailableError(
            f"eager-master uses no asynchronous messages, got {msg.kind}"
        )
