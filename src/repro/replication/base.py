"""Shared machinery for all replicated systems.

A :class:`ReplicatedSystem` owns the engine, the network, the metrics, a
*global* deadlock detector (eager transactions hold locks at many nodes, so
waits-for cycles span nodes), and one :class:`NodeContext` per node — the
node's store, lock manager, WAL, Lamport clock, and transaction manager.

Concrete strategies describe the full life of one user transaction — from
``begin`` to commit/abort plus whatever propagation the strategy
prescribes — as a **commit-protocol pipeline**: a ``PHASES`` tuple naming
the phases (admission, execute, certify, commit, propagate) plus one
``_phase_<name>`` method per entry (see :mod:`repro.replication.pipeline`).
The base class's ``_run`` drives the composition.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import (
    ConfigurationError,
    CrashAbort,
    DeadlockAbort,
    InvalidStateError,
)
from repro.faults.plan import FaultPlan
from repro.metrics.counters import Metrics
from repro.network.message import Message
from repro.network.network import Network
from repro.placement import FullReplication, Placement
from repro.replication.pipeline import TxnContext
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.protocol import EngineProtocol
from repro.sim.random_source import RandomSource
from repro.storage.deadlock import DeadlockDetector, youngest_victim
from repro.storage.lock_manager import LockManager
from repro.storage.store import ObjectStore, divergence
from repro.storage.versioning import Timestamp, TimestampGenerator
from repro.storage.wal import WriteAheadLog
from repro.txn.manager import TransactionManager
from repro.txn.ops import Operation
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class SystemSpec:
    """Everything needed to construct a replicated system.

    This is the one constructor argument every strategy accepts —
    ``EagerGroupSystem(SystemSpec(num_nodes=3, db_size=100), quorum=True)``
    — replacing the long positional/keyword tail the classes had grown.
    Strategy-specific options (quorum, ownership, reconciliation rule, ...)
    stay keyword arguments on the concrete class; the spec carries what is
    common to all five.

    Args:
        num_nodes: nodes in the system.
        db_size: objects in the database (Table 2's DB_Size).
        action_time: virtual seconds per update action.
        message_delay: network propagation delay (0 in the paper's model).
        seed: master seed for all random streams.
        lock_reads: take shared locks on reads (full serializability).
        retry_deadlocks: resubmit user transactions that fall to deadlock.
            ``None`` (default) keeps each strategy's own policy — two-tier
            bases retry, everything else surfaces deadlocks as failures.
        max_retries: bound on resubmissions, preventing livelock.
        victim_policy: deadlock victim selection (ablation hook).
        initial_value: starting value of every object.
        engine: share an existing engine instead of creating one.
        record_history: record reads/writes for serializability checking.
        tracer: optional :class:`~repro.sim.tracing.Tracer`.
        telemetry: optional :class:`~repro.obs.samplers.Telemetry` handle.
        placement: which nodes hold each object.  ``None`` means
            :class:`~repro.placement.FullReplication` — every node
            materialises the whole database, the paper's model.  A partial
            placement (``HashShardPlacement``, ``DirectoryPlacement``)
            shards the stores and restricts propagation to each object's
            replica set.
        eager_stores: materialise every resident record up front under a
            partial placement instead of lazily on first touch.  The two
            modes are observationally identical (the parity tests pin
            byte-identical fingerprints); eager trades memory for
            allocation-free reads and is the pre-lazy behaviour.  Full
            replication is always eager.
        faults: optional :class:`~repro.faults.plan.FaultPlan`; when given
            (and non-empty) the system installs a
            :class:`~repro.faults.injector.FaultInjector` at construction,
            exposed as ``system.fault_injector``.
    """

    num_nodes: int
    db_size: int
    action_time: float = 0.01
    message_delay: float = 0.0
    seed: int = 0
    lock_reads: bool = False
    retry_deadlocks: Optional[bool] = None
    max_retries: int = 25
    victim_policy: Callable = youngest_victim
    initial_value: Any = 0
    engine: Optional[EngineProtocol] = None
    record_history: bool = False
    tracer: Any = None
    telemetry: Any = None
    placement: Optional[Placement] = None
    faults: Optional[FaultPlan] = None
    eager_stores: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )
        if self.placement is not None and not isinstance(
            self.placement, Placement
        ):
            raise ConfigurationError(
                "placement must be a Placement spec (e.g. FullReplication() "
                f"or HashShardPlacement(k)), got {self.placement!r}"
            )

    #: the positional order of the legacy ``ReplicatedSystem(...)`` signature
    _LEGACY_FIELDS = (
        "num_nodes", "db_size", "action_time", "message_delay", "seed",
        "lock_reads", "retry_deadlocks", "max_retries", "victim_policy",
        "initial_value", "engine", "record_history", "tracer", "telemetry",
    )

    @classmethod
    def from_legacy(cls, *args, **kwargs) -> "SystemSpec":
        """Adapt the pre-SystemSpec constructor arguments (shim support)."""
        if len(args) > len(cls._LEGACY_FIELDS):
            raise ConfigurationError(
                f"too many positional arguments ({len(args)}) for the legacy "
                "system signature"
            )
        merged: Dict[str, Any] = dict(zip(cls._LEGACY_FIELDS, args))
        for name, value in kwargs.items():
            if name in merged:
                raise ConfigurationError(
                    f"argument {name!r} given positionally and by keyword"
                )
            merged[name] = value
        if "num_nodes" not in merged or "db_size" not in merged:
            raise ConfigurationError(
                "num_nodes and db_size are required to build a system"
            )
        return cls(**merged)


@dataclass(frozen=True)
class ReplicaUpdate:
    """One object update shipped to a replica (the Figure 4 message body).

    ``old_ts`` is the timestamp the root transaction observed before writing;
    the receiver compares it with the replica's current timestamp to decide
    whether applying is safe.  ``op`` rides along so commutative-propagation
    modes can reapply the transformation instead of installing the value.
    """

    oid: int
    old_ts: Timestamp
    new_ts: Timestamp
    new_value: Any
    op: Optional[Operation] = None
    root_txn_id: int = -1  # user transaction this update belongs to


@dataclass
class NodeContext:
    """Everything one node owns."""

    node_id: int
    store: ObjectStore
    locks: LockManager
    wal: WriteAheadLog
    clock: TimestampGenerator
    tm: TransactionManager


class ReplicatedSystem:
    """Base class for the Table 1 strategies.

    Construct with a single :class:`SystemSpec`::

        system = LazyGroupSystem(SystemSpec(num_nodes=3, db_size=100))

    Strategy-specific options stay keyword arguments on the concrete class
    (``EagerGroupSystem(spec, quorum=True)``).  The old positional
    signature (``LazyGroupSystem(num_nodes, db_size, ...)``) still works
    through a deprecation shim, emitting a :class:`DeprecationWarning`.

    The spec's ``placement`` decides which nodes hold each object: under
    :class:`~repro.placement.FullReplication` (the default) every node
    materialises the whole database and the system behaves exactly as the
    paper's model; under a partial placement each node materialises only
    its shard, operations route via ``placement.replicas(oid)`` /
    ``placement.master(oid)``, and propagation stays inside each object's
    replica set.
    """

    name = "abstract"
    #: the strategy's commit-protocol pipeline: phase names, in order; each
    #: entry ``p`` is backed by a ``_phase_<p>`` method (see
    #: :mod:`repro.replication.pipeline`)
    PHASES: tuple = ()
    #: strategy policy when ``spec.retry_deadlocks`` is None — two-tier
    #: bases retry ("resubmitted and reprocessed until [they succeed]"),
    #: every other strategy surfaces deadlocks as failed transactions
    default_retry_deadlocks = False

    def __init__(self, spec: Optional[SystemSpec] = None, *args, **kwargs):
        if not isinstance(spec, SystemSpec):
            if spec is not None:
                args = (spec,) + args
            warnings.warn(
                f"{type(self).__name__}(num_nodes, db_size, ...) is "
                "deprecated; pass a SystemSpec as the only constructor "
                "argument",
                DeprecationWarning,
                stacklevel=3,
            )
            spec = SystemSpec.from_legacy(*args, **kwargs)
        elif args or kwargs:
            raise ConfigurationError(
                "a SystemSpec cannot be mixed with legacy constructor "
                f"arguments (got extras {list(kwargs) or list(args)!r})"
            )
        self.spec = spec
        self.engine = spec.engine or Engine()
        self.tracer = spec.tracer  # optional repro.sim.tracing.Tracer
        self.telemetry = spec.telemetry  # optional repro.obs.samplers.Telemetry
        if spec.record_history:
            from repro.verify.history import History

            self.history: Optional["History"] = History()
        else:
            self.history = None
        self.num_nodes = spec.num_nodes
        self.db_size = spec.db_size
        self.action_time = spec.action_time
        self.retry_deadlocks = (
            self.default_retry_deadlocks
            if spec.retry_deadlocks is None
            else spec.retry_deadlocks
        )
        self.max_retries = spec.max_retries
        self.metrics = Metrics()
        self.rng = RandomSource(spec.seed)
        self.detector = DeadlockDetector(victim_policy=spec.victim_policy)
        self.crashed: set = set()
        # per-node live user-transaction processes, insertion-ordered so a
        # crash interrupts them deterministically (a set of Process objects
        # would iterate in id() order, which differs run to run)
        self._live_processes: Dict[int, Dict[Process, None]] = {}
        # interned per-origin process names: submit() runs once per user
        # transaction, so the f-string was measurable at high TPS
        self._txn_proc_names: Dict[int, str] = {}
        self._rejected_proc_names: Dict[int, str] = {}
        # bound phase methods, resolved lazily on the first transaction so
        # subclass __init__ state (ownership maps, quorum configs) exists
        self._pipeline: Optional[List[Callable]] = None
        self.placement_spec = (
            spec.placement if spec.placement is not None else FullReplication()
        )
        self.placement = self.placement_spec.bind(
            self._placement_scope_nodes(), spec.db_size
        )
        self.network = Network(
            self.engine, spec.num_nodes, message_delay=spec.message_delay
        )
        self.nodes: List[NodeContext] = [
            self._make_node(
                i, spec.db_size, spec.action_time, spec.lock_reads,
                spec.initial_value,
            )
            for i in range(spec.num_nodes)
        ]
        for node in self.nodes:
            self.network.register(node.node_id, self._make_handler(node))
        if spec.telemetry is not None:
            self._register_probes(spec.telemetry)
        self.fault_injector = None
        if spec.faults is not None and not spec.faults.empty:
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(self, spec.faults).install()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _placement_scope_nodes(self) -> int:
        """Nodes the placement spans (two-tier narrows this to the base
        tier; mobiles always hold full replicas)."""
        return self.num_nodes

    def _resident_oids(self, node_id: int):
        """Objects materialised at ``node_id`` (None means the whole db)."""
        if node_id >= self.placement.num_nodes:
            # outside the placement scope — a two-tier mobile: full replica
            return None
        return self.placement.objects_at(node_id)

    def _make_store(self, node_id: int, db_size: int, initial_value: Any) -> ObjectStore:
        placement = self.placement
        if node_id >= placement.num_nodes or placement.is_full:
            # full replica (the classic model, or a two-tier mobile)
            return ObjectStore(node_id, db_size, initial_value=initial_value)
        if self.spec.eager_stores:
            return ObjectStore(
                node_id, db_size, initial_value=initial_value,
                oids=placement.objects_at(node_id),
            )
        # lazy shard: records materialise on first touch, so building a
        # node never enumerates the object space — a 10k-node / 1M-object
        # system allocates only what its transactions actually read
        return ObjectStore(
            node_id, db_size, initial_value=initial_value,
            resident=lambda oid, _p=placement, _n=node_id: _p.is_replica(oid, _n),
        )

    def _node_holds(self, oid: int, node_id: int) -> bool:
        """Does ``node_id`` materialise a copy of ``oid``?"""
        if node_id >= self.placement.num_nodes:
            return True
        return self.placement.is_replica(oid, node_id)

    def _make_node(
        self,
        node_id: int,
        db_size: int,
        action_time: float,
        lock_reads: bool,
        initial_value: Any,
    ) -> NodeContext:
        store = self._make_store(node_id, db_size, initial_value)
        locks = LockManager(
            self.engine,
            node_id,
            self.detector,
            on_wait=self._on_wait,
            on_deadlock=self._on_deadlock,
            telemetry=self.telemetry,
        )
        wal = WriteAheadLog()
        clock = TimestampGenerator(node_id)
        tm = TransactionManager(
            self.engine,
            node_id,
            store,
            locks,
            wal,
            clock,
            action_time=action_time,
            lock_reads=lock_reads,
            history=self.history,
        )
        return NodeContext(
            node_id=node_id, store=store, locks=locks, wal=wal, clock=clock, tm=tm
        )

    def _make_handler(self, node: NodeContext):
        def handler(msg: Message):
            if node.node_id in self.crashed:
                # a disconnect schedule reconnected a crashed node: it
                # cannot process traffic yet, so re-park for redelivery at
                # recovery (no resend — parking schedules nothing)
                self.network.park_inbound(msg)
                return None
            self.metrics.messages += 1
            if msg.kind == "record-transfer":
                # shard migration payload — strategy-agnostic, handled here
                # so every system supports moves without its own plumbing
                oid, value, ts = msg.payload
                node.store.adopt(oid, value, ts)
                return None
            return self.handle_message(node, msg)

        return handler

    # ------------------------------------------------------------------ #
    # metric hooks
    # ------------------------------------------------------------------ #

    def _register_probes(self, telemetry) -> None:
        """Install the standard telemetry probes for this system.

        Subclasses extend (call ``super()._register_probes(telemetry)``)
        with strategy-specific series.  Probes are closures over live
        structures, evaluated only at sample ticks — nothing here runs on
        the transaction hot path.
        """
        telemetry.gauge("engine_queue", lambda: self.engine.queued_events)
        telemetry.gauge(
            "lock_wait_queue",
            lambda: sum(n.locks.total_queued() for n in self.nodes),
        )
        telemetry.gauge(
            "wal_active_txns",
            lambda: sum(n.wal.pending_transactions() for n in self.nodes),
        )
        # per-node series are priceless at demo scale and pure overhead at
        # sweep scale; cap them so a 10k-node system doesn't register tens
        # of thousands of gauges
        per_node = self.num_nodes <= 64
        if per_node:
            for node in self.nodes:
                telemetry.gauge(
                    f"wal_active_txns/node{node.node_id}",
                    node.wal.pending_transactions,
                )
        # counts *materialised* records: under lazy stores this tracks what
        # the run actually touched, not the placement's nominal shard sizes
        telemetry.gauge(
            "resident_objects",
            lambda: sum(len(n.store) for n in self.nodes),
        )
        if per_node:
            for node in self.nodes:
                telemetry.gauge(
                    f"resident_objects/node{node.node_id}", node.store.__len__
                )
        self.network.bind_telemetry(telemetry)
        telemetry.counter_rate("commit_rate", lambda: self.metrics.commits)
        telemetry.counter_rate("abort_rate", lambda: self.metrics.aborts)
        telemetry.counter_rate("deadlock_rate", lambda: self.metrics.deadlocks)
        telemetry.counter_rate("wait_rate", lambda: self.metrics.waits)
        telemetry.counter_rate(
            "reconciliation_rate", lambda: self.metrics.reconciliations
        )

    def _trace(self, category: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.engine.now, category, **detail)

    def _on_wait(self, txn: Transaction) -> None:
        self.metrics.waits += 1
        self._trace("wait", txn=txn.txn_id, node=txn.origin_node)

    def _on_deadlock(self, txn: Transaction) -> None:
        self.metrics.deadlocks += 1
        self._trace("deadlock", txn=txn.txn_id, node=txn.origin_node)

    # ------------------------------------------------------------------ #
    # strategy interface
    # ------------------------------------------------------------------ #

    def submit(self, origin: int, ops: Sequence[Operation], label: str = "") -> Process:
        """Submit a user transaction at node ``origin``.

        Returns the process running the transaction's full lifecycle; its
        value is the final :class:`Transaction` object.

        Submitting at a crashed node fails fast: the transaction is born
        aborted with reason ``"node-down"`` (counted separately from
        deadlock/acceptance aborts, which measure contention).
        """
        if origin in self.crashed:
            name = self._rejected_proc_names.get(origin)
            if name is None:
                name = self._rejected_proc_names[origin] = (
                    f"{self.name}-rejected@{origin}"
                )
            return self.engine._spawn(
                self._reject_at_crashed_node(origin, label), name
            )
        name = self._txn_proc_names.get(origin)
        if name is None:
            name = self._txn_proc_names[origin] = f"{self.name}-txn@{origin}"
        proc = self.engine._spawn(
            self._run_with_retries(origin, list(ops), label), name
        )
        self._track_live(origin, proc)
        return proc

    def _track_live(self, origin: int, proc: Process) -> None:
        table = self._live_processes.setdefault(origin, {})
        table[proc] = None
        proc.add_callback(lambda _event: table.pop(proc, None))

    def _reject_at_crashed_node(self, origin: int, label: str):
        txn = self.nodes[origin].tm.begin(label=label)
        txn.mark_aborted(self.engine.now, reason="node-down")
        self.metrics.bump("rejected_node_down")
        self._trace("abort", txn=txn.txn_id, reason="node-down",
                    node=origin, start=txn.start_time)
        return txn
        yield  # pragma: no cover - marks this function as a generator

    def _run_with_retries(self, origin: int, ops: List[Operation], label: str):
        attempts = 0
        while True:
            txn = yield from self._run(origin, ops, label)
            if txn.state.value != "aborted" or not self.retry_deadlocks:
                return txn
            if txn.abort_reason != "deadlock":
                return txn
            if origin in self.crashed:
                # never resubmit at a node that went down mid-flight
                return txn
            attempts += 1
            if attempts > self.max_retries:
                return txn
            self.metrics.restarts += 1
            # brief randomized backoff so the retry does not collide
            # deterministically with the transaction that killed it
            backoff = self.rng.stream("retry-backoff").uniform(0, self.action_time * 2)
            yield self.engine.timeout(backoff)

    def _run(self, origin: int, ops: List[Operation], label: str):
        """One attempt at the transaction: drive the phase pipeline.

        Each ``PHASES`` entry resolves to a ``_phase_<name>`` method, which
        is either a plain function (instantaneous bookkeeping) or a
        generator (anything that waits); the driver adds *no* engine
        interaction of its own, so a composition is byte-for-byte the
        inlined lifecycle it replaced.  A phase setting ``ctx.finished``
        short-circuits the rest (admission failure, deadlock, certification
        abort).
        """
        pipeline = self._pipeline
        if pipeline is None:
            pipeline = self._pipeline = [
                getattr(self, f"_phase_{name}") for name in self.PHASES
            ]
            if not pipeline:
                raise NotImplementedError(
                    f"{type(self).__name__} declares no PHASES"
                )
        ctx = TxnContext(origin=origin, ops=ops, label=label)
        for phase in pipeline:
            step = phase(ctx)
            if step is not None:
                yield from step
            if ctx.finished:
                break
        return ctx.txn

    def handle_message(self, node: NodeContext, msg: Message):
        """Process an incoming network message at ``node``.

        May return a generator, which the network runs as a process.
        """
        raise NotImplementedError(f"{self.name} received unexpected {msg.kind}")

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    def _execute_local(self, node: NodeContext, txn: Transaction,
                       ops: Sequence[Operation]):
        """Run ``ops`` for ``txn`` at one node, counting actions."""
        for op in ops:
            yield from node.tm.execute(txn, op)
            if not op.is_read:
                self.metrics.actions += 1

    def _abort_everywhere(self, txn: Transaction, nodes: Sequence[NodeContext],
                          reason: str) -> None:
        txn.mark_aborted(self.engine.now, reason=reason)
        for node in nodes:
            node.tm.finish_abort_local(txn)
        self.metrics.aborts += 1
        self._trace("abort", txn=txn.txn_id, reason=reason,
                    node=txn.origin_node, start=txn.start_time)

    def _commit_everywhere(self, txn: Transaction,
                           nodes: Sequence[NodeContext]) -> None:
        txn.mark_committed(self.engine.now)
        for node in nodes:
            node.tm.finish_commit_local(txn)
        self.metrics.commits += 1
        if self.history is not None:
            self.history.mark_committed(txn.txn_id)
        self._trace("commit", txn=txn.txn_id, origin=txn.origin_node,
                    start=txn.start_time)

    # ------------------------------------------------------------------ #
    # crash & recovery (fault injection)
    # ------------------------------------------------------------------ #

    def crash_node(self, node_id: int) -> int:
        """Fail-stop ``node_id``: discard in-flight work, go dark.

        In-flight user transactions rooted at the node are interrupted with
        :class:`CrashAbort`, which each strategy's abort path turns into a
        WAL undo; whatever those interrupts cannot reach (a process that is
        runnable at this very instant) is rolled back by the WAL's own
        crash pass, and the crashed log refuses further writes.  Messages
        to and from the node park in its store-and-forward queues.  Returns
        the number of writes the crash discarded.
        """
        node = self.nodes[node_id]
        if node_id in self.crashed:
            raise InvalidStateError(f"node {node_id} is already crashed")
        self.crashed.add(node_id)
        self.network.disconnect(node_id)
        interrupted = 0
        for proc in list(self._live_processes.get(node_id, {})):
            if proc.kill(CrashAbort(f"node {node_id} crashed")):
                interrupted += 1
        lost_writes = node.wal.crash(node.store)
        self.metrics.bump("crashes")
        self._trace("crash", node=node_id, interrupted=interrupted,
                    undone=lost_writes)
        return lost_writes

    def recover_node(self, node_id: int) -> None:
        """Bring a crashed node back and replay its parked queues."""
        node = self.nodes[node_id]
        if node_id not in self.crashed:
            raise InvalidStateError(f"node {node_id} is not crashed")
        node.wal.begin_recovery()
        node.wal.complete_recovery()
        self.crashed.discard(node_id)
        self.metrics.bump("recoveries")
        self._trace("recover", node=node_id)
        if self.network.is_connected(node_id):
            # a disconnect schedule reconnected the node while it was down;
            # its parked traffic still needs the replay
            self.network.flush_parked(node_id)
        else:
            self.network.reconnect(node_id)

    # ------------------------------------------------------------------ #
    # shard migration (directory placements)
    # ------------------------------------------------------------------ #

    def migrate(self, oid: int, src: int, dst: int) -> None:
        """Move ``oid``'s replica from ``src`` to ``dst`` live.

        Rebinds the directory first (so routing, residency predicates and
        propagation immediately see the new replica set), then ships the
        record itself to ``dst`` as a ``record-transfer`` message through
        the normal network path — it takes the same delay, faults and
        store-and-forward parking as any replica update — and evicts the
        source copy.  If ``dst`` commits a write while the transfer is in
        flight, the transfer's older timestamp loses at adoption (the
        Thomas write rule), same as a stale replica update.

        Raises :class:`ConfigurationError` for placements without a
        directory (full, hash) or invalid ``src``/``dst`` membership, and
        :class:`InvalidStateError` when either endpoint is crashed.
        """
        if src in self.crashed or dst in self.crashed:
            down = src if src in self.crashed else dst
            raise InvalidStateError(
                f"cannot migrate object {oid}: node {down} is crashed"
            )
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ConfigurationError(
                f"migration endpoints ({src}, {dst}) outside the system's "
                f"{len(self.nodes)} nodes"
            )
        record = self.nodes[src].store.read(oid)
        value, ts = record.value, record.ts
        # an in-flight transaction may have written the record without
        # committing yet; ship the committed before-image from its WAL
        # entry so an abort (or a crash at src) cannot leak the tentative
        # value to the destination
        pending = self.nodes[src].wal.pending_before(oid)
        if pending is not None:
            value, ts = pending
        self.placement.move(oid, src, dst)
        # master strategies snapshot oid -> owner at construction; rebind
        # the moved entry so writes keep routing to a node that holds a
        # copy (the directory preserves the master position on move)
        ownership = getattr(self, "ownership", None)
        if ownership is not None and ownership.get(oid) == src:
            ownership[oid] = self.placement.master(oid)
        self.network.send(
            src, dst, "record-transfer", (oid, value, ts)
        )
        self.nodes[src].store.evict(oid)
        self.metrics.bump("migrations")
        self._trace("migrate", oid=oid, src=src, dst=dst)

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (delegates to the engine)."""
        return self.engine.run(until=until)

    def quiesce(self, max_time: float = 1e9) -> float:
        """Run until no events remain (all propagation drained)."""
        return self.engine.run(until=None if self.engine.peek() else max_time)

    def divergence(self) -> int:
        """Objects whose value differs across their replicas (delusion).

        Under full replication every node holds every object, so this is a
        straight store comparison.  Under a partial placement each object
        is compared only across its own replica set (plus any nodes outside
        the placement scope, i.e. two-tier mobiles, which hold full
        replicas) — non-replicas never materialise the object and have no
        opinion about its value.
        """
        placement = self.placement
        if placement.is_full:
            return divergence(node.store for node in self.nodes)
        stores = [node.store for node in self.nodes]
        extra_holders = tuple(range(placement.num_nodes, self.num_nodes))
        differing = 0
        for oid in range(self.db_size):
            holders = placement.replicas(oid) + extra_holders
            if len(holders) < 2:
                continue
            try:
                # peek, not value: probing must not materialise records in
                # lazy stores (a full-keyspace sweep would allocate db_size
                # records per node and defeat the laziness)
                values = [stores[node_id].peek(oid) for node_id in holders]
            except KeyError:
                raise InvalidStateError(
                    f"object {oid} is missing from one of its replica "
                    f"stores {holders} — placement and stores disagree"
                )
            first = values[0]
            if any(value != first for value in values[1:]):
                differing += 1
        return differing

    def converged(self) -> bool:
        return self.divergence() == 0

    def snapshot(self, node_id: int = 0) -> Dict[int, Any]:
        return self.nodes[node_id].store.snapshot()

    def nominal_resident_counts(self) -> List[int]:
        """Logically resident objects per node — the placement's shard
        sizes, independent of how many records a lazy store has actually
        materialised.  Nodes outside the placement scope (two-tier
        mobiles) hold full replicas."""
        counts = list(self.placement.resident_counts())
        counts.extend(
            [self.db_size] * (self.num_nodes - self.placement.num_nodes)
        )
        return counts

    def materialized_counts(self) -> List[int]:
        """Records actually allocated per node (== nominal when eager)."""
        return [node.store.materialized for node in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} nodes={self.num_nodes} "
            f"db={self.db_size} t={self.engine.now:.4g}>"
        )
