"""Eager group replication: update anywhere, synchronously, everywhere.

Figure 1's "three-node eager transaction": each action is applied at every
replica *inside* the originating transaction, so the transaction holds locks
at all nodes, its size is ``Actions x Nodes``, and its duration stretches to
``Actions x Nodes x Action_Time`` (equation 6).  Deadlocks — including
cross-node cycles — are the failure mode; there are never reconciliations.

Availability: "Simple eager replication systems prohibit updates if any node
is disconnected. For high availability, eager replication systems allow
updates among members of the quorum" — pass ``quorum=True`` to update the
connected majority and let disconnected nodes catch up through the network's
store-and-forward queues when they return.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import DeadlockAbort, MasterUnavailableError
from repro.network.message import Message
from repro.replication.base import NodeContext, ReplicatedSystem, ReplicaUpdate
from repro.replication.pipeline import TxnContext
from repro.replication.quorum import QuorumConfig
from repro.txn.ops import Operation
from repro.txn.transaction import Transaction


class EagerGroupSystem(ReplicatedSystem):
    """Update-anywhere eager replication (Table 1: eager / group).

    Args:
        quorum: allow updates among a connected majority (Gifford voting).
        parallel_updates: footnote 2's alternate model — each action is
            broadcast to all replicas *in parallel*, so per-action elapsed
            time stays ``Action_Time`` regardless of N and the deadlock
            explosion drops from cubic to quadratic (see
            :func:`repro.analytic.eager.parallel_update_deadlock_rate`).
    """

    name = "eager-group"
    #: synchronous writes everywhere, locking as certification; quorum
    #: catch-up is the only post-commit propagation
    PHASES = ("admission", "execute", "commit", "propagate")

    def __init__(self, *args, quorum: bool = False,
                 parallel_updates: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.quorum_enabled = quorum
        self.quorum_config = QuorumConfig.majority(self.num_nodes)
        self.parallel_updates = parallel_updates
        self.blocked_by_disconnect = 0

    # ------------------------------------------------------------------ #
    # transaction execution (the pipeline phases)
    # ------------------------------------------------------------------ #

    def _phase_admission(self, ctx: TxnContext) -> None:
        participants = self._participants(ctx.origin, ctx.ops)
        if participants is None:
            # cannot form a quorum (or, without quorums, somebody is down)
            self.blocked_by_disconnect += 1
            ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
            self._abort_everywhere(ctx.txn, [], reason="no-quorum")
            ctx.finished = True
            return
        ctx.scratch["participants"] = participants
        ctx.txn = self.nodes[ctx.origin].tm.begin(label=ctx.label)
        # the origin is always in the release set: serializable reads take
        # shared locks there even when the transaction writes elsewhere
        ctx.touched = [self.nodes[ctx.origin]]

    def _phase_execute(self, ctx: TxnContext):
        origin, txn, touched = ctx.origin, ctx.txn, ctx.touched
        participants = ctx.scratch["participants"]
        is_full = self.placement.is_full
        if not is_full:
            participant_ids = {node.node_id for node in participants}
        try:
            for op in ctx.ops:
                if op.is_read:
                    yield from self._read_site(origin, op.oid).tm.execute(
                        txn, op
                    )
                    continue
                # under a partial placement only the object's replicas are
                # updated; with full replication this is all participants.
                # Sites come from the op's replica set (O(k log k)), not a
                # scan of all participants — same order as the old filter:
                # origin first, then ascending node id.
                if is_full:
                    sites = participants
                else:
                    replica_ids = self.placement.replicas(op.oid)
                    sites = [
                        self.nodes[node_id]
                        for node_id in sorted(replica_ids)
                        if node_id in participant_ids and node_id != origin
                    ]
                    if origin in replica_ids:
                        sites.insert(0, self.nodes[origin])
                for node in sites:
                    if node not in touched:
                        touched.append(node)
                if self.parallel_updates:
                    yield from self._apply_parallel(txn, op, sites)
                else:
                    # Figure 1: Write A at every node, then Write B at every
                    # node, ... — sequential replica updates, origin first.
                    for node in sites:
                        yield from node.tm.execute(txn, op)
                        self.metrics.actions += 1
        except DeadlockAbort as exc:
            self._abort_everywhere(txn, touched, reason=exc.reason)
            ctx.finished = True

    def _phase_commit(self, ctx: TxnContext) -> None:
        self._commit_everywhere(ctx.txn, ctx.touched)

    def _phase_propagate(self, ctx: TxnContext) -> None:
        self._send_catchup(ctx.origin, ctx.txn, ctx.scratch["participants"])

    def _read_site(self, origin: int, oid: int) -> NodeContext:
        """Committed-read site: the origin when it holds a replica of the
        object, otherwise the object's (deterministic) master replica."""
        if self._node_holds(oid, origin):
            return self.nodes[origin]
        return self.nodes[self.placement.master(oid)]

    def _apply_parallel(self, txn: Transaction, op, participants):
        """Footnote 2: broadcast one action to every replica at once.

        All replica updates for this action run as concurrent processes; the
        action's elapsed time is the slowest replica (``Action_Time`` plus
        any lock waits), not the sum.  A deadlock at any replica aborts the
        whole transaction: the abort path releases locks and fails the
        sibling updates' queued requests, so no straggler leaks.
        """
        def replica_update(node: NodeContext):
            yield from node.tm.execute(txn, op)
            self.metrics.actions += 1

        processes = [
            self.engine.process(
                replica_update(node), name=f"parallel-{txn.txn_id}@{node.node_id}"
            )
            for node in participants
        ]
        for process in processes:
            yield process  # re-raises DeadlockAbort from any replica

    def _participants(
        self, origin: int, ops: Sequence[Operation]
    ) -> List[NodeContext] | None:
        """Nodes reachable for this transaction, or None if it must fail.

        Full replication: the classic check — everybody connected, or a
        connected majority when quorums are on.  Partial placement: each
        *written object's replica set* must be fully connected (or hold a
        majority of its own k replicas when quorums are on); the write loop
        then picks each op's replica sites out of the returned list.
        """
        if not self.network.is_connected(origin):
            return None
        connected = [
            node for node in self.nodes if self.network.is_connected(node.node_id)
        ]
        if self.placement.is_full:
            if len(connected) == self.num_nodes:
                ordered = [self.nodes[origin]] + [
                    n for n in self.nodes if n.node_id != origin
                ]
                return ordered
            if not self.quorum_enabled:
                return None
            if not self.quorum_config.is_write_quorum(len(connected)):
                return None
            ordered = [self.nodes[origin]] + [
                n for n in connected if n.node_id != origin
            ]
            return ordered
        connected_ids = {node.node_id for node in connected}
        for oid in {op.oid for op in ops if not op.is_read}:
            replicas = self.placement.replicas(oid)
            live = sum(1 for r in replicas if r in connected_ids)
            if self.quorum_enabled:
                if not QuorumConfig.majority(len(replicas)).is_write_quorum(live):
                    return None
            elif live < len(replicas):
                return None
        return [self.nodes[origin]] + [
            n for n in connected if n.node_id != origin
        ]

    # ------------------------------------------------------------------ #
    # quorum catch-up
    # ------------------------------------------------------------------ #

    def _send_catchup(self, origin: int, txn: Transaction,
                      participants: Sequence[NodeContext]) -> None:
        """Queue committed updates for replicas outside the write quorum.

        "When a node joins the quorum, the quorum sends the new node all
        replica updates since the node was disconnected."  The network's
        store-and-forward queues deliver these on reconnect.  Under a
        partial placement each absent node receives only the updates for
        objects it replicates.
        """
        if len(participants) == self.num_nodes:
            return
        participant_ids = {node.node_id for node in participants}
        updates = [
            ReplicaUpdate(
                oid=u.oid,
                old_ts=u.old_ts,
                new_ts=u.new_ts,
                new_value=u.new_value,
                op=u.op,
                root_txn_id=txn.txn_id,
            )
            for u in txn.updates
        ]
        for node in self.nodes:
            if node.node_id in participant_ids:
                continue
            if self.placement.is_full:
                needed = updates
            else:
                needed = [
                    u for u in updates
                    if self._node_holds(u.oid, node.node_id)
                ]
                if not needed:
                    continue
            self.network.send(origin, node.node_id, "catchup", needed)

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind != "catchup":
            raise MasterUnavailableError(f"unexpected message {msg.kind}")
        return self._apply_catchup(node, msg.payload)

    def _apply_catchup(self, node: NodeContext, updates: List[ReplicaUpdate]):
        """Install quorum catch-up updates as a housekeeping transaction."""
        txn = node.tm.begin(label="catchup")
        try:
            for update in updates:
                if not self.placement.is_full and not self._node_holds(
                    update.oid, node.node_id
                ):
                    # migrated away while the catch-up was parked; the
                    # record travelled to its new holder at move time
                    continue
                if node.store.timestamp(update.oid) >= update.new_ts:
                    self.metrics.stale_updates += 1
                    continue
                yield from node.tm.execute_install(
                    txn, update.oid, update.new_value, update.new_ts,
                    root_txn_id=(
                        update.root_txn_id if update.root_txn_id >= 0 else None
                    ),
                )
                self.metrics.actions += 1
            node.tm.commit(txn)
            self.metrics.replica_updates += 1
        except DeadlockAbort as exc:
            node.tm.abort(txn, reason=exc.reason)
            # housekeeping transactions restart transparently
            self.network.send(node.node_id, node.node_id, "catchup", updates)
