"""Deferred update replication: execute locally, certify, then apply.

*Parallel Deferred Update Replication* (Pacheco, Sciascia & Pedone; see
PAPERS.md): a transaction executes **lock-free** at its origin against
committed replica state, buffering its writes and recording the version of
everything it observed.  At commit time the read/write set is broadcast —
here through a sequencer/certifier node that defines the total order — and
**certified**: if any observed version has been superseded by a
concurrently certified transaction, the transaction aborts (first
committer wins); otherwise its write-set is applied at every replica.

Two properties make this the first post-1996 strategy in the zoo:

* **no user-transaction locking** — conflicts cost a clean certification
  abort instead of a distributed deadlock, so the danger rate escapes the
  cube law (a certification abort needs only *two* overlapping
  transactions, like lazy-group's reconciliations, but unlike those it
  never loses an update);
* **read-only transactions skip certification** entirely and commit after
  one local round — the PDUR fast path.

The certifier assigns each certified write a timestamp from its own
Lamport clock, so write timestamps are globally monotone in certification
order and replicas converge under duplication/reordering through the same
stale-suppression test lazy-master uses.  Certification itself is
modelled as instantaneous at message delivery (the parallel-certification
result: independent transactions certify concurrently, so the certifier
adds latency but no serial bottleneck residence).

The commit-protocol pipeline: ``execute -> certify -> commit``, with the
apply leg running as housekeeping transactions at each replica.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import DeadlockAbort, ReplicationError
from repro.network.message import Message
from repro.replication.base import NodeContext, ReplicatedSystem, ReplicaUpdate
from repro.replication.pipeline import TxnContext
from repro.storage.lock_manager import LockMode
from repro.storage.versioning import Timestamp


class DeferredUpdateSystem(ReplicatedSystem):
    """Deferred update replication with parallel certification.

    Args:
        certifier: node hosting the certification service (default 0).
            Requests and decisions travel the normal network path, so the
            certifier inherits every fault the plan throws at its node —
            crash parks certification until recovery, partition stalls it
            until heal.
    """

    name = "deferred-update"
    PHASES = ("execute", "certify", "commit")

    def __init__(self, *args, certifier: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0 <= certifier < self.num_nodes:
            raise ReplicationError(
                f"certifier node {certifier} outside the system's "
                f"{self.num_nodes} nodes"
            )
        self.certifier_id = certifier
        #: the certifier's version table: oid -> last certified write ts.
        #: An absent entry means "still at its initial version", which any
        #: observed genesis timestamp trivially matches.
        self._cert_versions: Dict[int, Timestamp] = {}
        #: origin-side decision events, keyed by txn id
        self._decisions: Dict[int, object] = {}
        self.certified = 0
        self.replica_updates_dropped = 0

    def _register_probes(self, telemetry) -> None:
        super()._register_probes(telemetry)
        telemetry.counter_rate(
            "cert_abort_rate",
            lambda: self.metrics.extra.get("cert_aborts", 0),
        )
        telemetry.counter_rate(
            "replica_update_rate", lambda: self.metrics.replica_updates
        )

    # ------------------------------------------------------------------ #
    # pipeline phases (the origin transaction)
    # ------------------------------------------------------------------ #

    def _phase_execute(self, ctx: TxnContext):
        """Lock-free local execution against committed replica state."""
        origin = ctx.origin
        node = self.nodes[origin]
        txn = ctx.txn = node.tm.begin(label=ctx.label)
        reads: List[Tuple[int, Timestamp]] = []
        writes: List[Tuple[int, Timestamp, object, object]] = []
        try:
            for op in ctx.ops:
                if self._node_holds(op.oid, origin):
                    site = node
                else:
                    # non-resident object: read the master replica's
                    # committed state (one RPC round, same cost model as
                    # lazy-group)
                    site = self.nodes[self.placement.master(op.oid)]
                    if self.network.message_delay > 0:
                        yield self.engine.timeout(self.network.message_delay)
                record = site.store.read(op.oid)
                if op.is_read:
                    txn.record_read(record.value)
                    if self.history is not None:
                        self.history.record_read(
                            site.node_id, txn.txn_id, op.oid
                        )
                    reads.append((op.oid, record.ts))
                    continue
                # the compute cost of the action is paid here; the install
                # cost is paid at apply time by every replica, like any
                # lazy stream
                if self.action_time > 0:
                    yield self.engine.timeout(self.action_time)
                if op.reads_state and self.history is not None:
                    self.history.record_read(site.node_id, txn.txn_id, op.oid)
                writes.append((op.oid, record.ts, op.apply(record.value), op))
        except DeadlockAbort as exc:  # CrashAbort: origin died mid-run;
            # lock-free execution holds nothing, so the undo set is empty
            self._abort_everywhere(txn, [], reason=exc.reason)
            ctx.finished = True
            return
        ctx.scratch["reads"] = reads
        ctx.scratch["writes"] = writes

    def _phase_certify(self, ctx: TxnContext):
        """Ship the read/write set to the certifier and await its verdict."""
        txn = ctx.txn
        writes = ctx.scratch["writes"]
        if not writes:
            # the PDUR read-only fast path: nothing to certify, commit now
            return
        event = self.engine.event("du-decision")
        self._decisions[txn.txn_id] = event
        self.network.send(
            ctx.origin,
            self.certifier_id,
            "cert-request",
            (ctx.origin, txn.txn_id, tuple(ctx.scratch["reads"]),
             tuple(writes)),
        )
        try:
            committed = yield event
        except DeadlockAbort as exc:  # CrashAbort: origin died waiting
            self._decisions.pop(txn.txn_id, None)
            self._abort_everywhere(txn, [], reason=exc.reason)
            ctx.finished = True
            return
        if not committed:
            self.metrics.bump("cert_aborts")
            self._abort_everywhere(txn, [], reason="certification")
            ctx.finished = True

    def _phase_commit(self, ctx: TxnContext) -> None:
        # the origin held no locks and wrote no WAL entries; its own store
        # converges through the same du-apply stream as everyone else's
        self._commit_everywhere(ctx.txn, [self.nodes[ctx.origin]])

    # ------------------------------------------------------------------ #
    # certification service + replica application
    # ------------------------------------------------------------------ #

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind == "cert-request":
            self._certify(node, msg.payload)
            return None
        if msg.kind == "du-decision":
            txn_id, ok = msg.payload
            event = self._decisions.pop(txn_id, None)
            if event is not None and event.pending:
                event.succeed(ok)
            return None
        if msg.kind == "du-apply":
            updates, attempt = msg.payload
            return self._apply_updates(node, updates, attempt)
        raise ReplicationError(f"deferred-update got unexpected {msg.kind}")

    def _certify(self, node: NodeContext, payload) -> None:
        """Validate one read/write set against the version table.

        Runs atomically at message delivery: certification of one
        transaction is a table scan over its footprint, and independent
        transactions interleave freely between deliveries — the
        "parallel certification" property.
        """
        origin, txn_id, reads, writes = payload
        table = self._cert_versions
        ok = True
        for oid, observed_ts in reads:
            current = table.get(oid)
            if current is not None and current != observed_ts:
                ok = False
                break
        if ok:
            for oid, observed_ts, _value, _op in writes:
                current = table.get(oid)
                if current is not None and current != observed_ts:
                    ok = False
                    break
        if not ok:
            self._trace("cert-abort", txn=txn_id, origin=origin)
            self.network.send(
                node.node_id, origin, "du-decision", (txn_id, False)
            )
            return
        # certified: stamp each write from the certifier's clock, so
        # timestamps are monotone in certification order and the replicas'
        # stale-suppression test survives duplication and reordering
        updates = []
        for oid, observed_ts, value, op in writes:
            new_ts = node.clock.tick()
            table[oid] = new_ts
            updates.append(
                ReplicaUpdate(
                    oid=oid, old_ts=observed_ts, new_ts=new_ts,
                    new_value=value, op=op, root_txn_id=txn_id,
                )
            )
        self.certified += 1
        self._trace("certify", txn=txn_id, writes=len(updates))
        self.network.send(node.node_id, origin, "du-decision", (txn_id, True))
        self._fan_out(node.node_id, updates)

    def _fan_out(self, certifier: int, updates: List[ReplicaUpdate]) -> None:
        """Send each certified write to every replica holding its object."""
        placement = self.placement
        if placement.is_full:
            for node_id in range(self.num_nodes):
                self.network.send(
                    certifier, node_id, "du-apply", (updates, 0)
                )
            return
        extra_holders = range(placement.num_nodes, self.num_nodes)
        needed_by_node: Dict[int, List[ReplicaUpdate]] = {}
        for u in updates:
            holders = placement.replicas(u.oid)
            for node_id in (
                holders if not extra_holders
                else list(holders) + list(extra_holders)
            ):
                needed_by_node.setdefault(node_id, []).append(u)
        for node_id in sorted(needed_by_node):
            self.network.send(
                certifier, node_id, "du-apply", (needed_by_node[node_id], 0)
            )

    def _apply_updates(
        self, node: NodeContext, updates: List[ReplicaUpdate], attempt: int
    ):
        """Install certified writes as a housekeeping transaction."""
        txn = node.tm.begin(label="du-apply")
        try:
            for update in updates:
                if not self.placement.is_full and not self._node_holds(
                    update.oid, node.node_id
                ):
                    # migrated away while the apply was in flight
                    continue
                event = node.locks.acquire(txn, update.oid, LockMode.EXCLUSIVE)
                if event is not None:
                    yield event
                    txn.require_active()
                local = node.store.read(update.oid)
                if local.ts >= update.new_ts:
                    if local.ts != update.new_ts:
                        self.metrics.stale_updates += 1
                    continue  # duplicate or reordered delivery
                yield from node.tm.execute_install(
                    txn, update.oid, update.new_value, update.new_ts,
                    root_txn_id=(
                        update.root_txn_id if update.root_txn_id >= 0 else None
                    ),
                )
                self.metrics.actions += 1
            node.tm.commit(txn)
            self.metrics.replica_updates += 1
        except DeadlockAbort as exc:
            node.tm.abort(txn, reason=exc.reason)
            if attempt < self.max_retries:
                self.metrics.restarts += 1
                self.network.send(
                    node.node_id, node.node_id, "du-apply",
                    (updates, attempt + 1),
                )
            else:
                self.replica_updates_dropped += 1
