"""SCAR: stale-tolerant reads with logical-timestamp validation.

After *SCAR* (Lu, Yu & Madden; see PAPERS.md): replicas serve **stale
local reads without any coordination**, and correctness is recovered at
commit time by **validating logical timestamps at the master copies**.  A
transaction runs entirely against its origin's replica state, recording
the timestamp of everything it observed; at commit it

1. X-locks its written objects at their masters *in global object order*
   (so SCAR transactions cannot deadlock each other — conflicts surface
   as short waits, never waits-for cycles),
2. validates every observed timestamp against the master copies — a
   mismatch means some transaction committed in between, and the
   transaction takes a clean **validation abort** (counted in
   ``cert_aborts``; nothing was installed, nothing is lost),
3. installs its writes at the masters and commits, then
4. propagates the new versions to the remaining replicas asynchronously,
   with lazy-master-style stale suppression at the receivers.

Where deferred update centralises certification at a sequencer node, SCAR
distributes it across the masters: validation piggybacks on the lock
round, so there is no single certifier to crash or partition away — but
writes do pay master RPC rounds, like lazy-master's.

The commit-protocol pipeline: ``execute -> certify -> commit ->
propagate``.  Reads never take locks (the strategy ignores
``lock_reads``; stale tolerance *is* its read policy).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.exceptions import (
    DeadlockAbort,
    MasterUnavailableError,
    ReplicationError,
)
from repro.network.message import Message
from repro.replication.base import NodeContext, ReplicatedSystem, ReplicaUpdate
from repro.replication.pipeline import TxnContext
from repro.storage.lock_manager import LockMode
from repro.storage.versioning import Timestamp


class ScarSystem(ReplicatedSystem):
    """Stale reads + commit-time timestamp validation at the masters."""

    name = "scar"
    PHASES = ("execute", "certify", "commit", "propagate")

    def __init__(self, *args, ownership: Optional[Dict[int, int]] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        # master copies hold the authoritative timestamps; migrate()
        # rebinds moved entries through the shared ownership hook
        self.ownership = (
            dict(ownership)
            if ownership is not None
            else {
                oid: self.placement.master(oid)
                for oid in range(self.db_size)
            }
        )
        if not self.placement.is_full:
            for oid, master in self.ownership.items():
                if not self._node_holds(oid, master):
                    raise MasterUnavailableError(
                        f"object {oid} is mastered at node {master}, which "
                        "holds no replica of it under the configured "
                        "placement"
                    )
        self.validated = 0
        self.blocked_by_disconnect = 0
        self.replica_updates_dropped = 0

    def _register_probes(self, telemetry) -> None:
        super()._register_probes(telemetry)
        telemetry.counter_rate(
            "cert_abort_rate",
            lambda: self.metrics.extra.get("cert_aborts", 0),
        )
        telemetry.counter_rate(
            "replica_update_rate", lambda: self.metrics.replica_updates
        )

    def master_of(self, oid: int) -> NodeContext:
        return self.nodes[self.ownership[oid]]

    # ------------------------------------------------------------------ #
    # pipeline phases
    # ------------------------------------------------------------------ #

    def _phase_execute(self, ctx: TxnContext):
        """Coordination-free execution against local (possibly stale) state."""
        origin = ctx.origin
        node = self.nodes[origin]
        txn = ctx.txn = node.tm.begin(label=ctx.label)
        ctx.touched = []  # masters join during certification
        reads: List[Tuple[int, Timestamp]] = []
        writes: List[Tuple[int, Timestamp, object, object]] = []
        try:
            for op in ctx.ops:
                if self._node_holds(op.oid, origin):
                    site = node
                else:
                    # no local replica: fetch from the master (RPC round)
                    site = self.master_of(op.oid)
                    if self.network.message_delay > 0:
                        yield self.engine.timeout(self.network.message_delay)
                record = site.store.read(op.oid)
                if op.is_read:
                    txn.record_read(record.value)
                    if self.history is not None:
                        self.history.record_read(
                            site.node_id, txn.txn_id, op.oid
                        )
                    reads.append((op.oid, record.ts))
                    continue
                if op.reads_state and self.history is not None:
                    self.history.record_read(site.node_id, txn.txn_id, op.oid)
                writes.append((op.oid, record.ts, op.apply(record.value), op))
        except DeadlockAbort as exc:  # CrashAbort: origin died mid-run
            self._abort_everywhere(txn, ctx.touched, reason=exc.reason)
            ctx.finished = True
            return
        ctx.scratch["reads"] = reads
        ctx.scratch["writes"] = writes

    def _phase_certify(self, ctx: TxnContext):
        """Lock written objects at their masters, then validate timestamps.

        Locks are acquired in ascending object order across all masters, so
        two SCAR transactions always collide in the same direction — waits,
        not deadlocks.  Validation re-reads each observed object's master
        timestamp *after* locking: a mismatch proves a concurrent commit
        and aborts the transaction before it installs anything.
        """
        txn = ctx.txn
        reads = ctx.scratch["reads"]
        writes = ctx.scratch["writes"]
        if not writes:
            # read-only fast path: stale local reads are the point of SCAR —
            # they commit without any master round or validation
            return
        write_oids = sorted({oid for oid, _ts, _v, _op in writes})
        masters_needed = {
            self.ownership[oid]
            for oid in write_oids + [oid for oid, _ts in reads]
        }
        if not self._reachable(ctx.origin, masters_needed):
            self.blocked_by_disconnect += 1
            self._abort_everywhere(txn, ctx.touched, reason="master-unreachable")
            ctx.finished = True
            return
        try:
            for oid in write_oids:
                master = self.master_of(oid)
                if (
                    master.node_id != ctx.origin
                    and self.network.message_delay > 0
                ):
                    # lock-request RPC to the master
                    yield self.engine.timeout(self.network.message_delay)
                event = master.locks.acquire(txn, oid, LockMode.EXCLUSIVE)
                if event is not None:
                    yield event
                    txn.require_active()
                if master not in ctx.touched:
                    ctx.touched.append(master)
        except DeadlockAbort as exc:  # crash interrupt, or a cycle against
            # a non-SCAR housekeeping transaction
            self._abort_everywhere(txn, ctx.touched, reason=exc.reason)
            ctx.finished = True
            return
        stale = None
        for oid, observed_ts in reads:
            if self.master_of(oid).store.read(oid).ts != observed_ts:
                stale = oid
                break
        if stale is None:
            for oid, observed_ts, _value, _op in writes:
                if self.master_of(oid).store.read(oid).ts != observed_ts:
                    stale = oid
                    break
        if stale is not None:
            self.metrics.bump("cert_aborts")
            self._trace("validation-abort", txn=txn.txn_id, oid=stale)
            self._abort_everywhere(txn, ctx.touched, reason="validation")
            ctx.finished = True
            return
        self.validated += 1

    def _phase_commit(self, ctx: TxnContext):
        """Install validated writes at the masters, then commit."""
        txn = ctx.txn
        updates: List[ReplicaUpdate] = []
        try:
            for oid, observed_ts, value, op in ctx.scratch.get("writes", ()):
                master = self.master_of(oid)
                new_ts = master.clock.tick()
                # the X lock from certification makes this a fast path
                yield from master.tm.execute_install(txn, oid, value, new_ts)
                self.metrics.actions += 1
                updates.append(
                    ReplicaUpdate(
                        oid=oid, old_ts=observed_ts, new_ts=new_ts,
                        new_value=value, op=op, root_txn_id=txn.txn_id,
                    )
                )
        except DeadlockAbort as exc:  # crash interrupt during install
            self._abort_everywhere(txn, ctx.touched, reason=exc.reason)
            ctx.finished = True
            return
        ctx.scratch["updates"] = updates
        self._commit_everywhere(txn, ctx.touched)

    def _phase_propagate(self, ctx: TxnContext) -> None:
        """Asynchronously refresh the non-master replicas."""
        updates = ctx.scratch.get("updates")
        if not updates:
            return
        if self.placement.is_full:
            recipient_ids = range(self.num_nodes)
        else:
            holders = set(range(self.placement.num_nodes, self.num_nodes))
            for u in updates:
                holders.update(self.placement.replicas(u.oid))
            recipient_ids = sorted(holders)
        for node_id in recipient_ids:
            needed = [
                u for u in updates
                if self.ownership[u.oid] != node_id
                and self._node_holds(u.oid, node_id)
            ]
            if not needed:
                continue
            self.network.send(
                ctx.origin, node_id, "scar-update", (needed, 0)
            )

    def _reachable(self, origin: int, masters: set) -> bool:
        if not self.network.is_connected(origin):
            return False
        return all(self.network.is_connected(m) for m in masters)

    # ------------------------------------------------------------------ #
    # replica application
    # ------------------------------------------------------------------ #

    def handle_message(self, node: NodeContext, msg: Message):
        if msg.kind != "scar-update":
            raise ReplicationError(f"scar got unexpected {msg.kind}")
        updates, attempt = msg.payload
        return self._apply_updates(node, updates, attempt)

    def _apply_updates(
        self, node: NodeContext, updates: List[ReplicaUpdate], attempt: int
    ):
        txn = node.tm.begin(label="scar-update")
        try:
            for update in updates:
                if self.ownership[update.oid] == node.node_id:
                    continue  # master copy already authoritative
                if not self.placement.is_full and not self._node_holds(
                    update.oid, node.node_id
                ):
                    continue  # migrated away while in flight
                event = node.locks.acquire(txn, update.oid, LockMode.EXCLUSIVE)
                if event is not None:
                    yield event
                    txn.require_active()
                local = node.store.read(update.oid)
                if local.ts >= update.new_ts:
                    if local.ts != update.new_ts:
                        self.metrics.stale_updates += 1
                    continue  # duplicate or reordered delivery
                yield from node.tm.execute_install(
                    txn, update.oid, update.new_value, update.new_ts,
                    root_txn_id=(
                        update.root_txn_id if update.root_txn_id >= 0 else None
                    ),
                )
                self.metrics.actions += 1
            node.tm.commit(txn)
            self.metrics.replica_updates += 1
        except DeadlockAbort as exc:
            node.tm.abort(txn, reason=exc.reason)
            if attempt < self.max_retries:
                self.metrics.restarts += 1
                self.network.send(
                    node.node_id, node.node_id, "scar-update",
                    (updates, attempt + 1),
                )
            else:
                self.replica_updates_dropped += 1
