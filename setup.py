"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works offline (legacy editable install).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Gray et al., 'The Dangers of Replication and a "
        "Solution' (SIGMOD 1996)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
