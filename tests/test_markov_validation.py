"""Cross-validation: the Markov track against the DES and the closed forms.

The acceptance bar for the Markov fast path: on a short validation grid
(nodes 2-6, 3 seeds) the chain-predicted node-count exponent must land
within ±0.5 of the DES-measured exponent for every strategy, and within
the same tolerance of the closed-form law wherever the chain is *meant*
to reproduce it.  Eager-master is the documented exception: its chain
models the master-first lock ordering the simulator implements, which
lands on a quadratic law, while equation 12's pessimistic cubic ignores
that serialization — so for eager-master the chain is held to the
measurement and explicitly *not* to equation 12 (see
``markov_strategies._eager_chain``).

Each strategy runs in a contention regime tuned so the 120 virtual-second
grid measures enough deadlocks/reconciliations for a stable fit; the
regimes mirror ``benchmarks/conftest.py``.
"""

import functools

import pytest

from repro.analytic.parameters import ModelParameters
from repro.harness.campaign import Campaign, run_campaign

#: DES-vs-model exponent tolerance (the acceptance criterion's ±0.5)
TOLERANCE = 0.5

NODE_GRID = (2, 3, 4, 6)
SEEDS = (0, 1, 2)
DURATION = 120.0

#: per-strategy contention regimes: dense enough to measure rare events
#: over the grid, sparse enough that the fit regime is still power-law
VALIDATION_REGIMES = {
    "eager-group": ModelParameters(
        db_size=80, nodes=2, tps=4.0, actions=3, action_time=0.01),
    "eager-master": ModelParameters(
        db_size=80, nodes=2, tps=4.0, actions=3, action_time=0.01),
    "lazy-group": ModelParameters(
        db_size=200, nodes=2, tps=4.0, actions=3, action_time=0.01),
    "lazy-master": ModelParameters(
        db_size=30, nodes=2, tps=6.0, actions=3, action_time=0.01),
    # the certification strategies need a message delay so their decision
    # windows (and therefore their exposure) are realistic
    "deferred-update": ModelParameters(
        db_size=80, nodes=2, tps=4.0, actions=3, action_time=0.01,
        message_delay=0.002),
    "scar": ModelParameters(
        db_size=80, nodes=2, tps=4.0, actions=3, action_time=0.01,
        message_delay=0.002),
}


@functools.lru_cache(maxsize=None)
def _validate(strategy):
    """Run the strategy's validation campaign once; fit all three tracks.

    Returns ``(measured, markov, closed)`` node-count exponents.  The same
    simulated outcomes back every track — only the analytic column moves.
    """
    campaign = Campaign(
        strategies=(strategy,),
        base_params=VALIDATION_REGIMES[strategy],
        axis="nodes",
        values=NODE_GRID,
        seeds=SEEDS,
        duration=DURATION,
        model="markov",
    )
    outcome = run_campaign(campaign, jobs=0)
    assert not outcome.failures, [f.error for f in outcome.failures]
    markov_fit = outcome.fits()[0]
    # the certification strategies have no closed-form law to fit against
    closed_fits = outcome.fits(model="closed-form")
    closed = closed_fits[0].analytic if closed_fits else None
    assert markov_fit.measured is not None, (
        f"{strategy}: validation grid measured no events; regime too sparse"
    )
    return markov_fit.measured, markov_fit.analytic, closed


@pytest.mark.parametrize("strategy", sorted(VALIDATION_REGIMES))
def test_markov_exponent_within_tolerance_of_measured(strategy):
    measured, markov, _ = _validate(strategy)
    assert markov is not None
    assert abs(markov - measured) <= TOLERANCE, (
        f"{strategy}: markov N^{markov:.2f} vs measured N^{measured:.2f}"
    )


@pytest.mark.parametrize("strategy",
                         ("eager-group", "lazy-group", "lazy-master"))
def test_markov_exponent_within_tolerance_of_closed_form(strategy):
    _, markov, closed = _validate(strategy)
    assert markov is not None and closed is not None
    assert abs(markov - closed) <= TOLERANCE, (
        f"{strategy}: markov N^{markov:.2f} vs closed form N^{closed:.2f}"
    )


def test_eager_master_departs_from_eq_12_toward_the_measurement():
    """The documented divergence: the chain tracks the DES's quadratic
    master law while equation 12 predicts a cubic the simulator never
    exhibits — the Markov track is the *better* model here."""
    measured, markov, closed = _validate("eager-master")
    assert closed == pytest.approx(3.0, abs=0.1)  # eq 12 is exactly cubic
    assert abs(markov - 2.0) <= TOLERANCE  # the chain lands quadratic
    assert abs(markov - measured) < abs(closed - measured), (
        f"markov N^{markov:.2f} should beat eq 12 N^{closed:.2f} "
        f"against measured N^{measured:.2f}"
    )


@pytest.mark.parametrize("strategy", ("deferred-update", "scar"))
def test_certification_strategies_escape_the_cube_law(strategy):
    """The PR 10 headline: certification aborts need only one conflicting
    pair, so the danger law is the quadratic birthday bound — both the
    chain and the DES must land well below eager-group's measured
    super-cubic deadlock growth (~N^3.2+, see EXPERIMENTS.md)."""
    measured, markov, _ = _validate(strategy)
    assert markov == pytest.approx(2.0, abs=0.1)  # the chain is quadratic
    eager_measured = _validate("eager-group")[0]
    assert measured < eager_measured - TOLERANCE, (
        f"{strategy} measured N^{measured:.2f} does not clearly beat "
        f"eager-group's N^{eager_measured:.2f}"
    )


def test_closed_form_exponents_match_the_paper():
    """Sanity on the fit machinery itself: the closed-form track must
    reproduce the paper's exact orders on the same grid."""
    assert _validate("eager-group")[2] == pytest.approx(3.0, abs=0.1)
    assert _validate("lazy-group")[2] == pytest.approx(3.0, abs=0.1)
    assert _validate("lazy-master")[2] == pytest.approx(2.0, abs=0.1)
