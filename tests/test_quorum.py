"""Tests for Gifford weighted voting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.replication.quorum import QuorumConfig, best_majority_votes


class TestValidation:
    def test_majority_config(self):
        q = QuorumConfig.majority(5)
        assert q.total_votes == 5
        assert q.read_quorum == 3
        assert q.write_quorum == 3

    def test_rowa(self):
        q = QuorumConfig.read_one_write_all(4)
        assert q.read_quorum == 1
        assert q.write_quorum == 4

    def test_r_plus_w_must_exceed_v(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(votes=(1, 1, 1), read_quorum=1, write_quorum=2)

    def test_two_w_must_exceed_v(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(votes=(1, 1, 1, 1), read_quorum=3, write_quorum=2)

    def test_empty_votes_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(votes=(), read_quorum=1, write_quorum=1)

    def test_negative_votes_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(votes=(1, -1, 3), read_quorum=2, write_quorum=2)

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(votes=(0, 0), read_quorum=1, write_quorum=1)

    @given(st.integers(1, 15))
    def test_majority_always_valid(self, n):
        QuorumConfig.majority(n)  # must not raise


class TestMembership:
    def test_count_based(self):
        q = QuorumConfig.majority(5)
        assert q.is_write_quorum(3)
        assert not q.is_write_quorum(2)

    def test_set_based_uniform(self):
        q = QuorumConfig.majority(5)
        assert q.is_write_quorum({0, 1, 2})
        assert not q.is_write_quorum({0, 4})

    def test_weighted_votes(self):
        # node 0 carries 3 votes of 5 total: it alone is a write quorum
        q = QuorumConfig(votes=(3, 1, 1), read_quorum=3, write_quorum=3)
        assert q.is_write_quorum({0})
        assert not q.is_write_quorum({1, 2})

    def test_two_write_quorums_always_intersect(self):
        from itertools import combinations

        q = QuorumConfig(votes=(2, 1, 1, 1), read_quorum=3, write_quorum=3)
        nodes = range(4)
        quorums = [
            set(c)
            for size in range(1, 5)
            for c in combinations(nodes, size)
            if q.is_write_quorum(set(c))
        ]
        for a in quorums:
            for b in quorums:
                assert a & b, f"write quorums {a} and {b} do not intersect"

    def test_read_and_write_quorums_intersect(self):
        from itertools import combinations

        q = QuorumConfig.majority(5)
        nodes = range(5)
        reads = [set(c) for r in range(1, 6) for c in combinations(nodes, r)
                 if q.is_read_quorum(set(c))]
        writes = [set(c) for r in range(1, 6) for c in combinations(nodes, r)
                  if q.is_write_quorum(set(c))]
        for r in reads:
            for w in writes:
                assert r & w


class TestAvailability:
    def test_perfect_nodes_always_available(self):
        q = QuorumConfig.majority(5)
        assert q.write_availability(1.0) == pytest.approx(1.0)
        assert q.read_availability(1.0) == pytest.approx(1.0)

    def test_dead_nodes_never_available(self):
        q = QuorumConfig.majority(5)
        assert q.write_availability(0.0) == pytest.approx(0.0)

    def test_three_node_majority_closed_form(self):
        # P(>=2 of 3 up) = 3p^2(1-p) + p^3
        q = QuorumConfig.majority(3)
        p = 0.9
        expected = 3 * p**2 * (1 - p) + p**3
        assert q.write_availability(p) == pytest.approx(expected)

    def test_rowa_write_availability_is_p_to_n(self):
        q = QuorumConfig.read_one_write_all(4)
        assert q.write_availability(0.9) == pytest.approx(0.9**4)

    def test_rowa_read_availability_is_any_up(self):
        q = QuorumConfig.read_one_write_all(4)
        assert q.read_availability(0.9) == pytest.approx(1 - 0.1**4)

    def test_weighted_subset_enumeration(self):
        q = QuorumConfig(votes=(2, 1, 1), read_quorum=3, write_quorum=3)
        p = 0.8
        # write quorum needs >=3 votes: {0,1},{0,2},{0,1,2},{1,2}+0? (1,1)=2 no
        expected = (
            p * p * (1 - p) * 2  # {0,1}, {0,2}
            + p**3  # all three
        )
        assert q.write_availability(p) == pytest.approx(expected)

    def test_invalid_probability_rejected(self):
        q = QuorumConfig.majority(3)
        with pytest.raises(ConfigurationError):
            q.write_availability(1.5)

    @given(st.integers(1, 9), st.floats(0.0, 1.0))
    def test_availability_is_probability(self, n, p):
        q = QuorumConfig.majority(n)
        value = q.write_availability(p)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(st.integers(2, 7))
    def test_monotone_in_up_probability(self, n):
        q = QuorumConfig.majority(n)
        values = [q.write_availability(p / 10) for p in range(11)]
        assert values == sorted(values)


class TestVoteAssignment:
    def test_proportional_votes(self):
        votes = best_majority_votes([0.9, 0.3, 0.3])
        assert votes[0] > votes[1] == votes[2] >= 1

    def test_all_zero_weights_get_one_vote(self):
        assert best_majority_votes([0.0, 0.0]) == {0: 1, 1: 1}

    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            best_majority_votes([])
        with pytest.raises(ConfigurationError):
            best_majority_votes([-1.0])
