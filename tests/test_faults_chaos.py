"""Chaos suite: every strategy under seeded fault grids, judged by the
invariant oracle.

The contract under test is the oracle's, not any single metric's:

* **lossless** faults (duplicates, reordering, jitter, healing partitions,
  recovering crashes) must leave a convergent strategy convergent;
* message **drops** and never-recovering crashes destroy information, so
  divergence is excused — but quiescence and accounting still hold;
* a partition that **never heals** is *not* excused: the run ends with
  replicas disagreeing and the oracle must flag it (the paper's system
  delusion made visible).

Lazy-group runs here ship values (``commutative=False``): operation
shipping under the default latest-timestamp-wins rule merges on one side
and discards on the other, a pre-existing semantic divergence unrelated
to faults.
"""

import pytest

from repro.analytic import ModelParameters
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment

PARAMS = ModelParameters(
    db_size=50, nodes=3, tps=5, actions=3, action_time=0.005
)
DURATION = 20.0
FLAT_STRATEGIES = ("eager-group", "eager-master", "lazy-group", "lazy-master")


def run(strategy, spec, *, seed=1, params=PARAMS, num_base=1, **overrides):
    num_nodes = params.nodes + (num_base if strategy == "two-tier" else 0)
    plan = FaultPlan.from_spec(spec, num_nodes=num_nodes, duration=DURATION)
    config = ExperimentConfig(
        strategy=strategy,
        params=params,
        duration=DURATION,
        seed=seed,
        num_base=num_base,
        faults=plan,
        **overrides,
    )
    return run_experiment(config)


# --------------------------------------------------------------------- #
# lossless faults: convergence must survive
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("strategy", FLAT_STRATEGIES)
def test_duplicates_reorder_and_jitter_leave_strategies_convergent(strategy):
    result = run(strategy, "dup=0.3,reorder=0.3,jitter=0.02")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True
    assert result.extra["oracle_expected_convergence"] is True


@pytest.mark.parametrize("strategy", ("lazy-group", "lazy-master"))
def test_healing_partition_converges_after_flush(strategy):
    result = run(strategy, "partition=3")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True
    stats = result.extra.get("fault_stats")
    # a timetable-only plan installs no wire tap, so fault_stats may be
    # absent — but the partition itself must have run when present
    if stats is not None:
        assert stats["partitions_started"] == 1
        assert stats["partitions_healed"] == 1


@pytest.mark.parametrize("strategy", FLAT_STRATEGIES)
def test_crash_with_recovery_ends_consistent(strategy):
    result = run(strategy, "crash=4")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True
    assert not result.system.crashed  # the node came back


def test_lazy_faults_actually_fired():
    # guard against a vacuous suite: the lossless grid really exercises
    # the wire tap on message-passing strategies
    result = run("lazy-master", "dup=0.3,reorder=0.3,jitter=0.02")
    stats = result.extra["fault_stats"]
    assert stats["duplicated"] > 0
    assert stats["delayed"] > 0


# --------------------------------------------------------------------- #
# lossy faults: divergence excused, bookkeeping still strict
# --------------------------------------------------------------------- #


def test_dropped_replica_updates_excuse_divergence():
    result = run("lazy-master", "drop=0.3")
    assert result.extra["oracle_expected_convergence"] is False
    assert result.extra["oracle_ok"] is True  # quiescence + accounting hold
    assert result.divergence > 0  # updates really were lost
    assert result.extra["fault_stats"]["dropped"] > 0


def test_node_that_never_recovers_excuses_divergence():
    result = run("lazy-master", "crash=forever")
    assert result.extra["oracle_expected_convergence"] is False
    assert result.extra["oracle_ok"] is True
    assert result.divergence > 0
    assert result.system.crashed == {PARAMS.nodes - 1}


# --------------------------------------------------------------------- #
# the system delusion: an unhealed partition must be flagged
# --------------------------------------------------------------------- #


def test_unhealed_partition_divergence_is_flagged_by_the_oracle():
    # Acceptance criterion: a lazy-group run that *fails* convergence
    # under a never-healing partition, and the oracle catches it.  No
    # information was destroyed — the updates sit parked forever — so
    # convergence stays expected and the verdict is a hard failure.
    result = run("lazy-group", "partition=forever")
    assert result.divergence > 0
    assert result.extra["oracle_expected_convergence"] is True
    assert result.extra["oracle_ok"] is False
    failures = result.extra["oracle_failures"]
    assert any("diverge" in failure for failure in failures)


# --------------------------------------------------------------------- #
# two-tier: judged on its base tier
# --------------------------------------------------------------------- #


def test_two_tier_base_tier_stays_consistent_under_link_faults():
    mobile_params = PARAMS.with_(
        disconnect_time=2.0, time_between_disconnects=4.0
    )
    result = run(
        "two-tier", "dup=0.2,jitter=0.01", params=mobile_params, num_base=2
    )
    assert result.extra["base_divergence"] == 0
    assert result.extra["oracle_ok"] is True


# --------------------------------------------------------------------- #
# serializability survives lossless faults where promised
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("strategy", ("eager-master", "lazy-master"))
def test_recorded_history_stays_serializable_under_benign_faults(strategy):
    result = run(
        strategy, "dup=0.3,jitter=0.02", record_history=True
    )
    # record_history + non-lazy-group strategy makes the oracle include
    # the conflict-serializability certification in its verdict
    assert result.extra["oracle_ok"] is True
