"""Tests for the parallel campaign runner (`repro.harness.campaign`)."""

import json

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.campaign import (
    ANALYTIC_REFERENCE,
    Campaign,
    ResultCache,
    RunSpec,
    aggregate,
    campaign_table,
    fit_exponents,
    result_from_dict,
    run_campaign,
)
from repro.harness.export import (
    campaign_to_dict,
    config_to_dict,
    result_to_dict,
    write_campaign_csv,
    write_json,
)

TINY = ModelParameters(db_size=50, nodes=2, tps=2, actions=2,
                       action_time=0.001)


def tiny_campaign(**kw):
    kw.setdefault("strategies", ("lazy-master",))
    kw.setdefault("base_params", TINY)
    kw.setdefault("values", ())
    kw.setdefault("seeds", (0, 1))
    kw.setdefault("duration", 5.0)
    return Campaign(**kw)


class TestGridExpansion:
    def test_full_grid_order_and_size(self):
        campaign = Campaign(
            strategies=("lazy-master", "eager-group"),
            base_params=TINY,
            values=(1, 2, 4),
            seeds=(0, 1),
            duration=5.0,
        )
        specs = campaign.specs()
        assert len(specs) == campaign.total_runs == 2 * 3 * 2
        # (strategy, value, seed) order, axis applied to params
        assert specs[0].config.strategy == "lazy-master"
        assert [s.config.params.nodes for s in specs[:6]] == [1, 1, 2, 2, 4, 4]
        assert [s.config.seed for s in specs[:4]] == [0, 1, 0, 1]
        # swept node counts stay integers (ModelParameters validates)
        assert all(isinstance(s.config.params.nodes, int) for s in specs)

    def test_empty_values_uses_base_point(self):
        specs = tiny_campaign().specs()
        assert len(specs) == 2
        assert all(s.config.params.nodes == TINY.nodes for s in specs)

    def test_other_axis(self):
        campaign = tiny_campaign(axis="tps", values=(1.0, 2.0), seeds=(0,))
        assert [s.config.params.tps for s in campaign.specs()] == [1.0, 2.0]
        assert [s.axis_value for s in campaign.specs()] == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tiny_campaign(strategies=())
        with pytest.raises(ConfigurationError):
            tiny_campaign(strategies=("psychic",))
        with pytest.raises(ConfigurationError):
            tiny_campaign(seeds=(1, 1))
        with pytest.raises(ConfigurationError):
            tiny_campaign(axis="warp_factor")


class TestSpecKeys:
    def test_key_is_deterministic_and_seed_sensitive(self):
        a, b = tiny_campaign().specs()
        assert a.key() == RunSpec(config=a.config).key()
        assert a.key() != b.key()  # differing seed

    def test_key_ignores_tracer(self):
        from repro.sim.tracing import Tracer

        spec = tiny_campaign().specs()[0]
        traced = RunSpec(config=ExperimentConfig(
            strategy=spec.config.strategy, params=spec.config.params,
            duration=spec.config.duration, seed=spec.config.seed,
            tracer=Tracer(),
        ))
        assert spec.key() == traced.key()

    def test_key_varies_with_parameters(self):
        spec = tiny_campaign().specs()[0]
        other = RunSpec(config=ExperimentConfig(
            strategy=spec.config.strategy,
            params=spec.config.params.with_(tps=9.0),
            duration=spec.config.duration, seed=spec.config.seed,
        ))
        assert spec.key() != other.key()


class TestExecution:
    def test_inline_matches_direct_run(self):
        outcome = run_campaign(tiny_campaign(), jobs=0)
        assert outcome.ok_count == outcome.total == 2
        direct = run_experiment(outcome.outcomes[0].spec.config)
        assert outcome.outcomes[0].payload == result_to_dict(direct)

    def test_pool_matches_inline(self):
        campaign = tiny_campaign(strategies=("lazy-master", "lazy-group"))
        inline = run_campaign(campaign, jobs=0)
        pooled = run_campaign(campaign, jobs=2)
        assert pooled.jobs == 2
        assert [o.payload for o in pooled.outcomes] == [
            o.payload for o in inline.outcomes
        ]

    @pytest.mark.parametrize("jobs", [0, 2])
    def test_failed_cell_does_not_kill_campaign(self, jobs):
        # disconnect schedules are rejected for lazy-master at run time,
        # so this cell fails inside the worker while the others succeed
        bad = RunSpec(config=ExperimentConfig(
            strategy="lazy-master",
            params=TINY.with_(disconnect_time=5.0),
            duration=5.0,
        ))
        good = tiny_campaign().specs()
        outcome = run_campaign([good[0], bad, good[1]], jobs=jobs)
        assert [o.status for o in outcome.outcomes] == ["ok", "failed", "ok"]
        assert "ConfigurationError" in outcome.outcomes[1].error
        assert outcome.ok_count == 2
        assert len(outcome.failures) == 1
        assert len(outcome.results()) == 2

    def test_timeout_marks_cell_and_continues(self):
        heavy = RunSpec(config=ExperimentConfig(
            strategy="eager-group",
            params=ModelParameters(db_size=2000, nodes=6, tps=20,
                                   actions=5, action_time=0.01),
            duration=500.0,
        ))
        quick = tiny_campaign().specs()[0]
        outcome = run_campaign([heavy, quick], jobs=2, timeout=0.2)
        by_strategy = {o.spec.config.strategy: o for o in outcome.outcomes}
        assert by_strategy["eager-group"].status == "timeout"
        assert "wall-clock" in by_strategy["eager-group"].error
        assert by_strategy["lazy-master"].ok

    def test_progress_callback_sees_every_run(self):
        seen = []
        run_campaign(tiny_campaign(), jobs=0,
                     progress=lambda o, done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(tiny_campaign(), jobs=-1)


class TestCache:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        campaign = tiny_campaign()
        first = run_campaign(campaign, jobs=0, cache_dir=tmp_path)
        assert first.cache_hits == 0 and first.cache_misses == 2
        second = run_campaign(campaign, jobs=0, cache_dir=tmp_path)
        assert second.cache_hits == 2
        assert all(o.cached for o in second.outcomes)
        assert [o.payload for o in second.outcomes] == [
            o.payload for o in first.outcomes
        ]

    def test_changed_spec_misses(self, tmp_path):
        run_campaign(tiny_campaign(), jobs=0, cache_dir=tmp_path)
        changed = tiny_campaign(duration=6.0)
        rerun = run_campaign(changed, jobs=0, cache_dir=tmp_path)
        assert rerun.cache_hits == 0

    def test_failures_are_not_cached(self, tmp_path):
        bad = RunSpec(config=ExperimentConfig(
            strategy="lazy-master",
            params=TINY.with_(disconnect_time=5.0),
            duration=5.0,
        ))
        run_campaign([bad], jobs=0, cache_dir=tmp_path)
        rerun = run_campaign([bad], jobs=0, cache_dir=tmp_path)
        assert rerun.cache_hits == 0
        assert rerun.outcomes[0].status == "failed"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, jobs=0, cache_dir=tmp_path)
        cache = ResultCache(tmp_path)
        for spec in campaign.specs():
            cache.path(spec).write_text("{not json")
        rerun = run_campaign(campaign, jobs=0, cache_dir=tmp_path)
        assert rerun.cache_hits == 0
        assert rerun.ok_count == 2


class TestAggregation:
    def test_mean_and_ci_across_seeds(self):
        campaign = tiny_campaign(seeds=(0, 1, 2))
        outcome = run_campaign(campaign, jobs=0)
        (cell,) = outcome.aggregate()
        assert cell.n == 3 and cell.failures == 0
        commit = cell.rates["commit_rate"]
        assert commit.mean == pytest.approx(
            sum(commit.samples) / 3
        )
        assert commit.ci95_half_width >= 0
        # lazy-master's modelled rate is its deadlock rate (eq 19)
        assert cell.reference_rate == "deadlock_rate"
        assert cell.analytic == pytest.approx(
            ANALYTIC_REFERENCE["lazy-master"][1](cell.params)
        )

    def test_single_seed_has_zero_width(self):
        outcome = run_campaign(tiny_campaign(seeds=(0,)), jobs=0)
        (cell,) = outcome.aggregate()
        assert cell.rates["commit_rate"].ci95_half_width == 0.0
        assert cell.rates["commit_rate"].std == 0.0

    def test_failed_runs_counted_per_cell(self):
        bad = RunSpec(config=ExperimentConfig(
            strategy="lazy-master",
            params=TINY.with_(disconnect_time=5.0),
            duration=5.0,
        ))
        cells = aggregate(run_campaign([bad], jobs=0).outcomes)
        assert cells[0].n == 0 and cells[0].failures == 1
        assert cells[0].measured is None

    def test_fit_exponents_measured_and_analytic(self):
        campaign = Campaign(
            strategies=("eager-group",),
            base_params=ModelParameters(db_size=100, nodes=1, tps=3,
                                        actions=3, action_time=0.005),
            values=(2, 4, 8),
            seeds=(0, 1),
            duration=20.0,
        )
        outcome = run_campaign(campaign, jobs=0)
        (fit,) = fit_exponents(outcome.aggregate())
        assert fit.strategy == "eager-group"
        assert fit.rate == "deadlock_rate"
        # eq 12 is cubic in nodes; the measurement should grow steeply too
        assert fit.analytic == pytest.approx(3.0, abs=0.3)
        assert fit.measured is None or fit.measured > 1.0
        assert "eager-group" in fit.describe()

    def test_campaign_table_renders(self):
        outcome = run_campaign(tiny_campaign(), jobs=0)
        table = campaign_table(outcome.aggregate(), title="scorecard")
        assert "scorecard" in table
        assert "lazy-master" in table
        assert "sim/model" in table


class TestRoundTrips:
    def test_result_from_dict_round_trip(self):
        result = run_experiment(tiny_campaign().specs()[0].config)
        rebuilt = result_from_dict(result.config, result_to_dict(result))
        assert rebuilt.metrics.as_dict() == result.metrics.as_dict()
        assert rebuilt.rates == result.rates
        assert rebuilt.divergence == result.divergence
        assert rebuilt.end_time == result.end_time
        assert rebuilt.system is None

    def test_campaign_json_export(self, tmp_path):
        outcome = run_campaign(tiny_campaign(), jobs=0)
        path = write_json(campaign_to_dict(outcome), tmp_path / "c.json")
        data = json.loads(path.read_text())
        assert data["summary"]["runs"] == 2
        assert data["summary"]["ok"] == 2
        assert len(data["runs"]) == 2
        assert data["runs"][0]["config"]["strategy"] == "lazy-master"
        assert data["cells"][0]["rates"]["commit_rate"]["mean"] > 0

    def test_campaign_csv_export(self, tmp_path):
        outcome = run_campaign(tiny_campaign(), jobs=0)
        path = write_campaign_csv(outcome, tmp_path / "c.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("strategy,axis,value,rate")
        assert any(line.startswith("lazy-master,nodes,2,commit_rate")
                   for line in lines[1:])


class TestUnifiedExperimentApi:
    def test_tracer_threads_through_run_experiment(self):
        from repro.sim.tracing import Tracer

        tracer = Tracer(categories={"commit"})
        result = run_experiment(ExperimentConfig(
            strategy="eager-group", params=TINY, duration=5.0,
            tracer=tracer,
        ))
        assert tracer.count("commit") == result.metrics.commits > 0
        assert result.system is not None
        assert result.system.tracer is tracer

    def test_record_history_threads_through_run_experiment(self):
        result = run_experiment(ExperimentConfig(
            strategy="eager-master", params=TINY, duration=5.0,
            record_history=True, retry_deadlocks=True, commutative=True,
        ))
        history = result.system.history
        assert history is not None
        assert len(history.committed_ids) == result.metrics.commits
        assert history.conflict_graph().is_serializable()

    def test_retry_override_defaults_to_strategy_choice(self):
        from repro.harness import build_system

        default = build_system(ExperimentConfig(
            strategy="two-tier", params=TINY, duration=5.0))
        assert default.retry_deadlocks  # two-tier bases retry by default
        overridden = build_system(ExperimentConfig(
            strategy="two-tier", params=TINY, duration=5.0,
            retry_deadlocks=False))
        assert not overridden.retry_deadlocks

    def test_strategy_registry_covers_all_strategies(self):
        from repro.harness import STRATEGIES, STRATEGY_CLASSES, build_system

        assert set(STRATEGY_CLASSES) == set(STRATEGIES)
        for strategy in STRATEGIES:
            system = build_system(ExperimentConfig(
                strategy=strategy, params=TINY, duration=1.0))
            assert isinstance(system, STRATEGY_CLASSES[strategy])

    def test_config_provenance_includes_new_fields(self):
        config = ExperimentConfig(strategy="lazy-group", params=TINY,
                                  duration=5.0, record_history=True,
                                  propagate_ops=False)
        data = config_to_dict(config)
        assert data["record_history"] is True
        assert data["propagate_ops"] is False
        assert data["retry_deadlocks"] is None
