"""Tests for the write-ahead (undo) log."""

import pytest

from repro.exceptions import CrashAbort, InvalidStateError
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp
from repro.storage.wal import ACTIVE, CRASHED, RECOVERING, WriteAheadLog


@pytest.fixture()
def store():
    return ObjectStore(node_id=0, db_size=10)


def test_record_and_forget(store):
    wal = WriteAheadLog()
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    assert wal.pending_transactions() == 1
    assert wal.forget(1) == 1
    assert wal.pending_transactions() == 0


def test_undo_restores_value_and_timestamp(store):
    wal = WriteAheadLog()
    ts = Timestamp(1, 0)
    wal.record(1, 0, 0, Timestamp.ZERO, 5, ts)
    store.write(0, 5, ts)
    undone = wal.undo(1, store)
    assert undone == 1
    assert store.value(0) == 0
    assert store.timestamp(0) == Timestamp.ZERO


def test_undo_multiple_writes_reverse_order(store):
    wal = WriteAheadLog()
    # txn writes object 0 twice: 0 -> 5 -> 9
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    store.write(0, 5, Timestamp(1, 0))
    wal.record(1, 0, 5, Timestamp(1, 0), 9, Timestamp(2, 0))
    store.write(0, 9, Timestamp(2, 0))
    wal.undo(1, store)
    assert store.value(0) == 0  # fully back to the beginning


def test_undo_only_touches_own_txn(store):
    wal = WriteAheadLog()
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    wal.record(2, 1, 0, Timestamp.ZERO, 7, Timestamp(2, 0))
    store.write(0, 5, Timestamp(1, 0))
    store.write(1, 7, Timestamp(2, 0))
    wal.undo(1, store)
    assert store.value(0) == 0
    assert store.value(1) == 7  # txn 2 untouched
    assert wal.pending_transactions() == 1


def test_undo_unknown_txn_is_noop(store):
    wal = WriteAheadLog()
    assert wal.undo(42, store) == 0


def test_entries_for_preserves_order(store):
    wal = WriteAheadLog()
    wal.record(1, 3, 0, Timestamp.ZERO, 1, Timestamp(1, 0))
    wal.record(1, 4, 0, Timestamp.ZERO, 2, Timestamp(2, 0))
    oids = [e.oid for e in wal.entries_for(1)]
    assert oids == [3, 4]


def test_total_entries_counts_all(store):
    wal = WriteAheadLog()
    for i in range(5):
        wal.record(1, i, 0, Timestamp.ZERO, i, Timestamp(i + 1, 0))
    wal.forget(1)
    assert wal.total_entries == 5  # historical count survives forget


def test_assert_quiescent(store):
    wal = WriteAheadLog()
    wal.assert_quiescent()  # empty: fine
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    with pytest.raises(InvalidStateError):
        wal.assert_quiescent()
    wal.forget(1)
    wal.assert_quiescent()


# --------------------------------------------------------------------- #
# crash & recovery
# --------------------------------------------------------------------- #


def test_crash_rolls_back_in_flight_transaction(store):
    wal = WriteAheadLog()
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    store.write(0, 5, Timestamp(1, 0))
    undone = wal.crash(store)
    assert undone == 1
    assert store.value(0) == 0
    assert store.timestamp(0) == Timestamp.ZERO
    assert wal.pending_transactions() == 0
    assert wal.state == CRASHED


def test_crash_undoes_across_transactions_in_reverse_global_order(store):
    wal = WriteAheadLog()
    # txn 1 then txn 2 both write object 0: 0 -> 5 -> 9; reverse global
    # order must restore 9 -> 5 -> 0, ending at the original image
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    store.write(0, 5, Timestamp(1, 0))
    wal.record(2, 0, 5, Timestamp(1, 0), 9, Timestamp(2, 1))
    store.write(0, 9, Timestamp(2, 1))
    assert wal.crash(store) == 2
    assert store.value(0) == 0
    assert store.timestamp(0) == Timestamp.ZERO


def test_record_while_crashed_raises_crash_abort(store):
    wal = WriteAheadLog()
    wal.crash(store)
    with pytest.raises(CrashAbort):
        wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    assert wal.pending_transactions() == 0  # the rejected write left no undo


def test_double_crash_rejected(store):
    wal = WriteAheadLog()
    wal.crash(store)
    with pytest.raises(InvalidStateError):
        wal.crash(store)


def test_crash_during_recovery_rejected(store):
    wal = WriteAheadLog()
    wal.crash(store)
    wal.begin_recovery()
    with pytest.raises(InvalidStateError):
        wal.crash(store)


def test_recovery_lifecycle(store):
    wal = WriteAheadLog()
    assert wal.is_active
    wal.crash(store)
    with pytest.raises(InvalidStateError):
        wal.complete_recovery()  # must begin first
    wal.begin_recovery()
    assert wal.state == RECOVERING
    with pytest.raises(InvalidStateError):
        wal.begin_recovery()  # not crashed any more
    wal.complete_recovery()
    assert wal.state == ACTIVE
    # the log accepts writes again
    wal.record(3, 1, 0, Timestamp.ZERO, 2, Timestamp(3, 0))
    assert wal.pending_transactions() == 1


def test_begin_recovery_requires_crash(store):
    wal = WriteAheadLog()
    with pytest.raises(InvalidStateError):
        wal.begin_recovery()


def test_crash_abort_reason_is_crash():
    exc = CrashAbort("node 2 crashed")
    assert exc.reason == "crash"
