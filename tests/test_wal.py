"""Tests for the write-ahead (undo) log."""

import pytest

from repro.exceptions import InvalidStateError
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp
from repro.storage.wal import WriteAheadLog


@pytest.fixture()
def store():
    return ObjectStore(node_id=0, db_size=10)


def test_record_and_forget(store):
    wal = WriteAheadLog()
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    assert wal.pending_transactions() == 1
    assert wal.forget(1) == 1
    assert wal.pending_transactions() == 0


def test_undo_restores_value_and_timestamp(store):
    wal = WriteAheadLog()
    ts = Timestamp(1, 0)
    wal.record(1, 0, 0, Timestamp.ZERO, 5, ts)
    store.write(0, 5, ts)
    undone = wal.undo(1, store)
    assert undone == 1
    assert store.value(0) == 0
    assert store.timestamp(0) == Timestamp.ZERO


def test_undo_multiple_writes_reverse_order(store):
    wal = WriteAheadLog()
    # txn writes object 0 twice: 0 -> 5 -> 9
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    store.write(0, 5, Timestamp(1, 0))
    wal.record(1, 0, 5, Timestamp(1, 0), 9, Timestamp(2, 0))
    store.write(0, 9, Timestamp(2, 0))
    wal.undo(1, store)
    assert store.value(0) == 0  # fully back to the beginning


def test_undo_only_touches_own_txn(store):
    wal = WriteAheadLog()
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    wal.record(2, 1, 0, Timestamp.ZERO, 7, Timestamp(2, 0))
    store.write(0, 5, Timestamp(1, 0))
    store.write(1, 7, Timestamp(2, 0))
    wal.undo(1, store)
    assert store.value(0) == 0
    assert store.value(1) == 7  # txn 2 untouched
    assert wal.pending_transactions() == 1


def test_undo_unknown_txn_is_noop(store):
    wal = WriteAheadLog()
    assert wal.undo(42, store) == 0


def test_entries_for_preserves_order(store):
    wal = WriteAheadLog()
    wal.record(1, 3, 0, Timestamp.ZERO, 1, Timestamp(1, 0))
    wal.record(1, 4, 0, Timestamp.ZERO, 2, Timestamp(2, 0))
    oids = [e.oid for e in wal.entries_for(1)]
    assert oids == [3, 4]


def test_total_entries_counts_all(store):
    wal = WriteAheadLog()
    for i in range(5):
        wal.record(1, i, 0, Timestamp.ZERO, i, Timestamp(i + 1, 0))
    wal.forget(1)
    assert wal.total_entries == 5  # historical count survives forget


def test_assert_quiescent(store):
    wal = WriteAheadLog()
    wal.assert_quiescent()  # empty: fine
    wal.record(1, 0, 0, Timestamp.ZERO, 5, Timestamp(1, 0))
    with pytest.raises(InvalidStateError):
        wal.assert_quiescent()
    wal.forget(1)
    wal.assert_quiescent()
