"""Tests for lazy-group replication (Figure 4 timestamp protocol)."""

import pytest

from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.reconciliation import (
    ManualReconciliation,
    MergeCommutative,
)
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec


def make(num_nodes=3, db_size=20, **kw):
    kw.setdefault("action_time", 0.01)
    extras = {k: kw.pop(k) for k in ("rule", "propagate_ops") if k in kw}
    return LazyGroupSystem(
        SystemSpec(num_nodes=num_nodes, db_size=db_size, **kw), **extras)


def test_root_commits_locally_then_propagates():
    system = make()
    p = system.submit(0, [WriteOp(5, 42)])
    system.run()
    assert p.value.state.value == "committed"
    for node in system.nodes:
        assert node.store.value(5) == 42
    # Figure 1: one root + (N-1) replica-update transactions
    assert system.metrics.commits == 1
    assert system.metrics.replica_updates == 2
    assert system.network.messages_sent == 2


def test_lazy_transaction_count_matches_table_1():
    """Table 1: lazy propagation needs N transactions per user update."""
    system = make(num_nodes=5)
    system.submit(0, [WriteOp(0, 1)])
    system.run()
    total_txns = system.metrics.commits + system.metrics.replica_updates
    assert total_txns == 5


def test_sequential_updates_from_one_node_apply_cleanly():
    system = make()
    system.submit(0, [WriteOp(1, 10)])
    system.run()
    system.submit(0, [WriteOp(1, 20)])
    system.run()
    assert system.metrics.reconciliations == 0
    assert all(n.store.value(1) == 20 for n in system.nodes)


def test_racing_writes_detected_as_reconciliation():
    """Two nodes update the same object concurrently; the timestamp check
    (old_ts mismatch) must flag the dangerous replica update."""
    system = make(message_delay=1.0)
    system.submit(0, [WriteOp(3, 111)])
    system.submit(1, [WriteOp(3, 222)])
    system.run()
    assert system.metrics.reconciliations >= 1
    # default rule (latest timestamp wins) still converges
    assert system.converged()


def test_timestamp_scheme_loses_an_update():
    """The checkbook lost-update problem: concurrent increments via value
    shipping lose one delta under timestamp reconciliation."""
    system = make(message_delay=1.0, db_size=5)
    system.submit(0, [IncrementOp(0, 100)])
    system.submit(1, [IncrementOp(0, 10)])
    system.run()
    assert system.converged()
    final = system.nodes[0].store.value(0)
    assert final in (10, 100)  # one update was lost
    assert final != 110


def test_merge_commutative_rule_preserves_both_updates():
    """Section 6's third form: commutative updates merge instead of losing."""
    system = make(message_delay=1.0, db_size=5, rule=MergeCommutative(),
                  propagate_ops=True)
    system.submit(0, [IncrementOp(0, 100)])
    system.submit(1, [IncrementOp(0, 10)])
    system.run()
    assert system.converged()
    assert system.nodes[0].store.value(0) == 110


def test_manual_rule_leaves_system_diverged():
    """DEFER = waiting for a human: replicas disagree — system delusion."""
    system = make(message_delay=1.0, db_size=5, rule=ManualReconciliation())
    system.submit(0, [WriteOp(0, 111)])
    system.submit(1, [WriteOp(0, 222)])
    system.run()
    assert system.metrics.reconciliations >= 1
    assert system.divergence() >= 1


def test_duplicate_delivery_is_idempotent():
    system = make()
    p = system.submit(0, [WriteOp(2, 7)])
    system.run()
    # simulate a duplicate replica-update delivery
    updates = [
        u for u in []
    ]
    from repro.replication.base import ReplicaUpdate

    txn = p.value
    dup = [
        ReplicaUpdate(oid=u.oid, old_ts=u.old_ts, new_ts=u.new_ts,
                      new_value=u.new_value, op=u.op)
        for u in txn.updates
    ]
    system.network.send(0, 1, "replica-update", (dup, 0))
    system.run()
    assert system.nodes[1].store.value(2) == 7
    assert system.metrics.reconciliations == 0


def test_disconnected_node_defers_propagation_both_ways():
    system = make()
    system.network.disconnect(2)
    system.submit(0, [WriteOp(1, 5)])   # inbound for node 2 parks
    system.submit(2, [WriteOp(8, 9)])   # node 2 commits locally, outbound parks
    system.run()
    assert system.nodes[2].store.value(1) == 0
    assert system.nodes[0].store.value(8) == 0
    assert system.nodes[2].store.value(8) == 9  # local commit worked
    system.network.reconnect(2)
    system.run()
    assert system.nodes[2].store.value(1) == 5
    assert system.nodes[0].store.value(8) == 9
    assert system.converged()


def test_overlapping_disconnected_updates_reconcile_on_reconnect():
    """The equation 15-18 mechanism: updates to the same object from two
    disconnected nodes collide at exchange time."""
    system = make()
    system.network.disconnect(1)
    system.network.disconnect(2)
    system.submit(1, [WriteOp(4, 111)])
    system.submit(2, [WriteOp(4, 222)])
    system.run()
    system.network.reconnect(1)
    system.run()
    system.network.reconnect(2)
    system.run()
    assert system.metrics.reconciliations >= 1
    assert system.converged()


def test_aborted_root_does_not_propagate():
    system = make(num_nodes=2, db_size=4)
    # engineer a local deadlock so one root aborts
    system.submit(0, [WriteOp(0, 1), WriteOp(1, 1)])
    system.submit(0, [WriteOp(1, 2), WriteOp(0, 2)])
    system.run()
    sent_batches = system.metrics.commits  # one message per remote node
    assert system.network.messages_sent == sent_batches
    assert system.converged()
