"""Tests for the load-test client stack: histogram, wire codec, Zipf
skew, and a real gateway+loadtest pair with the end-to-end oracle."""

import asyncio
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.service import (
    GatewayConfig,
    LatencyHistogram,
    LoadtestConfig,
    ServiceGateway,
    run_loadtest,
)
from repro.service.protocol import (
    ProtocolError,
    decode_acceptance,
    decode_line,
    decode_ops,
    encode_line,
    encode_op,
)
from repro.txn.ops import AppendOp, IncrementOp, MultiplyOp, ReadOp, WriteOp
from repro.workload import ZipfProfile, ZipfSampler


class TestLatencyHistogram:
    def test_percentiles_within_bucket_resolution(self):
        hist = LatencyHistogram()
        samples = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        for s in samples:
            hist.record(s)
        for q in (50, 90, 95, 99):
            exact = samples[int(len(samples) * q / 100) - 1]
            quoted = hist.percentile(q)
            assert quoted >= exact * 0.93  # never under-report past 7%
            assert quoted <= exact * 1.15  # one bucket of over-report

    def test_percentiles_are_monotonic(self):
        hist = LatencyHistogram()
        rng = random.Random(3)
        for _ in range(500):
            hist.record(rng.expovariate(100.0))
        quantiles = [hist.percentile(q) for q in (10, 50, 90, 99, 100)]
        assert quantiles == sorted(quantiles)

    def test_never_quotes_beyond_the_observed_max(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        assert hist.percentile(99) == 0.5
        assert hist.percentile(100) == 0.5

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) is None
        assert hist.mean is None
        summary = hist.summary_ms()
        assert summary["count"] == 0
        assert summary["p99"] is None

    def test_rejects_negative_samples_and_bad_quantiles(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-0.1)
        hist.record(0.1)
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_merge_equals_combined_recording(self):
        rng = random.Random(7)
        samples = [rng.uniform(0.0001, 2.0) for _ in range(300)]
        combined = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i, s in enumerate(samples):
            combined.record(s)
            (left if i % 2 else right).record(s)
        left.merge(right)
        assert left.counts == combined.counts
        assert left.count == combined.count
        assert left.min == combined.min
        assert left.max == combined.max
        assert left.total == pytest.approx(combined.total)

    def test_dict_round_trip(self):
        hist = LatencyHistogram()
        for s in (0.001, 0.01, 0.01, 3.0):
            hist.record(s)
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.min == hist.min
        assert clone.max == hist.max
        assert clone.percentile(50) == hist.percentile(50)

    def test_from_dict_rejects_foreign_bucket_layout(self):
        """Regression: silently adopting counts serialized under a
        different base/growth would mis-bucket every sample on merge."""
        hist = LatencyHistogram()
        hist.record(0.01)
        payload = hist.to_dict()
        for key, bad in (("base_seconds", 1e-5), ("growth", 1.1)):
            broken = dict(payload)
            broken[key] = bad
            with pytest.raises(ValueError, match="layout mismatch"):
                LatencyHistogram.from_dict(broken)
        # payloads predating the layout fields assume the current layout
        legacy = {k: v for k, v in payload.items()
                  if k not in ("base_seconds", "growth")}
        assert LatencyHistogram.from_dict(legacy).count == 1


class TestWireCodec:
    def test_ops_round_trip(self):
        ops = [
            IncrementOp(3, -5),
            WriteOp(1, 42),
            ReadOp(9),
            MultiplyOp(2, 1.5),
            AppendOp(4, "entry"),
        ]
        decoded = decode_ops([encode_op(op) for op in ops])
        assert decoded == ops

    def test_append_items_come_back_hashable(self):
        # JSON renders tuples as lists; the decoder must coerce them back
        # so AppendOp items stay hashable/sortable in the record store
        [op] = decode_ops([["append", 0, [1, "h", 2.5]]])
        assert op.item == (1, "h", 2.5)
        hash(op.item)

    @pytest.mark.parametrize("raw", [
        None,
        [],
        [["frob", 1, 2]],
        [["inc", 1]],
        [["read", 1, 2]],
        ["inc", 1, 2],  # forgot the nesting
    ])
    def test_bad_ops_raise_protocol_errors(self, raw):
        with pytest.raises(ProtocolError):
            decode_ops(raw)

    def test_acceptance_names(self):
        assert type(decode_acceptance(None)).__name__ == "AlwaysAccept"
        for name in ("always", "identical", "non-negative",
                     "price-not-above", "within-tolerance"):
            decode_acceptance(name)  # must resolve
        with pytest.raises(ProtocolError):
            decode_acceptance("optimistic")

    def test_line_round_trip_and_errors(self):
        frame = {"type": "txn", "id": 7, "ops": [["inc", 0, 1]]}
        assert decode_line(encode_line(frame)) == frame
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b"[1,2,3]\n")
        with pytest.raises(ProtocolError):
            decode_line(b'{"no_type": true}\n')
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (2 << 20))


class TestZipf:
    def test_theta_and_n_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, theta=0.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, theta=1.0)

    def test_samples_stay_in_range(self):
        sampler = ZipfSampler(100, theta=0.99)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 100 for _ in range(5000))

    def test_low_ranks_are_hot(self):
        sampler = ZipfSampler(1000, theta=0.99)
        rng = random.Random(2)
        draws = [sampler.sample(rng) for _ in range(20000)]
        top_decile = sum(1 for d in draws if d < 100)
        # uniform would put ~10% in the first decile; YCSB-0.99 puts the
        # clear majority there
        assert top_decile / len(draws) > 0.5

    def test_flatter_theta_is_less_skewed(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        hot = ZipfSampler(1000, theta=0.99)
        mild = ZipfSampler(1000, theta=0.2)
        hot_share = sum(
            1 for _ in range(10000) if hot.sample(rng_a) < 100
        )
        mild_share = sum(
            1 for _ in range(10000) if mild.sample(rng_b) < 100
        )
        assert hot_share > mild_share

    def test_profile_yields_distinct_oids(self):
        profile = ZipfProfile(actions=5, db_size=50, theta=0.9)
        rng = random.Random(4)
        for _ in range(200):
            oids = profile.choose_oids(rng)
            assert len(oids) == len(set(oids)) == 5

    def test_choose_oids_is_bounded_under_extreme_skew(self):
        """Regression: with ``actions`` near ``db_size`` under strong skew
        the unbounded rejection loop could spin pathologically re-drawing
        the same hot ranks; the attempt budget plus hottest-first fill must
        always return promptly with distinct in-range ids."""
        profile = ZipfProfile(actions=50, db_size=50, theta=0.99)
        rng = random.Random(5)
        for _ in range(50):
            oids = profile.choose_oids(rng)
            # demanding the whole database yields exactly a permutation
            assert sorted(oids) == list(range(50))
        near_full = ZipfProfile(actions=45, db_size=50, theta=0.99)
        for _ in range(50):
            oids = near_full.choose_oids(rng)
            assert len(oids) == len(set(oids)) == 45
            assert all(0 <= oid < 50 for oid in oids)


class TestLoadtestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadtestConfig(clients=0)
        with pytest.raises(ConfigurationError):
            LoadtestConfig(rate=0)
        with pytest.raises(ConfigurationError):
            LoadtestConfig(workload="bogus")
        with pytest.raises(ConfigurationError):
            LoadtestConfig(zipf_theta=1.5)

    def test_tpcb_db_size_follows_branches(self):
        config = LoadtestConfig(workload="tpcb", branches=2)
        assert config.effective_db_size() == 2 * (1 + 10 + 1000 + 1)


def _run_pair(gateway_config, loadtest_config, tmp_path):
    async def main():
        path = str(tmp_path / "lt.sock")
        gateway = ServiceGateway(gateway_config)
        await gateway.start(unix_path=path)
        server = asyncio.create_task(gateway.run())
        try:
            return await run_loadtest(loadtest_config, unix_path=path)
        finally:
            gateway.request_stop()
            await server

    return asyncio.run(main())


class TestLiveLoadtest:
    def test_uniform_run_is_oracle_clean(self, tmp_path):
        result = _run_pair(
            GatewayConfig(db_size=200, max_inflight=64),
            LoadtestConfig(clients=8, rate=300.0, duration=1.0,
                           workload="uniform", actions=2, db_size=200,
                           seed=11),
            tmp_path,
        )
        assert result["schema"] == 1
        assert result["kind"] == "service-loadtest"
        assert result["completed"] == result["sent"] > 0
        assert result["errors"] == 0
        assert result["lost"] == 0
        assert result["latency_ms"]["count"] == result["completed"]
        assert result["latency_ms"]["p99"] is not None
        oracle = result["oracle"]
        assert oracle["ok"], oracle
        assert oracle["base_divergence"] == 0
        assert oracle["wal_quiescent"] is True
        assert oracle["store_sum"] == pytest.approx(
            oracle["expected_store_sum"]
        )

    def test_checkbook_run_produces_real_rejections(self, tmp_path):
        result = _run_pair(
            GatewayConfig(db_size=100, max_inflight=64),
            LoadtestConfig(clients=8, rate=300.0, duration=1.0,
                           workload="checkbook", db_size=100, seed=5),
            tmp_path,
        )
        # overdrafts against a zero-balance book: the non-negative
        # criterion must actually fire, and the oracle must still balance
        # because rejected debits never reach the base store
        assert result["rejected"] > 0
        assert result["rejection_rate"] > 0
        assert result["oracle"]["ok"], result["oracle"]

    def test_zipf_skew_run_is_oracle_clean(self, tmp_path):
        result = _run_pair(
            GatewayConfig(db_size=150, max_inflight=64),
            LoadtestConfig(clients=4, rate=200.0, duration=0.8,
                           workload="uniform", zipf_theta=0.99,
                           actions=2, db_size=150, seed=3),
            tmp_path,
        )
        assert result["completed"] > 0
        assert result["oracle"]["ok"], result["oracle"]

    def test_no_drain_skips_the_oracle(self, tmp_path):
        result = _run_pair(
            GatewayConfig(db_size=100),
            LoadtestConfig(clients=2, rate=100.0, duration=0.5,
                           workload="uniform", db_size=100, drain=False),
            tmp_path,
        )
        assert "oracle" not in result
        assert result["completed"] > 0
