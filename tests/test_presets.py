"""Tests for the scenario presets and their CLI integration."""

import pytest

from repro.analytic.presets import PRESETS, preset
from repro.cli import main


def test_all_presets_are_valid_parameters():
    for name, params in PRESETS.items():
        assert params.db_size > 0, name
        assert params.nodes > 0, name


def test_preset_lookup():
    assert preset("paper-baseline").db_size == 10_000
    with pytest.raises(KeyError) as err:
        preset("bogus")
    assert "available" in str(err.value)


def test_mobile_presets_have_disconnects():
    assert preset("mobile-nightly").disconnect_time == 24 * 3600
    assert preset("mobile-hourly").disconnect_time == 3600


def test_checkbook_preset_matches_the_story():
    p = preset("checkbook")
    assert p.nodes == 3  # you, spouse, bank
    assert p.actions == 1  # one check at a time


def test_nightly_collisions_exceed_hourly():
    """More pent-up updates per cycle -> more collisions (eq 17)."""
    from repro.analytic import lazy_group

    nightly = lazy_group.collision_probability(preset("mobile-nightly"))
    hourly = lazy_group.collision_probability(preset("mobile-hourly"))
    assert nightly > hourly


def test_cli_accepts_preset(capsys):
    assert main(["danger", "--preset", "mobile-hourly"]) == 0
    out = capsys.readouterr().out
    assert "eq 18" in out  # disconnect_time > 0 adds the mobile curve


def test_cli_preset_with_override(capsys):
    assert main(["tables", "--preset", "checkbook", "--nodes", "7"]) == 0
    out = capsys.readouterr().out
    assert "7" in out
