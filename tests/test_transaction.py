"""Tests for the Transaction record and lifecycle."""

import pytest

from repro.exceptions import InvalidStateError
from repro.storage.versioning import Timestamp
from repro.txn.ops import WriteOp
from repro.txn.transaction import Transaction, TxnState, UpdateRecord


def make_update(oid, new_value=1):
    return UpdateRecord(
        oid=oid,
        op=WriteOp(oid, new_value),
        old_value=0,
        old_ts=Timestamp.ZERO,
        new_value=new_value,
        new_ts=Timestamp(1, 0),
    )


def test_ids_monotonically_increase():
    a = Transaction(origin_node=0, start_time=0.0)
    b = Transaction(origin_node=0, start_time=0.0)
    assert b.txn_id > a.txn_id


def test_initial_state_active():
    txn = Transaction(origin_node=1, start_time=2.5)
    assert txn.active
    assert txn.state is TxnState.ACTIVE
    assert txn.start_time == 2.5
    assert txn.origin_node == 1


def test_commit_transition():
    txn = Transaction(origin_node=0, start_time=1.0)
    txn.mark_committed(3.0)
    assert txn.state is TxnState.COMMITTED
    assert txn.end_time == 3.0
    assert txn.duration == 2.0


def test_abort_records_reason():
    txn = Transaction(origin_node=0, start_time=0.0)
    txn.mark_aborted(1.0, reason="deadlock")
    assert txn.state is TxnState.ABORTED
    assert txn.abort_reason == "deadlock"


def test_double_commit_rejected():
    txn = Transaction(origin_node=0, start_time=0.0)
    txn.mark_committed(1.0)
    with pytest.raises(InvalidStateError):
        txn.mark_committed(2.0)


def test_commit_after_abort_rejected():
    txn = Transaction(origin_node=0, start_time=0.0)
    txn.mark_aborted(1.0)
    with pytest.raises(InvalidStateError):
        txn.mark_committed(2.0)


def test_require_active_raises_when_done():
    txn = Transaction(origin_node=0, start_time=0.0)
    txn.require_active()  # fine
    txn.mark_committed(1.0)
    with pytest.raises(InvalidStateError):
        txn.require_active()


def test_duration_none_while_active():
    assert Transaction(origin_node=0, start_time=0.0).duration is None


def test_write_set_deduplicates_preserving_order():
    txn = Transaction(origin_node=0, start_time=0.0)
    for oid in [3, 1, 3, 2, 1]:
        txn.record_update(make_update(oid))
    assert txn.write_set == [3, 1, 2]


def test_reads_recorded_in_order():
    txn = Transaction(origin_node=0, start_time=0.0)
    txn.record_read("a")
    txn.record_read("b")
    assert txn.reads == ["a", "b"]
