"""Tests for counters, rates, and report rendering."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import Metrics, format_series, format_table, summarize
from repro.metrics.report import growth_caption


class TestMetrics:
    def test_defaults_zero(self):
        m = Metrics()
        assert m.waits == 0
        assert m.deadlocks == 0
        assert all(v == 0 for v in m.as_dict().values())

    def test_bump_known_counter(self):
        m = Metrics()
        m.bump("waits")
        m.bump("waits", 4)
        assert m.waits == 5

    def test_bump_adhoc_counter_goes_to_extra(self):
        m = Metrics()
        m.bump("custom_thing", 2)
        assert m.extra["custom_thing"] == 2
        assert m.as_dict()["custom_thing"] == 2

    def test_merged_with_sums_everything(self):
        a, b = Metrics(), Metrics()
        a.bump("waits", 3)
        a.bump("x", 1)
        b.bump("waits", 2)
        b.bump("deadlocks", 1)
        merged = a.merged_with(b)
        assert merged.waits == 5
        assert merged.deadlocks == 1
        assert merged.extra["x"] == 1


class TestRates:
    def test_rates_divide_by_horizon(self):
        m = Metrics()
        m.waits = 50
        m.deadlocks = 10
        m.commits = 200
        summary = summarize(m, horizon=10.0)
        assert summary.wait_rate == 5.0
        assert summary.deadlock_rate == 1.0
        assert summary.commit_rate == 20.0

    def test_zero_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize(Metrics(), horizon=0)

    def test_as_dict_round_trip(self):
        summary = summarize(Metrics(), horizon=5.0)
        d = summary.as_dict()
        assert d["horizon"] == 5.0
        assert d["wait_rate"] == 0.0


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bbbb"], [(1, 2), (300, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bbbb" in lines[0]
        # all rows same width
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_with_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_table_large_and_small_floats(self):
        text = format_table(["v"], [(1.23456e8,), (0.000012,), (0.0,)])
        assert "e+" in text or "E+" in text
        assert "e-" in text
        assert "0" in text

    def test_format_series_log_bars_grow(self):
        text = format_series([1, 10, 100], [1.0, 1000.0, 1e6],
                             x_label="n", y_label="rate")
        lines = text.splitlines()[1:]
        bars = [line.count("#") for line in lines]
        assert bars[0] < bars[1] < bars[2]

    def test_format_series_handles_zeros(self):
        text = format_series([1, 2], [0.0, 5.0])
        assert "0" in text  # zero row rendered without a bar

    def test_format_series_all_zero(self):
        text = format_series([1, 2], [0.0, 0.0])
        assert "1" in text and "2" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1.0, 2.0])

    def test_growth_caption_names_orders(self):
        assert "cubic" in growth_caption(2.98)
        assert "quadratic" in growth_caption(2.1)
        assert "linear" in growth_caption(1.02)
        assert "quintic" in growth_caption(4.9)
