"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Engine
from repro.sim.events import Timeout


def test_initial_clock_is_zero():
    assert Engine().now == 0.0


def test_schedule_runs_callback_at_delay():
    engine = Engine()
    seen = []
    engine.schedule(5.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [5.0]


def test_schedule_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_same_time_events_run_fifo():
    engine = Engine()
    order = []
    for tag in ["a", "b", "c"]:
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_before_later_events():
    engine = Engine()
    seen = []
    engine.schedule(1.0, seen.append, 1)
    engine.schedule(10.0, seen.append, 10)
    engine.run(until=5.0)
    assert seen == [1]
    assert engine.now == 5.0
    # the later event is still queued and runs on the next call
    engine.run()
    assert seen == [1, 10]
    assert engine.now == 10.0


def test_run_until_advances_clock_even_without_events():
    engine = Engine()
    engine.run(until=42.0)
    assert engine.now == 42.0


def test_events_interleave_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(3.0, seen.append, "late")
    engine.schedule(1.0, seen.append, "early")
    engine.schedule(2.0, seen.append, "middle")
    engine.run()
    assert seen == ["early", "middle", "late"]


def test_callbacks_can_schedule_more_events():
    engine = Engine()
    seen = []

    def first():
        seen.append(("first", engine.now))
        engine.schedule(2.0, second)

    def second():
        seen.append(("second", engine.now))

    engine.schedule(1.0, first)
    engine.run()
    assert seen == [("first", 1.0), ("second", 3.0)]


def test_process_simple_timeout():
    engine = Engine()

    def proc():
        yield engine.timeout(2.5)
        return "done"

    p = engine.process(proc())
    engine.run()
    assert p.value == "done"
    assert engine.now == 2.5


def test_process_return_value_none_by_default():
    engine = Engine()

    def proc():
        yield engine.timeout(1.0)

    p = engine.process(proc())
    engine.run()
    assert p.value is None


def test_process_requires_generator():
    engine = Engine()

    def not_a_generator():
        return 42

    with pytest.raises(SimulationError):
        engine.process(not_a_generator)  # forgot to call it / not a generator


def test_process_waits_for_event():
    engine = Engine()
    gate = engine.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((engine.now, value))

    engine.process(waiter())
    engine.schedule(4.0, gate.succeed, "opened")
    engine.run()
    assert seen == [(4.0, "opened")]


def test_process_waits_for_other_process():
    engine = Engine()

    def child():
        yield engine.timeout(3.0)
        return "child-result"

    def parent():
        result = yield engine.process(child())
        return f"got {result}"

    p = engine.process(parent())
    engine.run()
    assert p.value == "got child-result"


def test_process_exception_fails_its_completion_event():
    engine = Engine()

    def boom():
        yield engine.timeout(1.0)
        raise ValueError("kaput")

    p = engine.process(boom())
    engine.run()
    assert p.settled
    assert isinstance(p.exception, ValueError)


def test_failed_child_raises_in_parent():
    engine = Engine()

    def child():
        yield engine.timeout(1.0)
        raise ValueError("kaput")

    def parent():
        try:
            yield engine.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    p = engine.process(parent())
    engine.run()
    assert p.value == "caught kaput"


def test_yielding_garbage_fails_the_process():
    engine = Engine()

    def bad():
        yield 42

    p = engine.process(bad())
    engine.run()
    assert isinstance(p.exception, SimulationError)


def test_two_processes_interleave():
    engine = Engine()
    trace = []

    def ticker(name, period, count):
        for _ in range(count):
            yield engine.timeout(period)
            trace.append((engine.now, name))

    engine.process(ticker("fast", 1.0, 3))
    engine.process(ticker("slow", 2.0, 2))
    engine.run()
    # at t=2.0 "slow" resumes first: its timeout was scheduled at t=0,
    # before "fast" re-armed at t=1.0 (FIFO among same-instant events)
    assert trace == [
        (1.0, "fast"),
        (2.0, "slow"),
        (2.0, "fast"),
        (3.0, "fast"),
        (4.0, "slow"),
    ]


def test_yield_already_settled_event_resumes_immediately():
    engine = Engine()
    done = engine.event()
    done.succeed("early")

    def proc():
        value = yield done
        return value

    p = engine.process(proc())
    engine.run()
    assert p.value == "early"
    assert engine.now == 0.0


def test_peek_and_queued_events():
    engine = Engine()
    assert engine.peek() is None
    engine.schedule(7.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    assert engine.peek() == 3.0
    assert engine.queued_events == 2


def test_reentrant_run_rejected():
    engine = Engine()

    def nested():
        engine.run()

    engine.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        engine.run()


def test_zero_delay_timeout_allowed():
    engine = Engine()

    def proc():
        yield engine.timeout(0.0)
        return engine.now

    p = engine.process(proc())
    engine.run()
    assert p.value == 0.0


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-0.5)


def test_determinism_two_identical_runs():
    def build_and_run():
        engine = Engine()
        trace = []

        def proc(name, period):
            for _ in range(5):
                yield engine.timeout(period)
                trace.append((round(engine.now, 9), name))

        engine.process(proc("a", 0.3))
        engine.process(proc("b", 0.7))
        engine.run()
        return trace

    assert build_and_run() == build_and_run()
