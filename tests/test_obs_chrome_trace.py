"""Chrome/Perfetto trace export: JSON schema validity and event mapping."""

import json

from repro.analytic import ModelParameters
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.obs.chrome_trace import (
    chrome_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim.tracing import TraceEvent, Tracer


def _faulted_run(seed=2):
    params = ModelParameters(
        db_size=80, nodes=4, tps=8, actions=4, action_time=0.005
    )
    duration = 25.0
    tracer = Tracer()
    run_experiment(
        ExperimentConfig(
            strategy="lazy-group",
            params=params,
            duration=duration,
            seed=seed,
            faults=FaultPlan.from_spec(
                "partition=5,drop=0.02", num_nodes=4, duration=duration
            ),
            tracer=tracer,
        )
    )
    return tracer


# --------------------------------------------------------------------- #
# unit-level mapping
# --------------------------------------------------------------------- #


def test_commit_with_start_becomes_complete_slice():
    events = [
        TraceEvent(time=2.5, category="commit",
                   detail={"txn": 7, "origin": 1, "start": 2.0}),
    ]
    out = chrome_trace_events(events)
    slices = [e for e in out if e["ph"] == "X"]
    assert len(slices) == 1
    s = slices[0]
    assert s["pid"] == 1
    assert s["tid"] == 7
    assert s["ts"] == 2.0e6
    assert s["dur"] == 0.5e6
    assert s["cat"] == "txn,commit"


def test_fault_and_partition_are_global_instants():
    events = [
        TraceEvent(time=1.0, category="partition",
                   detail={"phase": "start", "left": [0], "right": [1]}),
        TraceEvent(time=2.0, category="fault",
                   detail={"kind": "drop", "src": 0, "dst": 1}),
    ]
    out = [e for e in chrome_trace_events(events) if e["ph"] == "i"]
    assert all(e["s"] == "g" and e["pid"] == 0 for e in out)
    assert out[1]["name"] == "fault:drop"


def test_node_scoped_instant():
    events = [
        TraceEvent(time=1.0, category="deadlock",
                   detail={"txn": 3, "node": 2}),
    ]
    (instant,) = (e for e in chrome_trace_events(events) if e["ph"] == "i")
    assert instant["s"] == "p"
    assert instant["pid"] == 2


def test_metadata_covers_requested_nodes():
    out = chrome_trace_events([], num_nodes=3)
    names = [e for e in out if e["name"] == "process_name"]
    assert [e["pid"] for e in names] == [0, 1, 2]
    assert names[1]["args"]["name"] == "node 1"


# --------------------------------------------------------------------- #
# whole-trace schema checks on a real faulted run
# --------------------------------------------------------------------- #


def test_trace_json_roundtrip_and_schema(tmp_path):
    tracer = _faulted_run()
    path = write_chrome_trace(tracer, tmp_path / "trace.json", num_nodes=4)
    doc = json.load(path.open())  # must be loadable JSON

    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["events"] == len(tracer)

    body = [e for e in events if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts), "body events must be ts-ordered"
    assert all(e["ts"] >= 0 for e in body)
    assert all(e.get("dur", 0) >= 0 for e in body)

    # per-node tracks: every node both named and used
    named = {e["pid"] for e in events if e.get("name") == "process_name"}
    assert named == {0, 1, 2, 3}
    slice_pids = {e["pid"] for e in body if e["ph"] == "X"}
    assert slice_pids <= {0, 1, 2, 3} and len(slice_pids) > 1

    # the chaos scenario must leave at least one fault/deadlock instant
    instants = [e for e in body if e["ph"] == "i"]
    assert any(e["cat"] in ("fault", "partition", "deadlock")
               for e in instants)


def test_exotic_detail_values_stringified():
    events = [
        TraceEvent(time=0.5, category="partition",
                   detail={"phase": "start", "left": [0, 1],
                           "right": (2, object())}),
    ]
    doc = to_chrome_trace(events)
    json.dumps(doc)  # must not raise


def test_trace_without_start_detail_degrades_to_instant():
    # commit events lacking the start detail (older traces) still export
    events = [TraceEvent(time=1.0, category="commit", detail={"txn": 1})]
    out = [e for e in chrome_trace_events(events) if e["ph"] != "M"]
    assert len(out) == 1
    assert out[0]["ph"] == "i"
