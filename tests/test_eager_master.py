"""Tests for eager-master replication."""

import pytest

from repro.exceptions import MasterUnavailableError
from repro.replication.eager_master import (
    EagerMasterSystem,
    round_robin_ownership,
    single_master_ownership,
)
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec


def make(num_nodes=3, db_size=12, **kw):
    kw.setdefault("action_time", 0.01)
    extras = {k: kw.pop(k) for k in ("ownership",) if k in kw}
    return EagerMasterSystem(
        SystemSpec(num_nodes=num_nodes, db_size=db_size, **kw), **extras)


class TestOwnership:
    def test_round_robin(self):
        owners = round_robin_ownership(6, 3)
        assert owners == {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}

    def test_single_master(self):
        owners = single_master_ownership(4, master=1)
        assert set(owners.values()) == {1}

    def test_invalid_ownership_rejected(self):
        with pytest.raises(MasterUnavailableError):
            make(ownership={0: 99})

    def test_partial_ownership_rejected(self):
        with pytest.raises(MasterUnavailableError):
            make(ownership={0: 0})  # other oids unmapped

    def test_master_of(self):
        system = make()
        assert system.master_of(4).node_id == 4 % 3


class TestExecution:
    def test_update_reaches_all_replicas(self):
        system = make()
        system.submit(0, [WriteOp(5, 42)])
        system.run()
        for node in system.nodes:
            assert node.store.value(5) == 42

    def test_master_lock_taken_first(self):
        """All writers of an object serialize at its master: with
        single-object transactions there can be no deadlock."""
        system = make(num_nodes=3, db_size=3)
        for origin in range(3):
            for oid in range(3):
                system.submit(origin, [IncrementOp(oid, 1)])
        system.run()
        assert system.metrics.deadlocks == 0
        assert system.metrics.commits == 9
        for oid in range(3):
            assert system.nodes[0].store.value(oid) == 3
        assert system.converged()

    def test_multi_object_transactions_can_still_deadlock(self):
        system = make(num_nodes=2, db_size=2)
        # objects 0 and 1 have masters 0 and 1: opposite orders can cycle
        system.submit(0, [WriteOp(0, 1), WriteOp(1, 1)])
        system.submit(1, [WriteOp(1, 2), WriteOp(0, 2)])
        system.run()
        # whatever happened, state must be consistent and work accounted
        assert system.metrics.commits + system.metrics.aborts == 2
        assert system.converged()

    def test_any_disconnect_blocks_updates(self):
        system = make()
        system.network.disconnect(1)
        p = system.submit(0, [WriteOp(0, 5)])
        system.run()
        assert p.value.state.value == "aborted"
        assert p.value.abort_reason == "master-unreachable"

    def test_commutative_load_preserves_all_updates(self):
        system = make(num_nodes=3, db_size=6, retry_deadlocks=True)
        for origin in range(3):
            for _ in range(4):
                system.submit(origin, [IncrementOp(1, 1), IncrementOp(4, 1)])
        system.run()
        assert system.nodes[0].store.value(1) == 12
        assert system.nodes[0].store.value(4) == 12
        assert system.converged()
