"""Tests for the service-mode CLI surface: ``serve``, ``loadtest``, and
``report --loadtest``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import service_report_markdown

SAMPLE_RESULT = {
    "schema": 1,
    "kind": "service-loadtest",
    "config": {"clients": 4, "rate": 100.0, "duration": 1.0,
               "workload": "uniform", "db_size": 50},
    "sent": 100,
    "completed": 100,
    "accepted": 90,
    "rejected": 10,
    "errors": 0,
    "lost": 0,
    "elapsed_seconds": 1.02,
    "throughput_committed_per_sec": 88.2,
    "completed_per_sec": 98.0,
    "rejection_rate": 0.1,
    "latency_ms": {"p50": 1.2, "p90": 2.0, "p95": 2.5, "p99": 4.0,
                   "mean": 1.4, "max": 5.0, "count": 100},
    "oracle": {"ok": True, "store_sum": 123, "expected_store_sum": 123.0,
               "accepted_delta_sum": 123.0, "base_divergence": 0,
               "wal_quiescent": True, "lost_replies": 0},
}


def test_parser_knows_the_service_verbs():
    parser = build_parser()
    args = parser.parse_args(["serve", "--socket", "/tmp/x.sock",
                              "--mobiles", "8"])
    assert args.mobiles == 8 and args.socket == "/tmp/x.sock"
    args = parser.parse_args(["loadtest", "--port", "9999",
                              "--clients", "50", "--zipf", "0.9"])
    assert args.clients == 50 and args.zipf == 0.9


def test_loadtest_requires_an_endpoint():
    with pytest.raises(SystemExit, match="endpoint"):
        main(["loadtest", "--clients", "2"])


def test_report_renders_a_loadtest_result(tmp_path, capsys):
    source = tmp_path / "result.json"
    source.write_text(json.dumps(SAMPLE_RESULT), encoding="utf-8")
    assert main(["report", "--loadtest", str(source)]) == 0
    out = capsys.readouterr().out
    assert "Service loadtest report" in out
    assert "committed/sec" in out
    assert "88.2" in out
    assert "p99" in out
    assert "Oracle: ok" in out


def test_report_writes_the_markdown_file(tmp_path):
    source = tmp_path / "result.json"
    source.write_text(json.dumps(SAMPLE_RESULT), encoding="utf-8")
    target = tmp_path / "out" / "service.md"
    assert main(["report", "--loadtest", str(source),
                 "--out", str(target)]) == 0
    text = target.read_text(encoding="utf-8")
    assert "# Service loadtest report" in text
    assert "rejection rate" in text


def test_report_rejects_missing_or_foreign_json(tmp_path):
    with pytest.raises(SystemExit, match="cannot read"):
        main(["report", "--loadtest", str(tmp_path / "nope.json")])
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"kind": "campaign"}), encoding="utf-8")
    with pytest.raises(SystemExit, match="not a service loadtest"):
        main(["report", "--loadtest", str(foreign)])


def test_markdown_marks_undrained_runs(tmp_path):
    payload = {k: v for k, v in SAMPLE_RESULT.items() if k != "oracle"}
    text = service_report_markdown(payload)
    assert "Oracle: n/a" in text


def test_markdown_shows_oracle_failures():
    payload = dict(SAMPLE_RESULT)
    payload["oracle"] = dict(payload["oracle"], ok=False, base_divergence=3)
    text = service_report_markdown(payload)
    assert "Oracle: FAIL" in text
