"""Tests for the tracing facility."""

import pytest

from repro.sim.tracing import TraceEvent, Tracer
from repro.replication import SystemSpec


class TestTracerUnit:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit(1.0, "commit", txn=5)
        tracer.emit(2.0, "abort", txn=6, reason="deadlock")
        assert len(tracer) == 2
        assert tracer.count("commit") == 1
        assert tracer.events("abort")[0].detail["reason"] == "deadlock"

    def test_category_filter(self):
        tracer = Tracer(categories={"deadlock"})
        tracer.emit(1.0, "commit", txn=5)
        tracer.emit(2.0, "deadlock", txn=6)
        assert len(tracer) == 1
        assert tracer.events()[0].category == "deadlock"

    def test_ring_buffer_limit(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            tracer.emit(float(i), "wait", txn=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert tracer.events()[0].detail["txn"] == 2  # oldest kept

    def test_timeline_follows_one_transaction(self):
        tracer = Tracer()
        tracer.emit(1.0, "begin", txn=7)
        tracer.emit(2.0, "wait", txn=8)
        tracer.emit(3.0, "commit", txn=7)
        timeline = tracer.timeline(7)
        assert [e.category for e in timeline] == ["begin", "commit"]

    def test_format_is_readable(self):
        event = TraceEvent(time=1.5, category="commit", detail={"txn": 9})
        text = event.format()
        assert "commit" in text and "txn=9" in text
        tracer = Tracer()
        tracer.emit(1.5, "commit", txn=9)
        assert tracer.format_events() == tracer.events()[0].format()

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "wait", txn=1)
        tracer.clear()
        assert len(tracer) == 0

    def test_echo_prints(self, capsys):
        tracer = Tracer(echo=True)
        tracer.emit(1.0, "commit", txn=3)
        assert "commit" in capsys.readouterr().out


class TestSystemTracing:
    def test_lazy_group_reconciliation_traced(self):
        from repro.replication.lazy_group import LazyGroupSystem
        from repro.txn.ops import WriteOp

        tracer = Tracer()
        system = LazyGroupSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.001,
                       message_delay=1.0, tracer=tracer),
        )
        system.submit(0, [WriteOp(0, 1)])
        system.submit(1, [WriteOp(0, 2)])
        system.run()
        assert tracer.count("commit") == 2
        assert tracer.count("reconcile") >= 1
        reconcile = tracer.events("reconcile")[0]
        assert reconcile.detail["oid"] == 0
        assert reconcile.detail["outcome"] in ("apply", "discard")

    def test_deadlock_traced_with_victim(self):
        from repro.replication.eager_group import EagerGroupSystem
        from repro.txn.ops import WriteOp

        tracer = Tracer()
        system = EagerGroupSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.01, tracer=tracer),
        )
        system.submit(0, [WriteOp(0, 1), WriteOp(1, 1)])
        system.submit(1, [WriteOp(1, 2), WriteOp(0, 2)])
        system.run()
        assert tracer.count("deadlock") >= 1
        assert tracer.count("abort") >= 1
        victim = tracer.events("deadlock")[0].detail["txn"]
        aborted = tracer.events("abort")[0].detail["txn"]
        assert victim == aborted

    def test_two_tier_rejection_traced(self):
        from repro.core import NonNegativeOutputs, TwoTierSystem
        from repro.txn.ops import IncrementOp

        tracer = Tracer()
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=2, action_time=0.001,
                       initial_value=10, tracer=tracer),
            num_base=1,
        )
        system.disconnect_mobile(1)
        system.mobile(1).submit_tentative(
            [IncrementOp(0, -50)], NonNegativeOutputs()
        )
        system.run()
        system.reconnect_mobile(1)
        system.run()
        rejects = tracer.events("reject")
        assert len(rejects) == 1
        assert "negative" in rejects[0].detail["why"]
