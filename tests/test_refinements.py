"""Tests for the exact (non-linearised) model refinements."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import ModelParameters, lazy_group, single_node
from repro.analytic import refinements


def dilute():
    return ModelParameters(db_size=100_000, nodes=1, tps=5, actions=4,
                           action_time=0.01)


def dense():
    return ModelParameters(db_size=50, nodes=1, tps=100, actions=10,
                           action_time=0.05)


class TestExactWaitProbability:
    def test_close_to_linearised_when_dilute(self):
        p = dilute()
        exact = refinements.exact_wait_probability(p)
        approx = single_node.wait_probability(p)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_linearisation_overestimates(self):
        """1-(1-x)^n <= n*x, so the paper's linearised PW is an upper bound."""
        for p in [dilute(), dense()]:
            assert (
                single_node.wait_probability(p)
                >= refinements.exact_wait_probability(p) - 1e-12
            )

    def test_exact_stays_in_unit_interval_when_dense(self):
        p = dense()
        assert 0.0 <= refinements.exact_wait_probability(p) <= 1.0
        # while the linearised form explodes past 1
        assert single_node.wait_probability(p) > 1.0

    @given(
        st.integers(100, 100_000),
        st.floats(0.1, 50),
        st.integers(1, 10),
        st.floats(0.001, 0.1),
    )
    def test_exact_always_a_probability(self, db, tps, actions, at):
        p = ModelParameters(db_size=db, tps=tps, actions=actions, action_time=at)
        value = refinements.exact_wait_probability(p)
        assert 0.0 <= value <= 1.0


class TestLinearisationError:
    def test_small_in_dilute_regime(self):
        assert refinements.linearisation_error(dilute()) < 0.01

    def test_grows_with_contention(self):
        assert refinements.linearisation_error(dense()) > (
            refinements.linearisation_error(dilute())
        )

    def test_zero_when_no_contention(self):
        p = dilute().with_(tps=0)
        assert refinements.linearisation_error(p) == 0.0


class TestExactCollisionProbability:
    def mobile(self, **kw):
        base = dict(db_size=10_000, nodes=4, tps=1, actions=5,
                    action_time=0.01, disconnect_time=8.0)
        base.update(kw)
        return ModelParameters(**base)

    def test_close_to_paper_when_small(self):
        p = self.mobile(db_size=1_000_000)
        paper = lazy_group.collision_probability(p, exact_nodes=True)
        exact = refinements.exact_collision_probability(p)
        assert exact == pytest.approx(paper, rel=0.05)

    def test_bounded_by_one_when_sets_large(self):
        p = self.mobile(db_size=100, disconnect_time=100.0)
        assert refinements.exact_collision_probability(p) == 1.0

    def test_zero_when_no_updates(self):
        p = self.mobile(tps=0)
        assert refinements.exact_collision_probability(p) == 0.0
        assert refinements.poisson_collision_probability(p) == 0.0

    def test_poisson_close_to_exact(self):
        p = self.mobile()
        exact = refinements.exact_collision_probability(p)
        poisson = refinements.poisson_collision_probability(p)
        assert poisson == pytest.approx(exact, rel=0.05)

    @given(st.integers(1000, 100_000), st.floats(0.1, 5), st.integers(2, 8))
    def test_exact_always_a_probability(self, db, tps, nodes):
        p = ModelParameters(db_size=db, nodes=nodes, tps=tps, actions=3,
                            action_time=0.01, disconnect_time=5.0)
        value = refinements.exact_collision_probability(p)
        assert 0.0 <= value <= 1.0


class TestValidityRegion:
    def test_dilute_is_valid(self):
        assert refinements.validity_region(dilute())

    def test_dense_is_invalid(self):
        assert not refinements.validity_region(dense())

    def test_eager_scaleup_leaves_validity_region(self):
        p = ModelParameters(db_size=2_000, tps=10, actions=5, action_time=0.01)
        assert refinements.validity_region(p.with_(nodes=1))
        assert not refinements.validity_region(p.with_(nodes=40))
