"""Tests for the per-node TransactionManager."""

import pytest

from repro.exceptions import DeadlockAbort, InvalidStateError
from repro.sim import Engine
from repro.storage.deadlock import DeadlockDetector
from repro.storage.lock_manager import LockManager, LockMode
from repro.storage.store import ObjectStore
from repro.storage.versioning import Timestamp, TimestampGenerator
from repro.storage.wal import WriteAheadLog
from repro.txn.manager import TransactionManager
from repro.txn.ops import IncrementOp, ReadOp, WriteOp


def make_tm(engine=None, action_time=0.0, lock_reads=False, db_size=10,
            node_id=0, detector=None):
    engine = engine or Engine()
    detector = detector or DeadlockDetector()
    store = ObjectStore(node_id, db_size)
    locks = LockManager(engine, node_id, detector)
    wal = WriteAheadLog()
    clock = TimestampGenerator(node_id)
    tm = TransactionManager(engine, node_id, store, locks, wal, clock,
                            action_time=action_time, lock_reads=lock_reads)
    return tm, engine


def run_txn(tm, engine, ops, commit=True):
    def proc():
        txn = tm.begin()
        try:
            for op in ops:
                yield from tm.execute(txn, op)
            if commit:
                tm.commit(txn)
            else:
                tm.abort(txn, "test")
        except DeadlockAbort:
            tm.abort(txn, "deadlock")
        return txn

    p = engine.process(proc())
    engine.run()
    return p.value


def test_write_updates_store_and_wal():
    tm, engine = make_tm()
    txn = run_txn(tm, engine, [WriteOp(3, 42)])
    assert tm.store.value(3) == 42
    assert txn.state.value == "committed"
    assert len(txn.updates) == 1
    assert txn.updates[0].old_value == 0
    assert txn.updates[0].new_value == 42
    tm.assert_quiescent()


def test_write_advances_timestamp():
    tm, engine = make_tm()
    run_txn(tm, engine, [WriteOp(3, 1)])
    first = tm.store.timestamp(3)
    run_txn(tm, engine, [WriteOp(3, 2)])
    assert tm.store.timestamp(3) > first


def test_increment_is_state_dependent():
    tm, engine = make_tm()
    run_txn(tm, engine, [IncrementOp(0, 5)])
    run_txn(tm, engine, [IncrementOp(0, 7)])
    assert tm.store.value(0) == 12


def test_read_records_value():
    tm, engine = make_tm()
    run_txn(tm, engine, [WriteOp(1, 8)])
    txn = run_txn(tm, engine, [ReadOp(1)])
    assert txn.reads == [8]


def test_read_takes_no_lock_by_default():
    tm, engine = make_tm()

    def writer():
        txn = tm.begin()
        yield from tm.execute(txn, WriteOp(1, 5))
        yield engine.timeout(10.0)  # hold the X lock
        tm.commit(txn)

    def reader():
        txn = tm.begin()
        yield engine.timeout(1.0)
        yield from tm.execute(txn, ReadOp(1))
        tm.commit(txn)
        return engine.now

    engine.process(writer())
    p = engine.process(reader())
    engine.run()
    assert p.value == 1.0  # did not wait for the writer


def test_lock_reads_blocks_behind_writer():
    tm, engine = make_tm(lock_reads=True)

    def writer():
        txn = tm.begin()
        yield from tm.execute(txn, WriteOp(1, 5))
        yield engine.timeout(10.0)
        tm.commit(txn)

    def reader():
        txn = tm.begin()
        yield engine.timeout(1.0)
        yield from tm.execute(txn, ReadOp(1))
        tm.commit(txn)
        return engine.now

    engine.process(writer())
    p = engine.process(reader())
    engine.run()
    assert p.value == 10.0  # waited for commit


def test_action_time_consumed_per_update():
    tm, engine = make_tm(action_time=0.5)
    run_txn(tm, engine, [WriteOp(0, 1), WriteOp(1, 2), WriteOp(2, 3)])
    assert engine.now == pytest.approx(1.5)


def test_abort_undoes_writes():
    tm, engine = make_tm()
    txn = run_txn(tm, engine, [WriteOp(0, 7), WriteOp(1, 8)], commit=False)
    assert txn.state.value == "aborted"
    assert tm.store.value(0) == 0
    assert tm.store.value(1) == 0
    tm.assert_quiescent()


def test_abort_restores_timestamps():
    tm, engine = make_tm()
    run_txn(tm, engine, [WriteOp(0, 1)])
    ts_after_commit = tm.store.timestamp(0)
    run_txn(tm, engine, [WriteOp(0, 2)], commit=False)
    assert tm.store.timestamp(0) == ts_after_commit


def test_conflicting_writers_serialize():
    tm, engine = make_tm(action_time=0.1)
    order = []

    def writer(name, delta):
        txn = tm.begin()
        yield from tm.execute(txn, IncrementOp(0, delta))
        order.append((name, engine.now))
        tm.commit(txn)

    engine.process(writer("a", 1))
    engine.process(writer("b", 10))
    engine.run()
    assert tm.store.value(0) == 11
    assert order[0][0] == "a"


def test_deadlock_victim_gets_exception_and_rolls_back():
    tm, engine = make_tm(action_time=0.01)
    outcomes = []

    def proc(oids):
        txn = tm.begin()
        try:
            for oid in oids:
                yield from tm.execute(txn, WriteOp(oid, txn.txn_id))
            tm.commit(txn)
            outcomes.append("commit")
        except DeadlockAbort:
            tm.abort(txn, "deadlock")
            outcomes.append("deadlock")

    engine.process(proc([0, 1]))
    engine.process(proc([1, 0]))
    engine.run()
    assert sorted(outcomes) == ["commit", "deadlock"]
    tm.assert_quiescent()
    # the survivor's writes are in place on both objects
    assert tm.store.value(0) == tm.store.value(1)


def test_execute_on_finished_txn_rejected():
    tm, engine = make_tm()
    txn = tm.begin()
    txn.mark_committed(0.0)

    def proc():
        yield from tm.execute(txn, WriteOp(0, 1))

    p = engine.process(proc())
    engine.run()
    assert isinstance(p.exception, InvalidStateError)


def test_execute_install_sets_foreign_timestamp():
    tm, engine = make_tm()
    foreign_ts = Timestamp(100, 9)

    def proc():
        txn = tm.begin()
        yield from tm.execute_install(txn, 2, 77, foreign_ts)
        tm.commit(txn)

    engine.process(proc())
    engine.run()
    assert tm.store.value(2) == 77
    assert tm.store.timestamp(2) == foreign_ts
    # the local clock witnessed the foreign stamp
    assert tm.clock.tick() > foreign_ts


def test_execute_transform_applies_op_and_max_timestamp():
    tm, engine = make_tm()
    run_txn(tm, engine, [WriteOp(2, 10)])
    local_ts = tm.store.timestamp(2)
    older_foreign = Timestamp(0, 5)

    def proc():
        txn = tm.begin()
        yield from tm.execute_transform(txn, IncrementOp(2, 5), older_foreign)
        tm.commit(txn)

    engine.process(proc())
    engine.run()
    assert tm.store.value(2) == 15
    assert tm.store.timestamp(2) == max(local_ts, older_foreign)


def test_counters():
    tm, engine = make_tm()
    run_txn(tm, engine, [WriteOp(0, 1)])
    run_txn(tm, engine, [WriteOp(1, 1)], commit=False)
    assert tm.begun == 2
    assert tm.committed == 1
    assert tm.aborted == 1
