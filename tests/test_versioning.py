"""Tests for Lamport timestamps and version vectors."""

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.versioning import Timestamp, TimestampGenerator, VersionVector


class TestTimestamp:
    def test_total_order_by_counter_then_node(self):
        assert Timestamp(1, 0) < Timestamp(2, 0)
        assert Timestamp(1, 0) < Timestamp(1, 1)
        assert Timestamp(2, 0) > Timestamp(1, 5)

    def test_zero_is_smallest(self):
        assert Timestamp.ZERO < Timestamp(1, 0)
        assert Timestamp.ZERO < Timestamp(0, 0)

    def test_equality_and_hash(self):
        assert Timestamp(3, 1) == Timestamp(3, 1)
        assert hash(Timestamp(3, 1)) == hash(Timestamp(3, 1))
        assert Timestamp(3, 1) != Timestamp(3, 2)

    def test_next_at(self):
        ts = Timestamp(5, 0).next_at(2)
        assert ts == Timestamp(6, 2)
        assert ts > Timestamp(5, 0)

    def test_str_format(self):
        assert str(Timestamp(4, 2)) == "4@2"

    @given(st.integers(0, 1000), st.integers(0, 32),
           st.integers(0, 1000), st.integers(0, 32))
    def test_distinct_pairs_never_equal_compare(self, c1, n1, c2, n2):
        a, b = Timestamp(c1, n1), Timestamp(c2, n2)
        if (c1, n1) != (c2, n2):
            assert (a < b) != (b < a)  # strict total order
        else:
            assert a == b


class TestTimestampGenerator:
    def test_tick_increases(self):
        gen = TimestampGenerator(node_id=3)
        first = gen.tick()
        second = gen.tick()
        assert second > first
        assert first.node_id == 3

    def test_witness_advances_clock(self):
        gen = TimestampGenerator(node_id=0)
        gen.tick()
        gen.witness(Timestamp(100, 5))
        assert gen.tick() > Timestamp(100, 5)

    def test_witness_older_timestamp_is_noop(self):
        gen = TimestampGenerator(node_id=0)
        for _ in range(10):
            gen.tick()
        gen.witness(Timestamp(2, 9))
        assert gen.current_counter == 10

    def test_two_nodes_never_collide(self):
        a = TimestampGenerator(node_id=0)
        b = TimestampGenerator(node_id=1)
        stamps = [a.tick() for _ in range(20)] + [b.tick() for _ in range(20)]
        assert len(set(stamps)) == 40


class TestVersionVector:
    def test_empty_vectors_equal(self):
        assert VersionVector() == VersionVector()
        assert not VersionVector().concurrent_with(VersionVector())

    def test_bump_is_functional(self):
        v = VersionVector()
        v2 = v.bump(1)
        assert v.get(1) == 0
        assert v2.get(1) == 1

    def test_dominates_after_bump(self):
        v = VersionVector().bump(0)
        assert v.dominates(VersionVector())
        assert not VersionVector().dominates(v)

    def test_concurrent_vectors(self):
        a = VersionVector().bump(0)
        b = VersionVector().bump(1)
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_merge_is_component_max(self):
        a = VersionVector({0: 3, 1: 1})
        b = VersionVector({0: 1, 1: 5, 2: 2})
        merged = a.merge(b)
        assert merged.get(0) == 3
        assert merged.get(1) == 5
        assert merged.get(2) == 2

    def test_merge_dominates_both(self):
        a = VersionVector({0: 3})
        b = VersionVector({1: 2})
        merged = a.merge(b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    def test_zero_components_ignored_in_equality(self):
        assert VersionVector({0: 0}) == VersionVector()
        assert hash(VersionVector({0: 0})) == hash(VersionVector())

    @given(
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
    )
    def test_merge_commutative(self, da, db):
        a, b = VersionVector(da), VersionVector(db)
        assert a.merge(b) == b.merge(a)

    @given(
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
    )
    def test_merge_associative(self, da, db, dc):
        a, b, c = VersionVector(da), VersionVector(db), VersionVector(dc)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
        st.dictionaries(st.integers(0, 5), st.integers(0, 10)),
    )
    def test_dominance_trichotomy_consistent(self, da, db):
        a, b = VersionVector(da), VersionVector(db)
        # exactly one of: a==b, a>b, b>a, concurrent
        states = [
            a == b,
            a.dominates(b) and not b.dominates(a),
            b.dominates(a) and not a.dominates(b),
            a.concurrent_with(b),
        ]
        assert sum(states) == 1
