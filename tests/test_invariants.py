"""Tests for the reusable invariant checkers."""

import pytest

from repro.replication.eager_group import EagerGroupSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.reconciliation import ManualReconciliation
from repro.txn.ops import IncrementOp, WriteOp
from repro.verify.invariants import (
    InvariantReport,
    check_accounting,
    check_all,
    check_converged,
    check_quiescent,
    check_serializable,
    conservation_total,
    divergence_report,
)
from repro.replication import SystemSpec


def healthy_system():
    system = EagerGroupSystem(
        SystemSpec(num_nodes=2, db_size=6, action_time=0.001,
                   record_history=True),
    )
    system.submit(0, [IncrementOp(0, 5)])
    system.submit(1, [IncrementOp(1, 7)])
    system.run()
    return system


class TestReport:
    def test_ok_report(self):
        report = InvariantReport(checked=["x"])
        assert report.ok
        assert "hold" in report.describe()

    def test_failed_report(self):
        report = InvariantReport(failures=["boom"], checked=["x"])
        assert not report.ok
        assert "boom" in report.describe()

    def test_merge(self):
        a = InvariantReport(failures=["a"], checked=["1"])
        b = InvariantReport(checked=["2"])
        merged = a.merge(b)
        assert merged.failures == ["a"]
        assert merged.checked == ["1", "2"]


class TestChecks:
    def test_healthy_system_passes_everything(self):
        system = healthy_system()
        report = check_all(system, expect_serializable=True)
        assert report.ok, report.describe()
        assert set(report.checked) == {
            "quiescent", "converged", "accounting", "serializable",
        }

    def test_divergence_detected(self):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.001,
                       message_delay=1.0),
            rule=ManualReconciliation(),
        )
        system.submit(0, [WriteOp(0, 1)])
        system.submit(1, [WriteOp(0, 2)])
        system.run()
        report = check_converged(system)
        assert not report.ok
        assert "diverged" in report.describe()
        detail = divergence_report(system)
        assert 0 in detail
        assert sorted(detail[0]) == [1, 2]

    def test_quiescence_failure_detected(self):
        system = healthy_system()
        # simulate a leak: grab a lock and never release it
        from repro.storage.lock_manager import LockMode

        txn = system.nodes[0].tm.begin()
        system.nodes[0].locks.acquire(txn, 3, LockMode.EXCLUSIVE)
        report = check_quiescent(system)
        assert not report.ok

    def test_accounting_failure_detected(self):
        system = healthy_system()
        system.metrics.deadlocks = 99  # impossible: no waits recorded
        report = check_accounting(system)
        assert not report.ok

    def test_serializability_check_skips_without_history(self):
        system = EagerGroupSystem(SystemSpec(num_nodes=2, db_size=4))
        report = check_serializable(system)
        assert report.ok

    def test_serializability_failure_detected(self):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=3, db_size=2, action_time=0.001,
                       message_delay=0.5, seed=0, record_history=True),
        )
        for origin in range(3):
            system.submit(origin, [IncrementOp(0, 1)])
        system.run()
        report = check_serializable(system)
        if not report.ok:  # racing increments usually produce the cycle
            assert "cycle" in report.describe()

    def test_conservation_total(self):
        system = healthy_system()
        assert conservation_total(system) == 12
