"""Tests for eager-group replication."""

import pytest

from repro.replication.eager_group import EagerGroupSystem
from repro.replication import SystemSpec
from repro.txn.ops import IncrementOp, ReadOp, WriteOp


def make(num_nodes=3, db_size=20, **kw):
    kw.setdefault("action_time", 0.01)
    extras = {k: kw.pop(k) for k in ("quorum", "parallel_updates") if k in kw}
    return EagerGroupSystem(
        SystemSpec(num_nodes=num_nodes, db_size=db_size, **kw), **extras)


def test_update_applied_at_every_replica():
    system = make()
    system.submit(0, [WriteOp(5, 42)])
    system.run()
    for node in system.nodes:
        assert node.store.value(5) == 42
    assert system.metrics.commits == 1
    assert system.metrics.actions == 3  # one action x three replicas


def test_transaction_size_is_actions_times_nodes():
    """Equation 6: the eager transaction does Actions x Nodes work."""
    system = make(num_nodes=4)
    system.submit(0, [WriteOp(1, 1), WriteOp(2, 2)])
    system.run()
    assert system.metrics.actions == 2 * 4


def test_transaction_duration_stretches_with_nodes():
    """Equation 6: duration = Actions x Nodes x Action_Time."""
    slow = make(num_nodes=4, action_time=0.01)
    p = slow.submit(0, [WriteOp(0, 1), WriteOp(1, 1)])
    slow.run()
    txn = p.value
    assert txn.duration == pytest.approx(2 * 4 * 0.01)


def test_reads_run_locally_only():
    system = make()
    p = system.submit(1, [ReadOp(3)])
    system.run()
    assert p.value.reads == [0]
    assert system.metrics.actions == 0


def test_no_reconciliations_ever():
    system = make(db_size=5, num_nodes=3)
    for origin in range(3):
        for _ in range(10):
            system.submit(origin, [IncrementOp(origin % 5, 1), IncrementOp(3, 1)])
    system.run()
    assert system.metrics.reconciliations == 0


def test_deadlock_aborts_roll_back_everywhere():
    system = make(num_nodes=2, db_size=4)
    # force a deadlock: opposite lock orders from the two nodes
    system.submit(0, [WriteOp(0, 100), WriteOp(1, 100)])
    system.submit(1, [WriteOp(1, 200), WriteOp(0, 200)])
    system.run()
    assert system.metrics.deadlocks >= 1
    assert system.metrics.commits + system.metrics.aborts == 2
    # replicas agree on every object despite the abort
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()


def test_concurrent_increments_all_survive():
    """Serializability check: with increments, no update may be lost."""
    system = make(num_nodes=3, db_size=10, retry_deadlocks=True)
    for origin in range(3):
        for _ in range(5):
            system.submit(origin, [IncrementOp(7, 1)])
    system.run()
    assert system.nodes[0].store.value(7) == 15
    assert system.converged()


def test_disconnected_node_blocks_updates_without_quorum():
    system = make(num_nodes=3)
    system.network.disconnect(2)
    p = system.submit(0, [WriteOp(1, 9)])
    system.run()
    assert p.value.state.value == "aborted"
    assert system.blocked_by_disconnect == 1
    assert system.nodes[0].store.value(1) == 0


def test_quorum_allows_updates_with_majority():
    system = make(num_nodes=3, quorum=True)
    system.network.disconnect(2)
    p = system.submit(0, [WriteOp(1, 9)])
    system.run()
    assert p.value.state.value == "committed"
    assert system.nodes[0].store.value(1) == 9
    assert system.nodes[1].store.value(1) == 9
    assert system.nodes[2].store.value(1) == 0  # still dark


def test_quorum_catchup_on_rejoin():
    """'When a node joins the quorum, the quorum sends the new node all
    replica updates since the node was disconnected.'"""
    system = make(num_nodes=3, quorum=True)
    system.network.disconnect(2)
    system.submit(0, [WriteOp(1, 9), WriteOp(2, 8)])
    system.run()
    system.network.reconnect(2)
    system.run()
    assert system.nodes[2].store.value(1) == 9
    assert system.nodes[2].store.value(2) == 8
    assert system.converged()


def test_quorum_minority_cannot_update():
    system = make(num_nodes=5, quorum=True)
    for node_id in [2, 3, 4]:
        system.network.disconnect(node_id)
    p = system.submit(0, [WriteOp(0, 1)])
    system.run()
    assert p.value.state.value == "aborted"
    assert system.blocked_by_disconnect == 1


def test_disconnected_originator_cannot_update_even_with_quorum():
    system = make(num_nodes=3, quorum=True)
    system.network.disconnect(0)
    p = system.submit(0, [WriteOp(0, 1)])
    system.run()
    assert p.value.state.value == "aborted"


def test_catchup_is_idempotent_under_duplicate_timestamps():
    system = make(num_nodes=3, quorum=True)
    system.network.disconnect(2)
    system.submit(0, [IncrementOp(1, 5)])
    system.run()
    system.network.reconnect(2)
    system.run()
    assert system.nodes[2].store.value(1) == 5
    # stale catch-up (same ts) must not re-apply
    assert system.metrics.stale_updates == 0
    assert system.converged()
