"""Property-based tests for the history verifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify import History

# a schedule step: (node, txn, oid, kind)
step_strategy = st.tuples(
    st.integers(0, 2),
    st.integers(1, 5),
    st.integers(0, 2),
    st.sampled_from(["r", "w"]),
)


def build(steps, committed):
    h = History()
    for node, txn, oid, kind in steps:
        if kind == "r":
            h.record_read(node, txn, oid)
        else:
            h.record_write(node, txn, oid)
    for txn in committed:
        h.mark_committed(txn)
    return h


@settings(max_examples=100, deadline=None)
@given(st.lists(step_strategy, max_size=30))
def test_serial_schedules_always_serializable(steps):
    """Running transactions one after another (grouped by txn id) is the
    definition of serial — the checker must always accept it."""
    h = History()
    ordered = sorted(steps, key=lambda s: s[1])  # group by transaction
    for node, txn, oid, kind in ordered:
        if kind == "r":
            h.record_read(node, txn, oid)
        else:
            h.record_write(node, txn, oid)
        h.mark_committed(txn)
    graph = h.conflict_graph()
    assert graph.is_serializable()
    order = graph.serial_order()
    assert order == sorted(order)


@settings(max_examples=100, deadline=None)
@given(st.lists(step_strategy, max_size=30),
       st.sets(st.integers(1, 5)))
def test_verdict_is_deterministic(steps, committed):
    a = build(steps, committed).conflict_graph()
    b = build(steps, committed).conflict_graph()
    assert a.is_serializable() == b.is_serializable()
    assert a.edge_count() == b.edge_count()


@settings(max_examples=100, deadline=None)
@given(st.lists(step_strategy, max_size=30), st.sets(st.integers(1, 5)))
def test_cycle_witness_is_real(steps, committed):
    """Whenever the checker says non-serializable, the returned cycle must
    actually exist edge by edge."""
    graph = build(steps, committed).conflict_graph()
    cycle = graph.find_cycle()
    if cycle is None:
        # serial_order must succeed and respect every edge
        order = graph.serial_order()
        position = {txn: i for i, txn in enumerate(order)}
        for src, dsts in graph.edges.items():
            for dst in dsts:
                assert position[src] < position[dst]
    else:
        assert len(cycle) >= 1
        for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
            assert dst in graph.edges.get(src, set()), (cycle, graph.edges)


@settings(max_examples=100, deadline=None)
@given(st.lists(step_strategy, max_size=30), st.sets(st.integers(1, 5)))
def test_committing_fewer_transactions_never_creates_anomalies(steps, committed):
    """Aborting transactions can only remove conflicts."""
    full = build(steps, committed).conflict_graph()
    if full.is_serializable():
        for drop in list(committed):
            reduced = build(steps, committed - {drop}).conflict_graph()
            assert reduced.is_serializable()


@settings(max_examples=50, deadline=None)
@given(st.lists(step_strategy, max_size=20))
def test_read_only_histories_always_serializable(steps):
    h = History()
    for node, txn, oid, _ in steps:
        h.record_read(node, txn, oid)
        h.mark_committed(txn)
    assert h.conflict_graph().is_serializable()
