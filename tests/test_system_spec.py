"""SystemSpec construction API: new spec path, legacy shim, validation.

The strategy constructors now take one :class:`~repro.replication.SystemSpec`.
The old ``Cls(num_nodes, db_size, ...)`` signature still works through a
deprecation shim and must build an *identical* system — same topology, same
seeded behaviour — so downstream callers can migrate at their own pace.
"""

import warnings

import pytest

from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.placement import HashShardPlacement
from repro.replication import (
    EagerGroupSystem,
    EagerMasterSystem,
    LazyGroupSystem,
    LazyMasterSystem,
    SystemSpec,
)

_FLAT = (EagerGroupSystem, EagerMasterSystem, LazyGroupSystem, LazyMasterSystem)


def _drive(system, n_txns: int = 30):
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.profiles import uniform_update_profile

    profile = uniform_update_profile(actions=3, db_size=system.db_size)
    WorkloadGenerator(system, profile, tps=5.0).start(5.0)
    system.run()
    return system.metrics.as_dict()


@pytest.mark.parametrize("cls", _FLAT)
def test_legacy_signature_warns_and_matches_spec_signature(cls):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = cls(num_nodes=3, db_size=40, seed=11, action_time=0.004)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught), (
        f"{cls.__name__} legacy constructor should warn"
    )
    modern = cls(SystemSpec(num_nodes=3, db_size=40, seed=11, action_time=0.004))
    assert _drive(legacy) == _drive(modern)


def test_legacy_positional_arguments_still_work():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        system = LazyMasterSystem(4, 50)
    assert system.num_nodes == 4
    assert system.db_size == 50


def test_spec_signature_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        LazyGroupSystem(SystemSpec(num_nodes=3, db_size=40))


def test_spec_plus_legacy_extras_is_an_error():
    spec = SystemSpec(num_nodes=3, db_size=40)
    with pytest.raises(ConfigurationError):
        LazyGroupSystem(spec, 40)
    with pytest.raises(ConfigurationError):
        LazyGroupSystem(spec, db_size=40)


def test_spec_validation():
    with pytest.raises(ConfigurationError, match="num_nodes"):
        SystemSpec(num_nodes=0, db_size=10)
    with pytest.raises(ConfigurationError):
        SystemSpec(num_nodes=2, db_size=10, placement="hash:k=3")  # not parsed


def test_retry_deadlocks_tristate_defaults():
    flat = LazyMasterSystem(SystemSpec(num_nodes=2, db_size=20))
    assert flat.retry_deadlocks is False
    tiered = TwoTierSystem(SystemSpec(num_nodes=3, db_size=20), num_base=1)
    assert tiered.retry_deadlocks is True
    forced = LazyMasterSystem(
        SystemSpec(num_nodes=2, db_size=20, retry_deadlocks=True)
    )
    assert forced.retry_deadlocks is True
    untiered = TwoTierSystem(
        SystemSpec(num_nodes=3, db_size=20, retry_deadlocks=False), num_base=1
    )
    assert untiered.retry_deadlocks is False


def test_two_tier_spec_counts_base_plus_mobiles():
    system = TwoTierSystem(SystemSpec(num_nodes=5, db_size=20), num_base=2)
    assert system.num_base == 2
    assert system.num_mobile == 3
    assert system.num_nodes == 5


def test_two_tier_legacy_signature_still_works():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        system = TwoTierSystem(num_base=2, num_mobile=1, db_size=100)
    assert system.num_base == 2
    assert system.num_mobile == 1


def test_two_tier_rejects_mixing_spec_and_legacy_counts():
    with pytest.raises(ConfigurationError):
        TwoTierSystem(SystemSpec(num_nodes=3, db_size=20), num_mobile=2)


def test_spec_carries_placement_through_to_stores():
    spec = SystemSpec(
        num_nodes=5, db_size=50,
        placement=HashShardPlacement(replication_factor=2),
    )
    system = EagerGroupSystem(spec)
    assert system.placement.replication_factor == 2
    # logical residency follows the placement; records themselves
    # materialise lazily on first touch
    assert sum(len(list(node.store.oids())) for node in system.nodes) == 2 * 50
    assert sum(node.store.materialized for node in system.nodes) == 0
