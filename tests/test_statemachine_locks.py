"""Stateful (rule-based) hypothesis testing of the lock manager.

Hypothesis drives random sequences of acquire/release operations against
the lock manager and checks structural invariants after every step:

* granted holders of one object are pairwise compatible;
* no queued request is compatible with the holders *and* unblocked by
  earlier waiters (no lost wakeups);
* a transaction granted a lock is not simultaneously queued for it;
* releasing everything leaves the table empty.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.sim import Engine
from repro.storage.deadlock import DeadlockDetector
from repro.storage.lock_manager import LockManager, LockMode


class FakeTxn:
    counter = 0

    def __init__(self):
        FakeTxn.counter += 1
        self.txn_id = FakeTxn.counter

    def __repr__(self):
        return f"T{self.txn_id}"


class LockMachine(RuleBasedStateMachine):
    OIDS = [0, 1, 2]

    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.detector = DeadlockDetector()
        self.lm = LockManager(self.engine, 0, self.detector)
        self.live: list = []

    transactions = Bundle("transactions")

    @rule(target=transactions)
    def new_txn(self):
        txn = FakeTxn()
        self.live.append(txn)
        return txn

    @rule(txn=transactions, oid=st.sampled_from(OIDS),
          mode=st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]))
    def acquire(self, txn, oid, mode):
        if txn not in self.live:
            return
        entry = self.lm._table.get(oid)
        if entry is not None and any(r.txn is txn for r in entry.queue):
            # usage contract: one outstanding request per (txn, oid); the
            # manager raises LockError on violations (tested separately)
            return
        self.lm.acquire(txn, oid, mode)

    @rule(txn=transactions)
    def release_all(self, txn):
        if txn not in self.live:
            return
        self.lm.release_all(txn)
        self.live.remove(txn)

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def holders_pairwise_compatible(self):
        for oid, entry in self.lm._table.items():
            modes = list(entry.holders.values())
            exclusive = [m for m in modes if m is LockMode.EXCLUSIVE]
            if exclusive:
                assert len(modes) == 1, (
                    f"oid {oid}: X holder coexists with others: {modes}"
                )

    @invariant()
    def no_holder_also_queued(self):
        for oid, entry in self.lm._table.items():
            for request in entry.queue:
                held = entry.holders.get(request.txn)
                if held is not None:
                    # only legal when waiting to upgrade S -> X
                    assert request.upgrade and held is LockMode.SHARED, (
                        f"oid {oid}: {request.txn} holds {held} but queues "
                        f"{request.mode} without upgrade flag"
                    )

    @invariant()
    def no_lost_wakeups(self):
        """The head-compatible prefix of each queue must be empty: anything
        grantable right now should have been granted already."""
        for oid, entry in self.lm._table.items():
            for request in entry.queue:
                grantable = self.lm._grantable(
                    entry, request.txn, request.mode,
                    upgrade=request.upgrade, before_request=request,
                )
                assert not grantable, (
                    f"oid {oid}: queued request {request.txn}/{request.mode} "
                    "is grantable but was not granted"
                )

    @invariant()
    def queue_events_pending(self):
        for entry in self.lm._table.values():
            for request in entry.queue:
                assert request.event.pending, (
                    "queued request has a settled event"
                )

    def teardown(self):
        for txn in list(self.live):
            self.lm.release_all(txn)
        for oid, entry in list(self.lm._table.items()):
            assert not entry.holders, f"oid {oid} still held after teardown"
            assert not entry.queue, f"oid {oid} still queued after teardown"


LockMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestLockMachine = LockMachine.TestCase
