"""Tests for workload profiles, the generator, and disconnect schedules."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import (
    TransactionProfile,
    increment_op_factory,
    uniform_update_profile,
    write_op_factory,
)
from repro.workload.schedule import DisconnectScheduler
from repro.replication import SystemSpec


class TestProfiles:
    def test_distinct_objects_per_transaction(self):
        profile = uniform_update_profile(actions=5, db_size=20)
        rng = random.Random(0)
        for _ in range(50):
            ops = profile.build(rng)
            oids = [op.oid for op in ops]
            assert len(set(oids)) == 5

    def test_write_profile_produces_writes(self):
        profile = uniform_update_profile(actions=3, db_size=10)
        ops = profile.build(random.Random(0))
        assert all(isinstance(op, WriteOp) for op in ops)

    def test_commutative_profile_produces_increments(self):
        profile = uniform_update_profile(actions=3, db_size=10, commutative=True)
        ops = profile.build(random.Random(0))
        assert all(isinstance(op, IncrementOp) for op in ops)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransactionProfile(actions=0, db_size=10)
        with pytest.raises(ConfigurationError):
            TransactionProfile(actions=5, db_size=3)
        with pytest.raises(ConfigurationError):
            TransactionProfile(actions=1, db_size=10, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            TransactionProfile(actions=1, db_size=10, hot_fraction=0.1,
                               hot_weight=0.5)

    def test_uniform_access_covers_database(self):
        profile = uniform_update_profile(actions=2, db_size=10)
        rng = random.Random(1)
        seen = set()
        for _ in range(300):
            seen.update(op.oid for op in profile.build(rng))
        assert seen == set(range(10))

    def test_hotspot_skews_access(self):
        profile = TransactionProfile(
            actions=1, db_size=100, hot_fraction=0.05, hot_weight=50.0
        )
        rng = random.Random(2)
        hot_hits = 0
        trials = 1000
        for _ in range(trials):
            (op,) = profile.build(rng)
            if op.oid < 5:
                hot_hits += 1
        # hot mass = 5*50=250 vs cold 95: expect ~72% hot, far above 5%
        assert hot_hits / trials > 0.5

    @given(st.integers(1, 6), st.integers(6, 40), st.integers(0, 2**16))
    def test_profile_ops_always_valid(self, actions, db_size, seed):
        profile = uniform_update_profile(actions=actions, db_size=db_size)
        ops = profile.build(random.Random(seed))
        assert len(ops) == actions
        assert all(0 <= op.oid < db_size for op in ops)


class TestGenerator:
    def test_submission_count_tracks_rate(self):
        system = LazyMasterSystem(
            SystemSpec(num_nodes=2, db_size=50, action_time=0.0, seed=1),
        )
        profile = uniform_update_profile(actions=2, db_size=50)
        workload = WorkloadGenerator(system, profile, tps=10.0)
        workload.start(duration=100.0)
        system.run()
        expected = 10.0 * 100.0 * 2  # tps x duration x nodes
        assert workload.submitted == pytest.approx(expected, rel=0.15)
        assert system.metrics.commits == workload.submitted

    def test_node_subset(self):
        from repro.replication.eager_master import EagerMasterSystem

        # eager has no housekeeping transactions, so per-node begin counts
        # reflect user submissions only
        system = EagerMasterSystem(
            SystemSpec(num_nodes=4, db_size=50, action_time=0.0, seed=1),
        )
        profile = uniform_update_profile(actions=1, db_size=50)
        workload = WorkloadGenerator(system, profile, tps=5.0, node_ids=[1])
        workload.start(duration=20.0)
        system.run()
        assert system.nodes[1].tm.begun > 0
        assert system.nodes[3].tm.begun == 0

    def test_deterministic_under_seed(self):
        def run(seed):
            system = LazyMasterSystem(
                SystemSpec(num_nodes=2, db_size=30, action_time=0.001,
                           seed=seed),
            )
            workload = WorkloadGenerator(
                system, uniform_update_profile(actions=2, db_size=30), tps=5.0
            )
            workload.start(duration=30.0)
            system.run()
            return (system.metrics.commits, system.metrics.waits,
                    system.snapshot())

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_validation(self):
        system = LazyMasterSystem(SystemSpec(num_nodes=1, db_size=10))
        profile = uniform_update_profile(actions=1, db_size=10)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(system, profile, tps=0)
        wl = WorkloadGenerator(system, profile, tps=1)
        with pytest.raises(ConfigurationError):
            wl.start(duration=0)


class TestDisconnectScheduler:
    def test_nodes_cycle_through_disconnects(self):
        system = LazyMasterSystem(
            SystemSpec(num_nodes=3, db_size=10, action_time=0.0, seed=0),
        )
        scheduler = DisconnectScheduler(system, disconnect_time=5.0,
                                        connected_time=1.0)
        scheduler.start(duration=30.0)
        system.run()
        assert scheduler.cycles >= 3 * 3  # ~5 cycles per node over 30s
        # everyone ends connected so the system can drain
        assert all(system.network.is_connected(i) for i in range(3))

    def test_stagger_offsets_first_disconnects(self):
        system = LazyMasterSystem(SystemSpec(num_nodes=2, db_size=10, seed=0))
        scheduler = DisconnectScheduler(system, disconnect_time=10.0,
                                        connected_time=0.0, stagger=3.0)
        scheduler.start(duration=12.0)
        system.run(until=1.0)
        assert not system.network.is_connected(0)
        assert system.network.is_connected(1)  # still in its stagger offset
        system.run(until=4.0)
        assert not system.network.is_connected(1)

    def test_validation(self):
        system = LazyMasterSystem(SystemSpec(num_nodes=1, db_size=10))
        with pytest.raises(ConfigurationError):
            DisconnectScheduler(system, disconnect_time=0)
        with pytest.raises(ConfigurationError):
            DisconnectScheduler(system, disconnect_time=1.0,
                                connected_time=-1.0)
