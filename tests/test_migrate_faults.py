"""Live migration under faults.

``ReplicatedSystem.migrate`` moves a replica through the normal network
path, so it composes with every fault the injector can throw: crashed
endpoints must be rejected up front, a partitioned transfer parks in the
store-and-forward queue until the cut heals, and — the regressions this
file pins — a migration racing an in-flight writer must neither leak the
writer's uncommitted value to the destination nor blow up the source's
WAL undo when the writer later aborts or the source crashes.
"""

import pytest

from repro.exceptions import InvalidStateError
from repro.placement import Placement
from repro.replication import LazyGroupSystem, SystemSpec
from repro.storage.versioning import Timestamp
from repro.txn.ops import WriteOp


def _dir_system(**overrides):
    kwargs = dict(
        num_nodes=6,
        db_size=60,
        action_time=0.001,
        message_delay=0.002,
        seed=3,
        placement=Placement.from_spec("dir:k=2"),
    )
    kwargs.update(overrides)
    return LazyGroupSystem(SystemSpec(**kwargs))


def _move_target(system, oid):
    """(src, dst): a non-master replica and a node holding no copy."""
    placement = system.placement
    src = placement.replicas(oid)[1]
    dst = next(
        n for n in range(system.num_nodes)
        if not placement.is_replica(oid, n)
    )
    return src, dst


def test_migrate_rejects_a_crashed_source():
    system = _dir_system()
    oid = 5
    src, dst = _move_target(system, oid)
    system.crash_node(src)
    with pytest.raises(InvalidStateError):
        system.migrate(oid, src, dst)
    # nothing moved: the directory still routes to the old replica set
    assert system.placement.replicas(oid)[1] == src
    assert system.placement.moved == 0


def test_migrate_rejects_a_crashed_destination():
    system = _dir_system()
    oid = 5
    src, dst = _move_target(system, oid)
    system.crash_node(dst)
    with pytest.raises(InvalidStateError):
        system.migrate(oid, src, dst)
    assert system.placement.moved == 0
    # after recovery the same move goes through cleanly
    system.recover_node(dst)
    system.migrate(oid, src, dst)
    system.run()
    assert oid not in system.nodes[src].store
    assert system.divergence() == 0


def test_partitioned_transfer_parks_until_the_cut_heals():
    system = _dir_system()
    oid = 7
    master = system.placement.master(oid)
    src, dst = _move_target(system, oid)
    system.submit(master, [WriteOp(oid, 777)])
    system.run()
    system.network.set_reachable(src, dst, False)
    system.migrate(oid, src, dst)
    system.run()
    # the transfer is parked on the cut; the directory already rebound,
    # but the record has not landed yet
    assert system.network.parked_total() > 0
    assert oid not in system.nodes[src].store
    assert oid not in system.nodes[dst].store._records
    system.network.set_reachable(src, dst, True)
    system.run()
    assert system.nodes[dst].store.peek(oid) == 777
    assert system.divergence() == 0


def test_crash_at_source_after_migrating_an_uncommitted_write():
    """The double regression: migrating an object an in-flight transaction
    has written used to (a) ship the uncommitted value to the destination
    and (b) KeyError inside the WAL undo when the source crashed, because
    the evicted record was no longer resident.  The fix ships the WAL's
    committed before-image and makes ``store.restore`` skip non-resident
    objects."""
    system = _dir_system()
    oid = 9
    src, dst = _move_target(system, oid)
    other = next(
        o for o in range(system.db_size)
        if o != oid and system.placement.is_replica(o, src)
    )
    committed = system.nodes[src].store.peek(oid)
    # first write (to oid) lands in the WAL at t=0.001; the transaction is
    # still executing its second write when we migrate and crash
    system.submit(src, [WriteOp(oid, 111), WriteOp(other, 222)])
    system.run(until=0.0015)
    assert system.nodes[src].wal.pending_before(oid) is not None
    system.migrate(oid, src, dst)
    system.crash_node(src)  # WAL undo must not touch the migrated object
    system.run()
    system.recover_node(src)
    system.quiesce()
    # the destination holds the committed version, not the leaked write
    assert system.nodes[dst].store.peek(oid) == committed
    assert oid not in system.nodes[src].store
    assert system.divergence() == 0
    assert system.metrics.as_dict()["migrations"] == 1


def test_abort_after_migration_skips_the_evicted_record():
    """Same race, abort path: the writer deadlocks/aborts after its object
    migrated away — the undo must skip the non-resident record instead of
    resurrecting (or KeyError-ing on) a copy the directory no longer
    routes to."""
    system = _dir_system()
    oid = 11
    src, dst = _move_target(system, oid)
    # simulate the writer's WAL entry directly, then migrate and undo
    before = system.nodes[src].store.read(oid)
    before_value, before_ts = before.value, before.ts
    system.nodes[src].wal.record(
        999, oid, before_value, before_ts, 111, Timestamp(1, src)
    )
    system.nodes[src].store.write(oid, 111, Timestamp(1, src))
    system.migrate(oid, src, dst)
    undone = system.nodes[src].wal.undo(999, system.nodes[src].store)
    assert undone == 1
    assert oid not in system.nodes[src].store  # no zombie copy
    system.run()
    assert system.nodes[dst].store.peek(oid) == before_value
    assert system.divergence() == 0
