"""Tests for the experiment harness."""

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness import (
    ExperimentConfig,
    analytic_vs_simulated,
    run_experiment,
    strategy_comparison,
)
from repro.harness.comparison import comparison_table, strategy_table
from repro.harness.experiment import STRATEGIES, build_system
from repro.harness.figures import render_sweep, shape_summary, shapes_agree


def small_params(**kw):
    base = dict(db_size=60, nodes=2, tps=2, actions=2, action_time=0.001)
    base.update(kw)
    return ModelParameters(**base)


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(strategy="psychic", params=small_params())

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(strategy="lazy-master", params=small_params(),
                             duration=0)

    def test_build_system_every_strategy(self):
        for strategy in STRATEGIES:
            config = ExperimentConfig(strategy=strategy, params=small_params())
            system = build_system(config)
            assert system.db_size == 60

    def test_disconnects_rejected_for_master_strategies(self):
        config = ExperimentConfig(
            strategy="lazy-master",
            params=small_params(disconnect_time=1.0),
            duration=5.0,
        )
        with pytest.raises(ConfigurationError):
            run_experiment(config)


class TestRunExperiment:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_each_strategy_runs_and_converges(self, strategy):
        result = run_experiment(
            ExperimentConfig(strategy=strategy, params=small_params(),
                             duration=20.0)
        )
        assert result.metrics.commits > 0
        assert result.divergence == 0
        assert result.rates.commit_rate > 0

    def test_rates_divide_by_duration(self):
        result = run_experiment(
            ExperimentConfig(strategy="lazy-master", params=small_params(),
                             duration=25.0)
        )
        assert result.rates.commit_rate == pytest.approx(
            result.metrics.commits / 25.0
        )

    def test_seed_determinism(self):
        def run(seed):
            result = run_experiment(
                ExperimentConfig(strategy="lazy-group", params=small_params(),
                                 duration=20.0, seed=seed)
            )
            return result.metrics.as_dict()

        assert run(3) == run(3)

    def test_warmup_excluded_from_measurement(self):
        base = run_experiment(
            ExperimentConfig(strategy="lazy-master", params=small_params(),
                             duration=20.0, seed=4)
        )
        warmed = run_experiment(
            ExperimentConfig(strategy="lazy-master", params=small_params(),
                             duration=20.0, seed=4, warmup=20.0)
        )
        # warmed run generated ~2x the transactions but reports only the
        # measured window's worth of commits
        assert warmed.metrics.commits == pytest.approx(
            base.metrics.commits, rel=0.35
        )
        assert warmed.rates.commit_rate == pytest.approx(
            base.rates.commit_rate, rel=0.35
        )

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(strategy="lazy-master", params=small_params(),
                             warmup=-1.0)

    def test_two_tier_base_divergence_reported(self):
        result = run_experiment(
            ExperimentConfig(
                strategy="two-tier",
                params=small_params(disconnect_time=2.0),
                duration=20.0,
            )
        )
        assert result.extra["base_divergence"] == 0


class TestComparisons:
    def test_analytic_vs_simulated_rows(self):
        from repro.analytic import lazy_master as lm_eqs

        rows = analytic_vs_simulated(
            strategy="lazy-master",
            base_params=small_params(),
            parameter="nodes",
            values=[1, 2],
            analytic_fn=lm_eqs.deadlock_rate,
            measure=lambda r: r.deadlock_rate,
            duration=10.0,
        )
        assert len(rows) == 2
        assert rows[0].x == 1.0
        assert rows[1].analytic > rows[0].analytic
        text = comparison_table(rows, "nodes", "deadlocks/s", title="t")
        assert "nodes" in text

    def test_strategy_comparison_table(self):
        results = strategy_comparison(
            small_params(), strategies=("lazy-master", "eager-group"),
            duration=10.0,
        )
        assert set(results) == {"lazy-master", "eager-group"}
        text = strategy_table(results)
        assert "lazy-master" in text and "eager-group" in text


class TestFigures:
    def test_render_sweep_includes_caption(self):
        from repro.analytic import eager

        text = render_sweep(
            eager.total_deadlock_rate,
            small_params(db_size=10_000, tps=10, actions=5, action_time=0.01),
            "nodes",
            [1, 2, 4, 8],
            y_label="deadlocks/s",
        )
        assert "cubic" in text
        assert "#" in text

    def test_shape_summary_and_agreement(self):
        exponent, caption = shape_summary([1, 2, 4], [1, 8, 64])
        assert exponent == pytest.approx(3.0)
        assert "cubic" in caption
        assert shapes_agree(3.0, exponent)
        assert not shapes_agree(3.0, 1.0)
        assert not shapes_agree(3.0, None)

    def test_shape_summary_handles_flat_zero(self):
        exponent, caption = shape_summary([1, 2, 4], [0, 0, 0])
        assert exponent is None
