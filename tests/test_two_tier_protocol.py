"""Tests for the two-tier protocol — the paper's section 7, end to end."""

import pytest

from repro.core import (
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    TwoTierSystem,
)
from repro.core.tentative import TentativeStatus
from repro.exceptions import ConfigurationError, ScopeViolationError
from repro.txn.ops import IncrementOp, ReadOp, WriteOp
from repro.replication import SystemSpec


def make(num_base=2, num_mobile=2, db_size=20, **kw):
    kw.setdefault("action_time", 0.001)
    kw.setdefault("initial_value", 100)
    extras = {k: kw.pop(k) for k in ("mobile_mastered", "cascade_rejections")
              if k in kw}
    return TwoTierSystem(
        SystemSpec(num_nodes=num_base + num_mobile, db_size=db_size, **kw),
        num_base=num_base, **extras)


class TestConstruction:
    def test_node_layout(self):
        system = make()
        assert system.num_nodes == 4
        assert system.base_ids == [0, 1]
        assert sorted(system.mobiles) == [2, 3]
        assert system.is_base(0) and not system.is_base(2)

    def test_objects_mastered_at_base_by_default(self):
        system = make()
        assert all(owner in (0, 1) for owner in system.ownership.values())

    def test_mobile_mastered_override(self):
        system = make(mobile_mastered={7: 2})
        assert system.ownership[7] == 2

    def test_invalid_mobile_master_rejected(self):
        with pytest.raises(ConfigurationError):
            make(mobile_mastered={7: 0})  # 0 is a base node

    def test_needs_base_node(self):
        with pytest.raises(ConfigurationError):
            TwoTierSystem(SystemSpec(num_nodes=1, db_size=5), num_base=0)


class TestTentativeExecution:
    def test_disconnected_mobile_sees_tentative_values(self):
        """'If the mobile node queries this data it sees the tentative
        values.'"""
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        system.run()
        assert mobile.read(0) == 60  # tentative view
        assert mobile.master_value(0) == 100  # best-known master unchanged
        assert system.nodes[0].store.value(0) == 100  # real master unchanged

    def test_tentative_transactions_chain_locally(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        system.run()
        assert mobile.read(0) == 20
        assert len(mobile.pending_transactions) == 2
        assert system.metrics.tentative_committed == 2

    def test_scope_rule_enforced(self):
        system = make(mobile_mastered={5: 3})
        mobile2 = system.mobile(2)
        system.disconnect_mobile(2)
        p = mobile2.submit_tentative([WriteOp(5, 1)], AlwaysAccept())
        system.run()
        assert isinstance(p.exception, ScopeViolationError)

    def test_tentative_outputs_recorded(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        p = mobile.submit_tentative(
            [IncrementOp(0, -40), ReadOp(1)], AlwaysAccept()
        )
        system.run()
        record = p.value
        assert record.tentative_outputs == [60]  # only update outputs


class TestReconnectExchange:
    def test_accepted_transaction_updates_master(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.nodes[0].store.value(0) == 60  # master updated
        assert mobile.master_value(0) == 60  # replica refreshed
        assert mobile.accepted_transactions
        assert system.metrics.tentative_accepted == 1

    def test_replay_in_commit_order(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([WriteOp(0, 1)], AlwaysAccept())
        mobile.submit_tentative([WriteOp(0, 2)], AlwaysAccept())
        mobile.submit_tentative([WriteOp(0, 3)], AlwaysAccept())
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.nodes[0].store.value(0) == 3  # last writer in order

    def test_tentative_versions_discarded_on_reconnect(self):
        """Step 1: tentative versions are refreshed from the masters."""
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        system.run()
        assert len(mobile.tentative) == 1
        system.reconnect_mobile(2)
        system.run()
        assert len(mobile.tentative) == 0
        assert mobile.read(0) == 60  # now reads the refreshed master version

    def test_rejected_transaction_leaves_master_untouched(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.nodes[0].store.value(0) == 100  # aborted, rolled back
        rejected = mobile.rejected_transactions
        assert len(rejected) == 1
        assert "negative" in rejected[0].diagnostic
        assert system.metrics.tentative_rejected == 1
        assert system.base_converged()

    def test_rejection_notice_delivered_to_mobile(self):
        """Step 5: 'Accepts notice of the success or failure of each
        tentative transaction.'"""
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert mobile.notices
        seq, status, why = mobile.notices[0]
        assert status is TentativeStatus.REJECTED
        assert "negative" in why

    def test_interleaved_base_updates_change_base_outcome(self):
        """The spouse scenario: somebody else spent the money first."""
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -80)], NonNegativeOutputs())
        system.run()
        # while the mobile is dark, a base transaction drains the account
        system.submit(0, [IncrementOp(0, -90)])
        system.run()
        system.reconnect_mobile(2)
        system.run()
        # 100 - 90 = 10; the -80 debit would go to -70: rejected
        assert system.nodes[0].store.value(0) == 10
        assert system.metrics.tentative_rejected == 1

    def test_different_but_acceptable_result_accepted(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -80)], NonNegativeOutputs())
        system.run()
        system.submit(0, [IncrementOp(0, -15)])  # leaves 85: -80 is still fine
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.nodes[0].store.value(0) == 5
        assert system.metrics.tentative_accepted == 1

    def test_strict_identical_outputs_rejects_on_interference(self):
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        mobile.submit_tentative([IncrementOp(0, -10)], IdenticalOutputs())
        system.run()
        system.submit(0, [IncrementOp(0, -1)])
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.metrics.tentative_rejected == 1

    def test_parked_replica_updates_flush_on_reconnect(self):
        """Step 4: 'Accepts replica updates from the base node.'"""
        system = make()
        system.disconnect_mobile(2)
        system.submit(0, [WriteOp(3, 777)])
        system.run()
        assert system.mobile(2).master_value(3) == 100  # stale while dark
        system.reconnect_mobile(2)
        system.run()
        assert system.mobile(2).master_value(3) == 777


class TestMobileMasteredData:
    def test_local_transaction_while_disconnected(self):
        """'Local transactions that read and write only local data can be
        designed in any way you like.'"""
        system = make(mobile_mastered={5: 2})
        system.disconnect_mobile(2)
        p = system.submit_local(2, [WriteOp(5, 42)])
        system.run()
        assert p.value.state.value == "committed"
        assert system.nodes[2].store.value(5) == 42
        # bases have not seen it yet
        assert system.nodes[0].store.value(5) == 100

    def test_local_updates_propagate_on_reconnect(self):
        """Step 2: 'Sends replica updates for any objects mastered at the
        mobile node.'"""
        system = make(mobile_mastered={5: 2})
        system.disconnect_mobile(2)
        system.submit_local(2, [WriteOp(5, 42)])
        system.run()
        system.reconnect_mobile(2)
        system.run()
        assert system.nodes[0].store.value(5) == 42
        assert system.nodes[1].store.value(5) == 42

    def test_local_txn_on_foreign_object_rejected(self):
        system = make(mobile_mastered={5: 3})
        with pytest.raises(ScopeViolationError):
            system.submit_local(2, [WriteOp(5, 1)])


class TestKeyProperties:
    def test_commuting_transactions_zero_reconciliation(self):
        """Property 5: 'If all transactions commute, there are no
        reconciliations.'"""
        system = make(num_base=2, num_mobile=3)
        for mid in system.mobiles:
            system.disconnect_mobile(mid)
        for mid, mobile in system.mobiles.items():
            for _ in range(5):
                mobile.submit_tentative([IncrementOp(0, -1)], AlwaysAccept())
        system.run()
        for mid in system.mobiles:
            system.reconnect_mobile(mid)
        system.run()
        assert system.metrics.tentative_rejected == 0
        assert system.metrics.tentative_accepted == 15
        assert system.nodes[0].store.value(0) == 85
        assert system.base_converged()

    def test_base_tier_always_converged(self):
        """Property: the master database never suffers system delusion."""
        system = make(num_base=3, num_mobile=2, db_size=10)
        for mid in system.mobiles:
            system.disconnect_mobile(mid)
        for mobile in system.mobiles.values():
            for oid in range(5):
                mobile.submit_tentative(
                    [IncrementOp(oid, -30)], NonNegativeOutputs()
                )
        system.run()
        for mid in system.mobiles:
            system.reconnect_mobile(mid)
        system.run()
        assert system.base_divergence() == 0
        # and since everything drained, mobiles converged to base state too
        assert system.divergence() == 0

    def test_durability_at_base_commit(self):
        """Property 3: 'A transaction becomes durable when the base
        transaction completes.'"""
        system = make()
        mobile = system.mobile(2)
        system.disconnect_mobile(2)
        p = mobile.submit_tentative([IncrementOp(1, -5)], AlwaysAccept())
        system.run()
        record = p.value
        assert record.base_txn_id is None  # not durable yet
        system.reconnect_mobile(2)
        system.run()
        assert record.base_txn_id is not None
        assert record.status is TentativeStatus.ACCEPTED

    def test_connected_mobile_submits_base_transactions_directly(self):
        """'In the connected case, a two-tier system operates much like a
        lazy-master system.'"""
        system = make()
        p = system.submit(2, [IncrementOp(0, -25)])
        system.run()
        assert p.value.state.value == "committed"
        assert system.nodes[0].store.value(0) == 75
        assert system.divergence() == 0
