"""Tests for the scope rule and tentative-version overlay."""

import pytest

from repro.core.scope import TransactionScope
from repro.core.tentative import TentativeStore, TentativeStatus, TentativeTransaction
from repro.core.acceptance import AlwaysAccept
from repro.exceptions import ScopeViolationError
from repro.storage.store import ObjectStore
from repro.txn.ops import IncrementOp, ReadOp, WriteOp


class TestScopeRule:
    def scope(self):
        # objects 0-3 mastered at base nodes 0/1; 4 at mobile 2; 5 at mobile 3
        ownership = {0: 0, 1: 1, 2: 0, 3: 1, 4: 2, 5: 3}
        return TransactionScope(ownership, base_node_ids=[0, 1])

    def test_base_mastered_objects_in_scope(self):
        scope = self.scope()
        scope.validate([WriteOp(0, 1), IncrementOp(3, 2)], mobile_id=2)

    def test_own_mastered_object_in_scope(self):
        self.scope().validate([WriteOp(4, 1)], mobile_id=2)

    def test_other_mobiles_objects_out_of_scope(self):
        with pytest.raises(ScopeViolationError):
            self.scope().validate([WriteOp(5, 1)], mobile_id=2)

    def test_reads_also_checked(self):
        with pytest.raises(ScopeViolationError):
            self.scope().validate([ReadOp(5)], mobile_id=2)

    def test_unknown_object_out_of_scope(self):
        with pytest.raises(ScopeViolationError):
            self.scope().validate([WriteOp(99, 1)], mobile_id=2)

    def test_allowed_oids(self):
        allowed = self.scope().allowed_oids(mobile_id=2)
        assert allowed == {0, 1, 2, 3, 4}


class TestTentativeStore:
    def base(self):
        store = ObjectStore(node_id=5, db_size=4, initial_value=100)
        return store, TentativeStore(store)

    def test_reads_fall_through_to_master_version(self):
        base, tent = self.base()
        assert tent.value(0) == 100

    def test_writes_shadow_without_touching_base(self):
        base, tent = self.base()
        tent.write(0, 55)
        assert tent.value(0) == 55
        assert base.value(0) == 100

    def test_apply_op_uses_tentative_view(self):
        base, tent = self.base()
        tent.apply(IncrementOp(0, -30))
        tent.apply(IncrementOp(0, -30))
        assert tent.value(0) == 40  # both debits visible locally

    def test_apply_read_does_not_dirty(self):
        base, tent = self.base()
        assert tent.apply(ReadOp(1)) == 100
        assert 1 not in tent

    def test_discard_restores_master_view(self):
        base, tent = self.base()
        tent.write(0, 1)
        tent.write(2, 3)
        assert len(tent) == 2
        dropped = tent.discard()
        assert dropped == 2
        assert tent.value(0) == 100
        assert len(tent) == 0

    def test_dirty_oids_sorted(self):
        base, tent = self.base()
        tent.write(3, 1)
        tent.write(0, 1)
        assert list(tent.dirty_oids) == [0, 3]


class TestTentativeTransaction:
    def test_initial_status_pending(self):
        record = TentativeTransaction(
            seq=1, mobile_id=2, ops=[WriteOp(0, 1)], acceptance=AlwaysAccept()
        )
        assert record.pending
        assert record.status is TentativeStatus.PENDING

    def test_status_transitions(self):
        record = TentativeTransaction(
            seq=1, mobile_id=2, ops=[], acceptance=AlwaysAccept()
        )
        record.status = TentativeStatus.ACCEPTED
        assert not record.pending
