"""Tests for SimEvent semantics."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.events import EventState, SimEvent


def test_new_event_is_pending():
    event = SimEvent()
    assert event.pending
    assert not event.settled
    assert event.state is EventState.PENDING


def test_succeed_carries_value():
    event = SimEvent()
    event.succeed(99)
    assert event.settled
    assert event.value == 99
    assert event.exception is None


def test_fail_carries_exception():
    event = SimEvent()
    exc = RuntimeError("nope")
    event.fail(exc)
    assert event.state is EventState.FAILED
    assert event.exception is exc


def test_double_succeed_rejected():
    event = SimEvent()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_after_succeed_rejected():
    event = SimEvent()
    event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception_instance():
    event = SimEvent()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_callbacks_run_on_settle():
    event = SimEvent()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed("v")
    assert seen == ["v"]


def test_callback_added_after_settle_runs_immediately():
    event = SimEvent()
    event.succeed("v")
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_remove_callback_prevents_invocation():
    event = SimEvent()
    seen = []
    cb = lambda e: seen.append(1)  # noqa: E731
    event.add_callback(cb)
    event.remove_callback(cb)
    event.succeed()
    assert seen == []


def test_remove_unknown_callback_is_noop():
    event = SimEvent()
    event.remove_callback(lambda e: None)  # must not raise
    event.succeed()


def test_multiple_callbacks_all_run_in_order():
    event = SimEvent()
    seen = []
    event.add_callback(lambda e: seen.append("first"))
    event.add_callback(lambda e: seen.append("second"))
    event.succeed()
    assert seen == ["first", "second"]
