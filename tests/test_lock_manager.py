"""Tests for the strict-2PL lock manager."""

import pytest

from repro.exceptions import DeadlockAbort
from repro.sim import Engine
from repro.storage.deadlock import DeadlockDetector
from repro.storage.lock_manager import LockManager, LockMode


class FakeTxn:
    _next = iter(range(1, 10_000)).__next__

    def __init__(self, label=""):
        self.txn_id = FakeTxn._next()
        self.label = label

    def __repr__(self):
        return f"T{self.txn_id}"


@pytest.fixture()
def lm():
    engine = Engine()
    detector = DeadlockDetector()
    manager = LockManager(engine, node_id=0, detector=detector)
    manager._engine = engine  # keep engine alive for callers
    return manager


class TestModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible_with(LockMode.SHARED)

    def test_exclusive_conflicts_with_everything(self):
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.SHARED)
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.EXCLUSIVE)
        assert not LockMode.SHARED.compatible_with(LockMode.EXCLUSIVE)

    def test_covers(self):
        assert LockMode.EXCLUSIVE.covers(LockMode.SHARED)
        assert LockMode.EXCLUSIVE.covers(LockMode.EXCLUSIVE)
        assert LockMode.SHARED.covers(LockMode.SHARED)
        assert not LockMode.SHARED.covers(LockMode.EXCLUSIVE)


class TestGrant:
    def test_free_lock_granted_immediately(self, lm):
        t = FakeTxn()
        assert lm.acquire(t, 1, LockMode.EXCLUSIVE) is None
        assert lm.holders(1) == {t: LockMode.EXCLUSIVE}

    def test_reentrant_acquire_is_free(self, lm):
        t = FakeTxn()
        assert lm.acquire(t, 1, LockMode.EXCLUSIVE) is None
        assert lm.acquire(t, 1, LockMode.EXCLUSIVE) is None
        assert lm.acquire(t, 1, LockMode.SHARED) is None  # X covers S

    def test_two_shared_holders(self, lm):
        a, b = FakeTxn(), FakeTxn()
        assert lm.acquire(a, 1, LockMode.SHARED) is None
        assert lm.acquire(b, 1, LockMode.SHARED) is None
        assert set(lm.holders(1)) == {a, b}

    def test_exclusive_blocks_second(self, lm):
        a, b = FakeTxn(), FakeTxn()
        assert lm.acquire(a, 1, LockMode.EXCLUSIVE) is None
        event = lm.acquire(b, 1, LockMode.EXCLUSIVE)
        assert event is not None
        assert event.pending
        assert lm.queue_length(1) == 1

    def test_shared_blocks_behind_exclusive(self, lm):
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        assert lm.acquire(b, 1, LockMode.SHARED) is not None

    def test_no_barging_past_queued_exclusive(self, lm):
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.SHARED)
        assert lm.acquire(b, 1, LockMode.EXCLUSIVE) is not None  # queued
        # c's shared request is compatible with the holder but must not barge
        # past b's queued exclusive
        assert lm.acquire(c, 1, LockMode.SHARED) is not None


class TestRelease:
    def test_release_grants_next_in_fifo_order(self, lm):
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        eb = lm.acquire(b, 1, LockMode.EXCLUSIVE)
        ec = lm.acquire(c, 1, LockMode.EXCLUSIVE)
        lm.release_all(a)
        assert eb.settled and not ec.settled
        assert lm.holders(1) == {b: LockMode.EXCLUSIVE}
        lm.release_all(b)
        assert ec.settled
        assert lm.holders(1) == {c: LockMode.EXCLUSIVE}

    def test_release_grants_multiple_compatible_readers(self, lm):
        w, r1, r2 = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(w, 1, LockMode.EXCLUSIVE)
        e1 = lm.acquire(r1, 1, LockMode.SHARED)
        e2 = lm.acquire(r2, 1, LockMode.SHARED)
        lm.release_all(w)
        assert e1.settled and e2.settled
        assert set(lm.holders(1)) == {r1, r2}

    def test_release_all_covers_every_object(self, lm):
        t = FakeTxn()
        for oid in range(5):
            lm.acquire(t, oid, LockMode.EXCLUSIVE)
        assert lm.locks_held(t) == set(range(5))
        lm.release_all(t)
        assert lm.locks_held(t) == set()
        for oid in range(5):
            assert lm.holders(oid) == {}

    def test_release_drops_queued_requests_of_txn(self, lm):
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 1, LockMode.EXCLUSIVE)
        assert lm.queue_length(1) == 1
        lm.release_all(b)  # b gives up while queued
        assert lm.queue_length(1) == 0
        lm.release_all(a)
        assert lm.holders(1) == {}

    def test_release_without_holdings_is_safe(self, lm):
        lm.release_all(FakeTxn())  # must not raise


class TestUpgrade:
    def test_sole_shared_holder_upgrades_immediately(self, lm):
        t = FakeTxn()
        lm.acquire(t, 1, LockMode.SHARED)
        assert lm.acquire(t, 1, LockMode.EXCLUSIVE) is None
        assert lm.holders(1) == {t: LockMode.EXCLUSIVE}

    def test_upgrade_waits_for_other_reader(self, lm):
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.SHARED)
        lm.acquire(b, 1, LockMode.SHARED)
        event = lm.acquire(a, 1, LockMode.EXCLUSIVE)
        assert event is not None
        lm.release_all(b)
        assert event.settled
        assert lm.holders(1) == {a: LockMode.EXCLUSIVE}

    def test_upgrade_jumps_ahead_of_ordinary_waiters(self, lm):
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.SHARED)
        lm.acquire(b, 1, LockMode.SHARED)
        ec = lm.acquire(c, 1, LockMode.EXCLUSIVE)  # ordinary waiter
        ea = lm.acquire(a, 1, LockMode.EXCLUSIVE)  # upgrade
        lm.release_all(b)
        assert ea.settled  # upgrade granted first
        assert not ec.settled


class TestHooks:
    def test_on_wait_fires_per_blocked_request(self):
        engine = Engine()
        waits = []
        lm = LockManager(engine, 0, DeadlockDetector(), on_wait=waits.append)
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 1, LockMode.EXCLUSIVE)
        lm.acquire(c, 1, LockMode.EXCLUSIVE)
        assert waits == [b, c]

    def test_granted_requests_do_not_count_as_waits(self):
        engine = Engine()
        waits = []
        lm = LockManager(engine, 0, DeadlockDetector(), on_wait=waits.append)
        lm.acquire(FakeTxn(), 1, LockMode.EXCLUSIVE)
        assert waits == []


class TestUsageContract:
    def test_second_request_while_queued_rejected(self, lm):
        from repro.exceptions import LockError

        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        assert lm.acquire(b, 1, LockMode.EXCLUSIVE) is not None  # queued
        with pytest.raises(LockError):
            lm.acquire(b, 1, LockMode.SHARED)  # second outstanding request

    def test_fresh_request_after_grant_is_fine(self, lm):
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        event = lm.acquire(b, 1, LockMode.EXCLUSIVE)
        lm.release_all(a)
        assert event.settled
        # b now holds the lock; a re-entrant acquire is legal again
        assert lm.acquire(b, 1, LockMode.SHARED) is None


class TestVictimAbort:
    def test_cancel_request_fails_event_and_promotes(self, lm):
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        eb = lm.acquire(b, 1, LockMode.EXCLUSIVE)
        ec = lm.acquire(c, 1, LockMode.EXCLUSIVE)
        # find b's queued request and cancel it
        entry = lm._table[1]
        request = entry.queue[0]
        lm.cancel_request(1, request, DeadlockAbort())
        assert isinstance(eb.exception, DeadlockAbort)
        lm.release_all(a)
        assert ec.settled  # c got the lock, skipping cancelled b
