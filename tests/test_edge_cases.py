"""Edge-case tests across modules: small gaps the main suites skip."""

import pytest

from repro.exceptions import ProcessKilled, ScopeViolationError
from repro.sim import Engine
from repro.replication import SystemSpec


class TestEngineEdges:
    def test_abandoned_timer_does_not_advance_clock(self):
        """An interrupted sleeper's dead timer must not stretch the run."""
        engine = Engine()

        def sleeper():
            try:
                yield engine.timeout(1000.0)
            except ProcessKilled:
                return "killed"

        p = engine.process(sleeper())
        engine.schedule(1.0, p.interrupt)
        engine.run()
        assert p.value == "killed"
        assert engine.now == 1.0  # not 1000.0

    def test_abandoned_timer_at_queue_head_skipped_in_run_until(self):
        engine = Engine()

        def sleeper():
            try:
                yield engine.timeout(5.0)
            except ProcessKilled:
                return "killed"

        p = engine.process(sleeper())
        engine.run(until=0.5)
        p.interrupt()
        engine.run(until=10.0)
        assert engine.now == 10.0
        assert p.value == "killed"

    def test_stale_timer_generation_is_ignored(self):
        """A timer entry whose generation no longer matches must not step."""
        engine = Engine()

        def sleeper():
            yield engine.timeout(1.0)
            return "woke"

        p = engine.process(sleeper())
        engine.run(until=0.5)  # parked on the timer now
        stale_gen = p._timer_gen
        p.interrupt()  # bumps the generation, invalidating the heap entry
        live = engine.queued_events
        engine._resume_timer(p, stale_gen)  # direct stale fire: must no-op
        assert engine.queued_events == live  # no step was scheduled
        engine.run()
        assert isinstance(p.exception, ProcessKilled)

    def test_deeply_nested_yield_from_chain(self):
        engine = Engine()

        def leaf():
            yield engine.timeout(1.0)
            return 1

        def wrap(inner, depth):
            result = yield from inner()
            return result + depth

        def chain():
            total = yield from wrap(lambda: wrap(leaf, 10), 100)
            return total

        p = engine.process(chain())
        engine.run()
        assert p.value == 111


class TestNetworkEdges:
    def test_messages_from_multiple_sources_ordered_by_send_time(self):
        from repro.network import Network

        engine = Engine()
        net = Network(engine, 3, message_delay=1.0)
        seen = []
        net.register(2, lambda msg: seen.append(msg.payload))
        net.register(0, lambda msg: None)
        net.register(1, lambda msg: None)
        engine.schedule(0.0, net.send, 0, 2, "m", "from-0")
        engine.schedule(0.5, net.send, 1, 2, "m", "from-1")
        engine.run()
        assert seen == ["from-0", "from-1"]

    def test_flood_of_parked_messages_flushes_completely(self):
        from repro.network import Network

        engine = Engine()
        net = Network(engine, 2)
        seen = []
        net.register(1, lambda msg: seen.append(msg.payload))
        net.register(0, lambda msg: None)
        net.disconnect(1)
        for i in range(500):
            net.send(0, 1, "burst", i)
        engine.run()
        assert seen == []
        net.reconnect(1)
        engine.run()
        assert seen == list(range(500))

    def test_self_send_delivers(self):
        from repro.network import Network

        engine = Engine()
        net = Network(engine, 1)
        seen = []
        net.register(0, lambda msg: seen.append(msg.payload))
        net.send(0, 0, "loop", "me")
        engine.run()
        assert seen == ["me"]


class TestReportEdges:
    def test_growth_caption_fractional_orders(self):
        from repro.metrics.report import growth_caption

        assert "order-0" in growth_caption(0.2)
        assert "order-7" in growth_caption(7.1)

    def test_format_series_linear_scale(self):
        from repro.metrics.report import format_series

        text = format_series([1, 2], [1.0, 2.0], log_scale=False)
        assert "#" in text

    def test_format_table_empty_rows(self):
        from repro.metrics.report import format_table

        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestTwoTierEdges:
    def test_local_transactions_cannot_touch_tentative_data(self):
        """'They cannot read or write any tentative data because that would
        make them tentative' — local transactions operate on master copies;
        objects not mastered here are rejected outright."""
        from repro.core import TwoTierSystem
        from repro.txn.ops import WriteOp

        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=4),
            num_base=1,
            mobile_mastered={3: 1},
        )
        with pytest.raises(ScopeViolationError):
            system.submit_local(1, [WriteOp(0, 5)])  # base-mastered object

    def test_local_transaction_sees_master_not_tentative_version(self):
        from repro.core import AlwaysAccept, TwoTierSystem
        from repro.txn.ops import IncrementOp, ReadOp

        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=4, initial_value=10,
                       action_time=0.001),
            num_base=1,
            mobile_mastered={3: 1},
        )
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        # a tentative write to the mobile-mastered object's *overlay*
        mobile.submit_tentative([IncrementOp(3, 5)], AlwaysAccept())
        system.run()
        assert mobile.read(3) == 15  # tentative view
        # a local (master-copy) transaction reads the real master version
        p = system.submit_local(1, [ReadOp(3)])
        system.run()
        assert p.value.reads == [10]

    def test_empty_tentative_transaction_is_accepted(self):
        from repro.core import AlwaysAccept, TwoTierSystem
        from repro.txn.ops import ReadOp

        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.001),
            num_base=1,
        )
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        mobile.submit_tentative([ReadOp(0)], AlwaysAccept())
        system.run()
        system.reconnect_mobile(1)
        system.run()
        assert system.metrics.tentative_accepted == 1


class TestQuorumEdges:
    def test_exact_boundary_membership(self):
        from repro.replication.quorum import QuorumConfig

        q = QuorumConfig.majority(4)  # quorum = 3
        assert not q.is_write_quorum(2)
        assert q.is_write_quorum(3)

    def test_single_node_quorum(self):
        from repro.replication.quorum import QuorumConfig

        q = QuorumConfig.majority(1)
        assert q.is_write_quorum({0})
        assert q.write_availability(0.9) == pytest.approx(0.9)
