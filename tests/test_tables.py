"""Tests for the Table 1 taxonomy and Table 2 glossary."""

import pytest

from repro.analytic import ModelParameters
from repro.analytic.tables import (
    TABLE_1,
    TABLE_2,
    expected_transaction_count,
    render_table_1,
    render_table_2,
    taxonomy_entry,
)


class TestTable1:
    def test_all_five_cells_present(self):
        assert len(TABLE_1) == 5

    def test_lazy_group_cell(self):
        entry = taxonomy_entry("lazy", "group")
        assert entry.transactions_per_update == "N"
        assert entry.object_owners == "N"

    def test_eager_group_cell(self):
        entry = taxonomy_entry("eager", "group")
        assert entry.transactions_per_update == "1"
        assert entry.object_owners == "N"

    def test_lazy_master_cell(self):
        entry = taxonomy_entry("lazy", "master")
        assert entry.transactions_per_update == "N"
        assert entry.object_owners == "1"

    def test_eager_master_cell(self):
        entry = taxonomy_entry("eager", "master")
        assert entry.transactions_per_update == "1"
        assert entry.object_owners == "1"

    def test_two_tier_row(self):
        entry = taxonomy_entry("two-tier", "two-tier")
        assert entry.transactions_per_update == "N+1"
        assert entry.object_owners == "1"
        assert "tentative" in entry.note

    def test_unknown_combination_raises(self):
        with pytest.raises(KeyError):
            taxonomy_entry("eager", "two-tier")

    def test_expected_transaction_counts(self):
        assert expected_transaction_count("eager", 5) == 1
        assert expected_transaction_count("lazy", 5) == 5
        assert expected_transaction_count("two-tier", 5) == 6
        with pytest.raises(KeyError):
            expected_transaction_count("psychic", 5)

    def test_render_contains_all_rows(self):
        text = render_table_1()
        for word in ["eager", "lazy", "two-tier", "master", "group"]:
            assert word in text


class TestTable2:
    def test_all_paper_parameters_present(self):
        for name in [
            "DB_Size", "Nodes", "Transactions", "TPS", "Actions",
            "Action_Time", "Time_Between_Disconnects", "Disconnected_Time",
            "Message_Delay", "Message_CPU",
        ]:
            assert name in TABLE_2

    def test_attributes_resolve_on_model(self):
        p = ModelParameters()
        for name, (description, attr) in TABLE_2.items():
            assert hasattr(p, attr), f"{name} -> missing attribute {attr}"
            assert description

    def test_render_shows_values(self):
        p = ModelParameters(db_size=123, tps=45)
        text = render_table_2(p)
        assert "123" in text
        assert "45" in text
        assert "DB_Size" in text
