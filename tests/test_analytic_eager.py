"""Tests for equations 6-13 (eager replication scaling)."""

import pytest

from repro.analytic import ModelParameters, eager
from repro.analytic.scaling import amplification, fit_exponent, sweep


@pytest.fixture()
def p():
    return ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                           action_time=0.01)


class TestEquation6:
    def test_transaction_size(self, p):
        assert eager.transaction_size(p.with_(nodes=3)) == 15

    def test_transaction_duration(self, p):
        assert eager.transaction_duration(p.with_(nodes=3)) == pytest.approx(0.15)

    def test_total_tps(self, p):
        assert eager.total_tps(p.with_(nodes=4)) == 40

    def test_single_node_degenerates_to_base_case(self, p):
        assert eager.transaction_size(p) == p.actions
        assert eager.transaction_duration(p) == p.transaction_duration


class TestEquations7And8:
    def test_total_transactions_quadratic(self, p):
        r = sweep(eager.total_transactions, p, "nodes", [1, 2, 4, 8, 16])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    def test_total_transactions_value(self, p):
        # TPS * A * AT * N^2 = 10*5*0.01*9 = 4.5
        assert eager.total_transactions(p.with_(nodes=3)) == pytest.approx(4.5)

    def test_action_rate_quadratic(self, p):
        r = sweep(eager.action_rate, p, "nodes", [1, 2, 4, 8])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    def test_action_rate_value(self, p):
        # Figure 3: doubling nodes quadruples the aggregate update work
        assert eager.action_rate(p.with_(nodes=2)) == pytest.approx(
            4 * eager.action_rate(p) / 2 * 2
        )
        assert eager.action_rate(p.with_(nodes=2)) == 4 * p.tps * p.actions


class TestEquations9And10:
    def test_wait_probability_value(self, p):
        # TPS*AT*A^3*N^2/(2 DB)
        q = p.with_(nodes=3)
        expected = 10 * 0.01 * 125 * 9 / 20_000
        assert eager.wait_probability(q) == pytest.approx(expected)

    def test_wait_rate_cubic_in_nodes(self, p):
        r = sweep(eager.total_wait_rate, p, "nodes", [1, 2, 4, 8, 16])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)

    def test_wait_rate_cubic_in_actions(self, p):
        r = sweep(eager.total_wait_rate, p, "actions", [2, 4, 8, 16])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)


class TestEquations11And12:
    def test_deadlock_probability_value(self, p):
        q = p.with_(nodes=2)
        expected = 10 * 0.01 * 5**5 * 4 / (4 * 10_000**2)
        assert eager.deadlock_probability(q) == pytest.approx(expected)

    def test_headline_ten_nodes_thousandfold(self, p):
        """The paper's abstract: 'a ten-fold increase in nodes and traffic
        gives a thousand fold increase in deadlocks'."""
        assert amplification(
            eager.total_deadlock_rate, p, "nodes", 10
        ) == pytest.approx(1000.0)

    def test_transaction_size_hundred_thousandfold(self, p):
        """'A ten-fold increase in the transaction size increases the
        deadlock rate by a factor of 100,000.'"""
        assert amplification(
            eager.total_deadlock_rate, p, "actions", 10
        ) == pytest.approx(100_000.0)

    def test_deadlock_rate_cubic_in_nodes(self, p):
        r = sweep(eager.total_deadlock_rate, p, "nodes", [1, 2, 5, 10, 20])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)

    def test_deadlock_rate_quintic_in_actions(self, p):
        r = sweep(eager.total_deadlock_rate, p, "actions", [2, 4, 8])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(5.0)

    def test_deadlock_rate_follows_pd_over_duration(self, p):
        q = p.with_(nodes=4)
        expected = (
            eager.total_transactions(q)
            * eager.deadlock_probability(q)
            / eager.transaction_duration(q)
        )
        assert eager.total_deadlock_rate(q) == pytest.approx(expected)


class TestEquation13:
    def test_scaled_db_linear_in_nodes(self, p):
        r = sweep(
            eager.total_deadlock_rate_scaled_db, p, "nodes", [1, 2, 5, 10, 50]
        )
        assert fit_exponent(r.xs, r.ys) == pytest.approx(1.0)

    def test_scaled_db_matches_substitution(self, p):
        """Equation 13 must equal equation 12 with DB_Size := DB_Size*N."""
        q = p.with_(nodes=7)
        assert eager.total_deadlock_rate_scaled_db(q) == pytest.approx(
            eager.total_deadlock_rate(q.scaled_db())
        )

    def test_ten_nodes_only_tenfold(self, p):
        assert amplification(
            eager.total_deadlock_rate_scaled_db, p, "nodes", 10
        ) == pytest.approx(10.0)
