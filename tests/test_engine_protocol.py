"""Conformance tests for the explicit engine interface (sim/protocol.py).

Three kernels, one contract: the slotted ``Engine``, the asyncio-backed
``WallClockEngine``, and (core tier only) the frozen ``LegacyEngine``.
These tests are structural — a kernel that forgets a member fails here
before any strategy trips over it at runtime.
"""

import pytest

from repro.sim import CORE_ENGINE_MEMBERS, Engine, EngineProtocol
from repro.sim.legacy_kernel import LegacyEngine
from repro.service import WallClockEngine


def test_engine_satisfies_full_protocol():
    assert isinstance(Engine(), EngineProtocol)


def test_wallclock_engine_satisfies_full_protocol():
    assert isinstance(WallClockEngine(), EngineProtocol)


def test_legacy_engine_satisfies_core_tier():
    # the frozen benchmark reference predates schedule_at/_spawn/profiler;
    # it must keep the scheduling core it has always had, nothing more
    legacy = LegacyEngine()
    missing = [name for name in CORE_ENGINE_MEMBERS
               if not hasattr(legacy, name)]
    assert not missing, f"LegacyEngine lost core members: {missing}"


def test_core_members_are_a_subset_of_the_full_protocol():
    engine = Engine()
    missing = [name for name in CORE_ENGINE_MEMBERS
               if not hasattr(engine, name)]
    assert not missing


def test_incomplete_kernel_fails_the_protocol_check():
    class NotAnEngine:
        now = 0.0

        def schedule(self, delay, callback, *args):
            pass

    assert not isinstance(NotAnEngine(), EngineProtocol)


def test_protocol_is_runtime_checkable_not_nominal():
    # structural typing: a class never importing EngineProtocol conforms
    # if (and only if) it has the members
    class Structural:
        def __init__(self):
            self.now = 0.0
            self.profiler = None
            self.queued_events = 0
            self.events_scheduled = 0

        def schedule(self, delay, callback, *args):
            pass

        def schedule_now(self, callback, *args):
            pass

        def schedule_at(self, at, callback, *args):
            pass

        def timeout(self, delay):
            pass

        def event(self, name=""):
            pass

        def process(self, generator, name=""):
            pass

        def _spawn(self, generator, name=""):
            pass

        def run(self, until=None):
            pass

        def peek(self):
            return None

    assert isinstance(Structural(), EngineProtocol)


@pytest.mark.parametrize("module_name", [
    "repro.txn.manager",
    "repro.txn.twopc",
    "repro.network.network",
    "repro.storage.lock_manager",
    "repro.replication.gossip",
])
def test_system_layers_type_against_the_protocol(module_name):
    """The layers the wall-clock kernel drives import the protocol, not
    the concrete Engine — the import is what keeps them kernel-agnostic."""
    import importlib

    module = importlib.import_module(module_name)
    assert getattr(module, "EngineProtocol", None) is EngineProtocol
