"""Run reports: markdown sections, JSON shape, and series recovery."""

import json

from repro.analytic import ModelParameters
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.campaign import result_from_dict
from repro.harness.export import result_to_dict
from repro.obs.report import build_report, write_report


def _run(sample_interval=1.0, faults=True, seed=1):
    params = ModelParameters(
        db_size=80, nodes=4, tps=6, actions=3, action_time=0.005
    )
    duration = 20.0
    plan = (FaultPlan.from_spec("partition=5", num_nodes=4,
                                duration=duration)
            if faults else None)
    return run_experiment(
        ExperimentConfig(
            strategy="lazy-group",
            params=params,
            duration=duration,
            seed=seed,
            faults=plan,
            sample_interval=sample_interval,
        )
    )


def test_report_markdown_sections():
    report = build_report(_run())
    text = report.to_markdown()
    assert text.startswith("# lazy-group run")
    for heading in ("## Run", "## Oracle", "## Rates", "## Counters",
                    "## Injected faults", "## Fault timeline",
                    "## Time series"):
        assert heading in text, f"missing section {heading}"
    assert "partition-start" in text
    assert "reconciliation_rate" in text
    # sparklines rendered between pipes
    assert text.count("|") > 10


def test_report_without_sampling_or_faults():
    report = build_report(_run(sample_interval=0.0, faults=False))
    text = report.to_markdown()
    assert "## Time series" not in text
    assert "## Fault timeline" not in text
    assert "## Injected faults" not in text
    assert "## Oracle: ok" in text


def test_report_dict_is_json_serialisable():
    report = build_report(_run())
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["oracle_ok"] is True
    assert doc["divergence"] == 0
    assert "reconciliation_rate" in doc["series"]
    assert doc["series"]["commit_rate"]["summary"]["count"] > 0
    assert any(m["label"] == "partition-heal" for m in doc["timeline"])


def test_report_from_serialised_payload():
    """Series recovered from extra["series"] after a round trip through the
    campaign payload shape (process/disk boundary)."""
    result = _run()
    payload = json.loads(json.dumps(result_to_dict(result)))
    rebuilt = result_from_dict(result.config, payload)
    report = build_report(rebuilt)
    assert "## Time series" in report.to_markdown()
    assert any(s.name == "reconciliation_rate" for s in report.series)
    assert report.sample_interval == 1.0


def test_write_report(tmp_path):
    report = build_report(_run(), title="chaos run")
    path = write_report(report, tmp_path / "sub" / "report.md")
    text = path.read_text()
    assert text.startswith("# chaos run")


def test_trace_dropped_warning_in_report():
    from repro.sim.tracing import Tracer

    params = ModelParameters(
        db_size=60, nodes=3, tps=8, actions=4, action_time=0.002
    )
    tracer = Tracer(limit=50)  # tiny ring buffer, guaranteed overflow
    result = run_experiment(
        ExperimentConfig(strategy="lazy-group", params=params,
                         duration=15.0, seed=0, tracer=tracer)
    )
    assert result.extra["trace_dropped"] == tracer.dropped > 0
    report = build_report(result)
    assert "ring buffer dropped" in report.to_markdown()
