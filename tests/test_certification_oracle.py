"""Certification aborts through the oracle's eyes.

A certification abort (deferred-update) or validation abort (SCAR) is the
protocol *refusing* a transaction, not losing it: the rejected delta must
appear nowhere, every accepted delta must appear everywhere, and the
post-run oracle must still judge the system healthy.  Distinct power-of-two
deltas make the accepted set readable off the final value — any leaked
aborted delta would set a bit the committed set cannot explain.
"""

import pytest

from repro.faults.oracle import evaluate
from repro.replication import DeferredUpdateSystem, ScarSystem, SystemSpec
from repro.txn.ops import IncrementOp, ReadOp

SYSTEMS = [DeferredUpdateSystem, ScarSystem]


def _make(cls, **overrides):
    kwargs = dict(
        num_nodes=3, db_size=20, action_time=0.01, message_delay=0.05,
        seed=1,
    )
    kwargs.update(overrides)
    return cls(SystemSpec(**kwargs))


def _contended_increments(system, oid=5):
    """Race one increment per node on the same object; return the procs.

    All transactions observe the initial version, so at most one can
    certify — the rest are certification casualties by construction.
    """
    return [
        system.submit(origin, [IncrementOp(oid, 2 ** origin)])
        for origin in range(system.num_nodes)
    ]


@pytest.mark.parametrize("cls", SYSTEMS, ids=lambda c: c.name)
def test_cert_abort_is_a_refusal_not_a_lost_update(cls):
    oid = 5
    system = _make(cls)
    procs = _contended_increments(system, oid)
    system.run()
    txns = [p.value for p in procs]
    committed = [t for t in txns if t.state.value == "committed"]
    aborted = [t for t in txns if t.state.value == "aborted"]
    cert_aborts = system.metrics.as_dict().get("cert_aborts", 0)
    assert cert_aborts >= 1, "contended increments must collide at certification"
    assert len(committed) >= 1, "one of the racers must win"
    assert len(committed) + len(aborted) == len(txns)
    # accepted-set sum reconciles at every replica; a leaked aborted delta
    # would set a bit outside the committed mask
    accepted = sum(2 ** t.origin_node for t in committed)
    for node in system.nodes:
        assert node.store.peek(oid) == accepted
    for txn in aborted:
        assert not accepted & (2 ** txn.origin_node)


@pytest.mark.parametrize("cls", SYSTEMS, ids=lambda c: c.name)
def test_cert_aborts_keep_the_oracle_green(cls):
    system = _make(cls)
    _contended_increments(system)
    system.run()
    verdict = evaluate(system)
    assert verdict.expected_convergence
    assert verdict.ok, verdict.describe()
    # cert aborts are aborts: the danger counters must fold them in
    assert system.metrics.as_dict().get("cert_aborts", 0) >= 1
    assert system.metrics.aborts >= system.metrics.as_dict()["cert_aborts"]
    assert system.metrics.commits + system.metrics.aborts == system.num_nodes


@pytest.mark.parametrize("cls", SYSTEMS, ids=lambda c: c.name)
def test_read_only_transactions_skip_certification(cls):
    system = _make(cls)
    procs = [
        system.submit(origin, [ReadOp(3), ReadOp(7)])
        for origin in range(system.num_nodes)
    ]
    system.run()
    assert all(p.value.state.value == "committed" for p in procs)
    assert system.metrics.as_dict().get("cert_aborts", 0) == 0
    assert evaluate(system).ok


@pytest.mark.parametrize("cls", SYSTEMS, ids=lambda c: c.name)
def test_uncontended_increments_all_certify(cls):
    system = _make(cls)
    procs = [
        system.submit(origin, [IncrementOp(origin, 1)])
        for origin in range(system.num_nodes)
    ]
    system.run()
    assert all(p.value.state.value == "committed" for p in procs)
    assert system.metrics.as_dict().get("cert_aborts", 0) == 0
    for origin in range(system.num_nodes):
        for node in system.nodes:
            assert node.store.peek(origin) == 1
    assert evaluate(system).ok
