"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Table 2" in out
    assert "DB_Size" in out


def test_danger_command(capsys):
    assert main(["danger", "--nodes", "10"]) == 0
    out = capsys.readouterr().out
    assert "eq 12" in out
    assert "N^3.0" in out
    assert "N^2.0" in out  # lazy-master quadratic


def test_danger_with_disconnects(capsys):
    assert main(["danger", "--nodes", "8", "--disconnect-time", "100"]) == 0
    out = capsys.readouterr().out
    assert "eq 18" in out


def test_simulate_command(capsys):
    assert main([
        "simulate", "--strategy", "lazy-master", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
    ]) == 0
    out = capsys.readouterr().out
    assert "commit_rate" in out
    assert "divergence after drain: 0" in out


def test_simulate_two_tier_commutative(capsys):
    assert main([
        "simulate", "--strategy", "two-tier", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
        "--disconnect-time", "2", "--commutative",
    ]) == 0
    out = capsys.readouterr().out
    assert "tentative_accepted" in out


def test_simulate_writes_json(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    assert main([
        "simulate", "--strategy", "lazy-master", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
        "--json", str(out_file),
    ]) == 0
    import json

    data = json.loads(out_file.read_text())
    assert data["config"]["strategy"] == "lazy-master"
    assert data["counters"]["commits"] > 0


def test_simulate_with_trace_sample(capsys):
    assert main([
        "simulate", "--strategy", "eager-group", "--nodes", "2",
        "--db-size", "30", "--tps", "3", "--actions", "2",
        "--action-time", "0.005", "--duration", "8",
        "--trace", "commit",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace sample" in out
    assert "commit" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--nodes", "2", "--db-size", "60", "--tps", "2",
        "--actions", "2", "--action-time", "0.001", "--duration", "10",
    ]) == 0
    out = capsys.readouterr().out
    for name in ["eager-group", "lazy-master", "two-tier"]:
        assert name in out


def test_verify_command_serializable_strategy(capsys):
    code = main([
        "verify", "--strategy", "eager-master", "--nodes", "2",
        "--db-size", "20", "--tps", "2", "--actions", "2",
        "--action-time", "0.002", "--duration", "10",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "one-copy serializable: True" in out
    assert "all invariants hold" in out


def test_verify_command_lazy_group_reports_anomaly(capsys):
    code = main([
        "verify", "--strategy", "lazy-group", "--nodes", "3",
        "--db-size", "5", "--tps", "3", "--actions", "2",
        "--action-time", "0.002", "--message-delay", "0.5",
        "--duration", "15",
    ])
    out = capsys.readouterr().out
    assert code == 0  # the anomaly is expected for lazy-group
    assert "one-copy serializable: False" in out
    assert "anomaly witness" in out


def test_parser_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--strategy", "psychic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
