"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Table 2" in out
    assert "DB_Size" in out


def test_danger_command(capsys):
    assert main(["danger", "--nodes", "10"]) == 0
    out = capsys.readouterr().out
    assert "eq 12" in out
    assert "N^3.0" in out
    assert "N^2.0" in out  # lazy-master quadratic


def test_danger_with_disconnects(capsys):
    assert main(["danger", "--nodes", "8", "--disconnect-time", "100"]) == 0
    out = capsys.readouterr().out
    assert "eq 18" in out


def test_simulate_command(capsys):
    assert main([
        "simulate", "--strategy", "lazy-master", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
    ]) == 0
    out = capsys.readouterr().out
    assert "commit_rate" in out
    assert "divergence after drain: 0" in out


def test_simulate_two_tier_commutative(capsys):
    assert main([
        "simulate", "--strategy", "two-tier", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
        "--disconnect-time", "2", "--commutative",
    ]) == 0
    out = capsys.readouterr().out
    assert "tentative_accepted" in out


def test_simulate_writes_json(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    assert main([
        "simulate", "--strategy", "lazy-master", "--nodes", "2",
        "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "10",
        "--json", str(out_file),
    ]) == 0
    import json

    data = json.loads(out_file.read_text())
    assert data["config"]["strategy"] == "lazy-master"
    assert data["counters"]["commits"] > 0


def test_simulate_with_trace_sample(capsys):
    assert main([
        "simulate", "--strategy", "eager-group", "--nodes", "2",
        "--db-size", "30", "--tps", "3", "--actions", "2",
        "--action-time", "0.005", "--duration", "8",
        "--trace", "commit",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace sample" in out
    assert "commit" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--nodes", "2", "--db-size", "60", "--tps", "2",
        "--actions", "2", "--action-time", "0.001", "--duration", "10",
    ]) == 0
    out = capsys.readouterr().out
    for name in ["eager-group", "lazy-master", "two-tier"]:
        assert name in out


def test_verify_command_serializable_strategy(capsys):
    code = main([
        "verify", "--strategy", "eager-master", "--nodes", "2",
        "--db-size", "20", "--tps", "2", "--actions", "2",
        "--action-time", "0.002", "--duration", "10",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "one-copy serializable: True" in out
    assert "all invariants hold" in out


def test_verify_command_lazy_group_reports_anomaly(capsys):
    code = main([
        "verify", "--strategy", "lazy-group", "--nodes", "3",
        "--db-size", "5", "--tps", "3", "--actions", "2",
        "--action-time", "0.002", "--message-delay", "0.5",
        "--duration", "15",
    ])
    out = capsys.readouterr().out
    assert code == 0  # the anomaly is expected for lazy-group
    assert "one-copy serializable: False" in out
    assert "anomaly witness" in out


def test_parser_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--strategy", "psychic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_message_delay_help_names_both_paths():
    # the help string documents that the simulator honours the flag and
    # the analytic model ignores it
    subparsers = build_parser()._subparsers._group_actions[0]
    for command in ("simulate", "danger", "sweep"):
        actions = [a for a in subparsers.choices[command]._actions
                   if "--message-delay" in a.option_strings]
        assert actions, command
        assert "simulator honours" in actions[0].help
        assert "analytic model ignores" in actions[0].help


SWEEP_TINY = [
    "--db-size", "50", "--tps", "2", "--actions", "2",
    "--action-time", "0.001", "--duration", "5", "--seeds", "2",
]


def test_sweep_command_inline(capsys):
    assert main([
        "sweep", "--strategy", "lazy-group", "--nodes", "1,2",
        "--jobs", "0", "--no-cache", *SWEEP_TINY,
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign: lazy-group" in out
    assert "measured (±95% CI)" in out
    assert "fit exponents" in out
    assert "analytic N^" in out
    assert "cache: 0/4 hits" in out


def test_sweep_command_parallel_multi_strategy(capsys):
    assert main([
        "sweep", "--strategy", "lazy-group,lazy-master", "--nodes", "1,2",
        "--jobs", "2", "--no-cache", *SWEEP_TINY,
    ]) == 0
    out = capsys.readouterr().out
    assert "lazy-group" in out and "lazy-master" in out
    assert "8 runs (8 ok, 0 failed)" in out


def test_sweep_cache_hits_on_identical_rerun(tmp_path, capsys):
    argv = [
        "sweep", "--strategy", "lazy-master", "--nodes", "1,2",
        "--jobs", "0", "--cache-dir", str(tmp_path / "cache"), *SWEEP_TINY,
    ]
    assert main(argv) == 0
    assert "cache: 0/4 hits" in capsys.readouterr().out
    assert main(argv) == 0
    assert "cache: 4/4 hits" in capsys.readouterr().out


def test_sweep_exports_json_and_csv(tmp_path, capsys):
    import json

    json_path = tmp_path / "campaign.json"
    csv_path = tmp_path / "campaign.csv"
    assert main([
        "sweep", "--strategy", "lazy-master", "--nodes", "1,2",
        "--jobs", "0", "--no-cache", "--json", str(json_path),
        "--csv", str(csv_path), *SWEEP_TINY,
    ]) == 0
    data = json.loads(json_path.read_text())
    assert data["summary"]["runs"] == 4
    assert data["cells"][0]["strategy"] == "lazy-master"
    assert csv_path.read_text().startswith("strategy,axis,value,rate")


def test_sweep_rejects_bad_nodes_list():
    with pytest.raises(SystemExit):
        main(["sweep", "--strategy", "lazy-group", "--nodes", "1,two",
              "--jobs", "0", "--no-cache"])


def test_sweep_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        main(["sweep", "--strategy", "psychic", "--nodes", "1,2",
              "--jobs", "0", "--no-cache"])


def test_sweep_strategy_all(capsys):
    assert main([
        "sweep", "--strategy", "all", "--nodes", "2", "--jobs", "0",
        "--no-cache", "--db-size", "50", "--tps", "2", "--actions", "2",
        "--action-time", "0.001", "--duration", "5", "--seeds", "1",
    ]) == 0
    out = capsys.readouterr().out
    for name in ["eager-group", "eager-master", "lazy-group",
                 "lazy-master", "two-tier"]:
        assert name in out


def test_danger_measure_adds_simulated_points(capsys):
    assert main([
        "danger", "--nodes", "2", "--db-size", "60", "--tps", "2",
        "--actions", "2", "--action-time", "0.001", "--measure",
        "--seeds", "2", "--jobs", "0", "--duration", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "eq 12" in out  # analytic curves still printed
    assert "measured danger rates" in out
    assert "sim/model" in out


def test_compare_with_jobs_matches_inline(capsys):
    argv = [
        "compare", "--nodes", "2", "--db-size", "60", "--tps", "2",
        "--actions", "2", "--action-time", "0.001", "--duration", "10",
    ]
    assert main(argv) == 0
    inline = capsys.readouterr().out
    assert main([*argv, "--jobs", "2"]) == 0
    pooled = capsys.readouterr().out
    assert pooled == inline
